module pmemaccel

go 1.22
