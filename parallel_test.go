package pmemaccel

// Concurrency smoke tests for the parallel sweep engine
// (internal/sweep): Run must be safe to call from many goroutines at
// once — every simulation seeds its own RNG from its configuration and
// shares no mutable package state (the cache.DebugLine and
// mechanism.DebugLine globals are debug-only: never written at runtime,
// only read against a constant zero). `go test -race` drives this file.

import (
	"sync"
	"testing"

	"pmemaccel/internal/workload"
)

func smokeConfig(b workload.Benchmark, m Kind) Config {
	cfg := DefaultConfig(b, m)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 300
	cfg.Ops = 100
	return cfg
}

// TestConcurrentRunsAreIndependent runs every mechanism on two
// benchmarks concurrently, twice each, and asserts both copies of every
// cell agree — any cross-run shared state would either trip the race
// detector or diverge the duplicate results.
func TestConcurrentRunsAreIndependent(t *testing.T) {
	type cell struct {
		b workload.Benchmark
		m Kind
	}
	var cells []cell
	for _, b := range []workload.Benchmark{workload.SPS, workload.RBTree} {
		for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
			cells = append(cells, cell{b, m})
		}
	}

	const copies = 2
	results := make([][]*Result, copies)
	var wg sync.WaitGroup
	for rep := 0; rep < copies; rep++ {
		results[rep] = make([]*Result, len(cells))
		for i, c := range cells {
			wg.Add(1)
			go func(rep, i int, c cell) {
				defer wg.Done()
				res, err := Run(smokeConfig(c.b, c.m))
				if err != nil {
					t.Errorf("%v/%v: %v", c.b, c.m, err)
					return
				}
				results[rep][i] = res
			}(rep, i, c)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, c := range cells {
		a, b := results[0][i], results[1][i]
		if a.Cycles != b.Cycles || a.IPC() != b.IPC() ||
			a.NVMWriteTraffic() != b.NVMWriteTraffic() ||
			a.LLCMissRate != b.LLCMissRate {
			t.Errorf("%v/%v: concurrent duplicate runs diverged: %v vs %v", c.b, c.m, a, b)
		}
	}
}
