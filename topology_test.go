package pmemaccel

// Multi-channel topology tests: a 4x2 (NVM x DRAM) backend must behave
// exactly like the 1x1 one semantically — deterministic across repeated
// and concurrent runs (this file is part of the `go test -race` sweep),
// invariant under the sweep worker count, and leaving NVM consistent for
// every guaranteed mechanism.

import (
	"sync"
	"testing"

	"pmemaccel/internal/workload"
)

func multiChannelConfig(b workload.Benchmark, m Kind) Config {
	cfg := tinyConfig(b, m)
	cfg.NVMChannels = 4
	cfg.DRAMChannels = 2
	// Tiny working sets fit inside one 4 KB block; interleave at a few
	// lines so the test's traffic actually spans channels.
	cfg.ChannelInterleaveBytes = 256
	return cfg
}

func TestMultiChannelEveryMechanism(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(multiChannelConfig(workload.SPS, m))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.TotalTransactions(); got != 400 {
				t.Fatalf("transactions = %d, want 400", got)
			}
			if m != Optimal && res.DurableDiffCount != 0 {
				t.Fatalf("%d durable diffs after full drain on 4x2 topology", res.DurableDiffCount)
			}
			if len(res.PerNVMChannel) != 4 || len(res.PerDRAMChannel) != 2 {
				t.Fatalf("per-channel stats = %d NVM / %d DRAM, want 4/2",
					len(res.PerNVMChannel), len(res.PerDRAMChannel))
			}
			// The interleave must spread traffic: with 4 KB granularity
			// and these working sets no channel should be silent while
			// the space as a whole carries traffic.
			var sum uint64
			active := 0
			for _, s := range res.PerNVMChannel {
				sum += s.Reads + s.Writes
				if s.Reads+s.Writes > 0 {
					active++
				}
			}
			if sum != res.NVM.Reads+res.NVM.Writes {
				t.Fatalf("per-channel traffic %d != aggregate %d", sum, res.NVM.Reads+res.NVM.Writes)
			}
			if sum > 0 && active < 2 {
				t.Fatalf("only %d of 4 NVM channels saw traffic — interleave not spreading", active)
			}
		})
	}
}

// TestMultiChannelDeterministic: repeated and concurrent 4x2 runs of
// every mechanism agree on every headline counter (worker-count
// invariance reduces to this: the sweep engine only changes which
// goroutine runs a cell, never the cell's inputs).
func TestMultiChannelDeterministic(t *testing.T) {
	mechs := []Kind{Optimal, SP, TCache, Kiln}
	const copies = 2
	results := make([][]*Result, copies)
	var wg sync.WaitGroup
	for rep := 0; rep < copies; rep++ {
		results[rep] = make([]*Result, len(mechs))
		for i, m := range mechs {
			wg.Add(1)
			go func(rep, i int, m Kind) {
				defer wg.Done()
				res, err := Run(multiChannelConfig(workload.RBTree, m))
				if err != nil {
					t.Errorf("%v: %v", m, err)
					return
				}
				results[rep][i] = res
			}(rep, i, m)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, m := range mechs {
		a, b := results[0][i], results[1][i]
		if a.Cycles != b.Cycles || a.IPC() != b.IPC() ||
			a.NVMWriteTraffic() != b.NVMWriteTraffic() || a.LLCMissRate != b.LLCMissRate {
			t.Errorf("%v: concurrent 4x2 runs diverged: %v vs %v", m, a, b)
		}
		for c := range a.PerNVMChannel {
			if a.PerNVMChannel[c] != b.PerNVMChannel[c] {
				t.Errorf("%v: NVM channel %d stats diverged across runs", m, c)
			}
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	cfg := tinyConfig(workload.SPS, TCache)
	cfg.NVMChannels = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative channel count accepted")
	}
	cfg = tinyConfig(workload.SPS, TCache)
	cfg.ChannelInterleaveBytes = 100 // not a power of two
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("non-power-of-two interleave accepted")
	}
	cfg.ChannelInterleaveBytes = 16 // below the line size
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("sub-line interleave accepted")
	}
}
