package pmemaccel

import (
	"bytes"
	"reflect"
	"testing"

	"pmemaccel/internal/workload"
)

// runWithWorkers runs one cell through NewSystem (not the Run
// convenience wrapper) so the test can interrogate the kernel after the
// run: the parallel-equivalence contract includes "no component ever
// scheduled into the past", which only the kernel can attest.
func runWithWorkers(t *testing.T, cfg Config, workers int) *Result {
	return runWithThreshold(t, cfg, workers, 0)
}

// runWithThreshold additionally lowers the kernel's dispatch threshold
// (0 keeps the default): threshold 2 forces the worker/journal protocol
// onto every multi-busy cycle, which is how the race-enabled CI job
// sweeps the barrier code against real component ticks.
func runWithThreshold(t *testing.T, cfg Config, workers, threshold int) *Result {
	t.Helper()
	cfg.ParWorkers = workers
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(workers=%d): %v", workers, err)
	}
	if threshold > 0 {
		sys.Kernel.SetDispatchThreshold(threshold)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if ps := sys.Kernel.PastSchedules(); ps != 0 {
		t.Errorf("workers=%d: %d ScheduleAt calls targeted the past (coerced forward); the parallel kernel requires zero", workers, ps)
	}
	return r
}

// TestParallelKernelIdenticalAllCells is the tentpole acceptance gate:
// every benchmark x mechanism cell must produce a result under the
// parallel kernel that is byte-identical to the serial kernel's —
// including SkippedCycles, since the whole-machine fast-forward
// decision is taken at the same barrier points in both modes. Only
// Config is zeroed (ParWorkers is the intended difference).
func TestParallelKernelIdenticalAllCells(t *testing.T) {
	for _, b := range workload.All {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := smokeConfig(b, m)
				serial := runWithWorkers(t, cfg, 0)
				par := runWithWorkers(t, cfg, 4)
				serial.Config = Config{}
				par.Config = Config{}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("results diverge serial vs -par-kernel 4:\n  serial: %v\n  par:    %v", serial, par)
					if serial.Cycles != par.Cycles {
						t.Errorf("Cycles: %d vs %d", serial.Cycles, par.Cycles)
					}
					if serial.SkippedCycles != par.SkippedCycles {
						t.Errorf("SkippedCycles: %d vs %d", serial.SkippedCycles, par.SkippedCycles)
					}
					for c := range serial.PerCore {
						if !reflect.DeepEqual(serial.PerCore[c], par.PerCore[c]) {
							t.Errorf("core %d stats diverge:\n  serial: %+v\n  par:    %+v",
								c, serial.PerCore[c], par.PerCore[c])
						}
					}
				}
			})
		}
	}
}

// TestParallelKernelWorkerCountInvariance pins that the worker count is
// purely an execution detail: 1, 2, and 8 workers all reproduce the
// 4-worker (and hence serial) result on a representative cell per
// mechanism.
func TestParallelKernelWorkerCountInvariance(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.Hashtable, m)
			base := runWithWorkers(t, cfg, 0)
			base.Config = Config{}
			for _, w := range []int{1, 2, 8} {
				r := runWithWorkers(t, cfg, w)
				r.Config = Config{}
				if !reflect.DeepEqual(base, r) {
					t.Errorf("workers=%d diverges from serial:\n  serial: %v\n  par:    %v", w, base, r)
				}
			}
		})
	}
}

// TestParallelKernelForcedDispatch drops the dispatch threshold to 2 so
// every multi-busy wave goes through worker dispatch and journal replay
// (the default threshold keeps small waves inline), and pins that the
// journaled path is byte-identical to serial on every mechanism. Run
// under -race this is the sweep of the worker/barrier protocol against
// real component ticks.
func TestParallelKernelForcedDispatch(t *testing.T) {
	for _, b := range []workload.Benchmark{workload.RBTree, workload.SPS} {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := smokeConfig(b, m)
				serial := runWithWorkers(t, cfg, 0)
				par := runWithThreshold(t, cfg, 4, 2)
				serial.Config = Config{}
				par.Config = Config{}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("forced-dispatch results diverge from serial:\n  serial: %v\n  par:    %v", serial, par)
				}
			})
		}
	}
}

// TestParallelKernelNoFastForwardCombos crosses the two kernel modes:
// -no-ff x -par-kernel must agree with plain -no-ff (every cycle
// stepped, none skipped), and with the fast-forwarding runs on
// everything except the skip audit counter.
func TestParallelKernelNoFastForwardCombos(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.RBTree, m)
			cfg.NoFastForward = true
			serial := runWithWorkers(t, cfg, 0)
			par := runWithWorkers(t, cfg, 4)
			if serial.SkippedCycles != 0 || par.SkippedCycles != 0 {
				t.Errorf("-no-ff runs skipped cycles: serial=%d par=%d, want 0/0",
					serial.SkippedCycles, par.SkippedCycles)
			}
			serial.Config = Config{}
			par.Config = Config{}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("-no-ff results diverge serial vs -par-kernel 4:\n  serial: %v\n  par:    %v", serial, par)
			}

			// Cross-check against the fast-forwarding pair: mode choice
			// (ff x par) changes nothing but the skip audit trail.
			ffCfg := smokeConfig(workload.RBTree, m)
			ffPar := runWithWorkers(t, ffCfg, 4)
			ffPar.Config = Config{}
			ffPar.SkippedCycles = 0
			if !reflect.DeepEqual(serial, ffPar) {
				t.Errorf("ff+par diverges from no-ff serial beyond SkippedCycles:\n  no-ff:  %v\n  ff+par: %v", serial, ffPar)
			}
		})
	}
}

// runObsTrace runs one cell with the given worker count and dispatch
// threshold (0 keeps the default) and returns the result plus the
// exported Chrome trace bytes — the strongest equivalence artifact: it
// serializes every recorded event with its exact cycle timestamps.
func runObsTrace(t *testing.T, cfg Config, workers, threshold int) (*Result, []byte) {
	t.Helper()
	cfg.ParWorkers = workers
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(workers=%d): %v", workers, err)
	}
	if threshold > 0 {
		sys.Kernel.SetDispatchThreshold(threshold)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	if err := sys.Probe.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace(workers=%d): %v", workers, err)
	}
	return r, buf.Bytes()
}

// TestParallelKernelObsTraceIdentical extends the byte-identity
// contract to the observability record: with the event trace and the
// flight recorder both on, the parallel kernel must reproduce the
// serial kernel's result AND its exported trace byte for byte — every
// span, stage waterfall and flow event at the same cycle on the same
// track. Worker-side probe and flight mutations journal through the
// per-core contexts and replay in registration order, which is exactly
// the serial record order.
func TestParallelKernelObsTraceIdentical(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.SPS, m)
			cfg.Obs.Enabled = true
			cfg.Obs.TxSample = 1
			serial, serialTrace := runObsTrace(t, cfg, 0, 0)
			par, parTrace := runObsTrace(t, cfg, 4, 0)
			serial.Config = Config{}
			par.Config = Config{}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("results diverge serial vs -par-kernel 4 with obs on:\n  serial: %v\n  par:    %v", serial, par)
				if !reflect.DeepEqual(serial.TxFlight, par.TxFlight) {
					t.Errorf("flight aggregates diverge:\n  serial: %+v\n  par:    %+v", serial.TxFlight, par.TxFlight)
				}
			}
			if !bytes.Equal(serialTrace, parTrace) {
				t.Errorf("exported traces diverge (serial %d bytes, par %d bytes)", len(serialTrace), len(parTrace))
			}
		})
	}
}

// TestParallelKernelObsForcedDispatch forces every multi-busy wave
// through worker dispatch and journal replay (threshold 2) with the
// full observability stack on — under -race this sweeps the journaled
// probe/flight record path against real component ticks.
func TestParallelKernelObsForcedDispatch(t *testing.T) {
	cfg := smokeConfig(workload.RBTree, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 1
	serial, serialTrace := runObsTrace(t, cfg, 0, 0)
	par, parTrace := runObsTrace(t, cfg, 4, 2)
	serial.Config = Config{}
	par.Config = Config{}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("forced-dispatch obs results diverge:\n  serial: %v\n  par:    %v", serial, par)
	}
	if !bytes.Equal(serialTrace, parTrace) {
		t.Errorf("forced-dispatch traces diverge (serial %d bytes, par %d bytes)", len(serialTrace), len(parTrace))
	}
}

// TestParallelKernelOpenSpanFlushMidRun stops a run mid-flight and
// flushes open spans with the worker pool still configured: flushers
// registered by worker-ticked components (TC drain bursts, WPQ drain
// windows) must flush exactly once, directly on the coordinator, and
// produce the same trace bytes as the serial kernel stopped at the
// same cycle. A second collection while nothing new opened must flush
// nothing more (the exactly-once contract).
func TestParallelKernelOpenSpanFlushMidRun(t *testing.T) {
	cfg := smokeConfig(workload.SPS, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 1

	snapshot := func(workers int, stop uint64) (*System, []byte, uint64) {
		t.Helper()
		c := cfg
		c.ParWorkers = workers
		sys, err := NewSystem(c)
		if err != nil {
			t.Fatal(err)
		}
		sys.RunToCycle(stop)
		sys.Kernel.StopWorkers()
		sys.Probe.FlushOpenSpans(sys.Kernel.Now())
		var buf bytes.Buffer
		if err := sys.Probe.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return sys, buf.Bytes(), sys.Probe.OpenSpansFlushed()
	}

	// Find a stop cycle where the serial run has a span open, so the
	// flush path is actually exercised (a TC drain burst or WPQ drain
	// window in progress).
	for _, stop := range []uint64{500, 1000, 1500, 2000, 2500, 3000} {
		serial, serialTrace, serialFlushed := snapshot(0, stop)
		if serialFlushed == 0 {
			continue
		}
		par, parTrace, parFlushed := snapshot(4, stop)
		if parFlushed != serialFlushed {
			t.Fatalf("stop@%d: par flushed %d open spans, serial flushed %d", stop, parFlushed, serialFlushed)
		}
		if !bytes.Equal(serialTrace, parTrace) {
			t.Fatalf("stop@%d: mid-run traces diverge (serial %d bytes, par %d bytes)",
				stop, len(serialTrace), len(parTrace))
		}
		// Each still-open span flushed exactly once: the journaled
		// worker path must not have double-registered any flusher, so a
		// second flush (the spans are still open — flushers do not
		// mutate state) records exactly the same count again, not more.
		before := par.Probe.Recorded()
		par.Probe.FlushOpenSpans(par.Kernel.Now())
		if got := par.Probe.Recorded() - before; got != serialFlushed {
			t.Fatalf("stop@%d: re-flush recorded %d spans, want %d (one per open span)",
				stop, got, serialFlushed)
		}
		_ = serial
		return
	}
	t.Fatal("no candidate stop cycle had an open span; pick different cycles")
}

// TestParallelKernelRejectsObs pins the config gate: the event trace
// and flight recorder journal their records and compose with the
// parallel kernel, but Obs.Metrics still streams into shared histograms
// inline on workers and is rejected, as is a negative worker count.
func TestParallelKernelRejectsObs(t *testing.T) {
	cfg := smokeConfig(workload.SPS, TCache)
	cfg.ParWorkers = 2
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected ParWorkers with the event trace and flight recorder: %v", err)
	}
	cfg.Obs.Metrics = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted ParWorkers with Obs.Metrics")
	}
	cfg.ParWorkers = -1
	cfg.Obs.Metrics = false
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative ParWorkers")
	}
}
