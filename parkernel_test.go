package pmemaccel

import (
	"reflect"
	"testing"

	"pmemaccel/internal/workload"
)

// runWithWorkers runs one cell through NewSystem (not the Run
// convenience wrapper) so the test can interrogate the kernel after the
// run: the parallel-equivalence contract includes "no component ever
// scheduled into the past", which only the kernel can attest.
func runWithWorkers(t *testing.T, cfg Config, workers int) *Result {
	return runWithThreshold(t, cfg, workers, 0)
}

// runWithThreshold additionally lowers the kernel's dispatch threshold
// (0 keeps the default): threshold 2 forces the worker/journal protocol
// onto every multi-busy cycle, which is how the race-enabled CI job
// sweeps the barrier code against real component ticks.
func runWithThreshold(t *testing.T, cfg Config, workers, threshold int) *Result {
	t.Helper()
	cfg.ParWorkers = workers
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(workers=%d): %v", workers, err)
	}
	if threshold > 0 {
		sys.Kernel.SetDispatchThreshold(threshold)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	if ps := sys.Kernel.PastSchedules(); ps != 0 {
		t.Errorf("workers=%d: %d ScheduleAt calls targeted the past (coerced forward); the parallel kernel requires zero", workers, ps)
	}
	return r
}

// TestParallelKernelIdenticalAllCells is the tentpole acceptance gate:
// every benchmark x mechanism cell must produce a result under the
// parallel kernel that is byte-identical to the serial kernel's —
// including SkippedCycles, since the whole-machine fast-forward
// decision is taken at the same barrier points in both modes. Only
// Config is zeroed (ParWorkers is the intended difference).
func TestParallelKernelIdenticalAllCells(t *testing.T) {
	for _, b := range workload.All {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := smokeConfig(b, m)
				serial := runWithWorkers(t, cfg, 0)
				par := runWithWorkers(t, cfg, 4)
				serial.Config = Config{}
				par.Config = Config{}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("results diverge serial vs -par-kernel 4:\n  serial: %v\n  par:    %v", serial, par)
					if serial.Cycles != par.Cycles {
						t.Errorf("Cycles: %d vs %d", serial.Cycles, par.Cycles)
					}
					if serial.SkippedCycles != par.SkippedCycles {
						t.Errorf("SkippedCycles: %d vs %d", serial.SkippedCycles, par.SkippedCycles)
					}
					for c := range serial.PerCore {
						if !reflect.DeepEqual(serial.PerCore[c], par.PerCore[c]) {
							t.Errorf("core %d stats diverge:\n  serial: %+v\n  par:    %+v",
								c, serial.PerCore[c], par.PerCore[c])
						}
					}
				}
			})
		}
	}
}

// TestParallelKernelWorkerCountInvariance pins that the worker count is
// purely an execution detail: 1, 2, and 8 workers all reproduce the
// 4-worker (and hence serial) result on a representative cell per
// mechanism.
func TestParallelKernelWorkerCountInvariance(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.Hashtable, m)
			base := runWithWorkers(t, cfg, 0)
			base.Config = Config{}
			for _, w := range []int{1, 2, 8} {
				r := runWithWorkers(t, cfg, w)
				r.Config = Config{}
				if !reflect.DeepEqual(base, r) {
					t.Errorf("workers=%d diverges from serial:\n  serial: %v\n  par:    %v", w, base, r)
				}
			}
		})
	}
}

// TestParallelKernelForcedDispatch drops the dispatch threshold to 2 so
// every multi-busy wave goes through worker dispatch and journal replay
// (the default threshold keeps small waves inline), and pins that the
// journaled path is byte-identical to serial on every mechanism. Run
// under -race this is the sweep of the worker/barrier protocol against
// real component ticks.
func TestParallelKernelForcedDispatch(t *testing.T) {
	for _, b := range []workload.Benchmark{workload.RBTree, workload.SPS} {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := smokeConfig(b, m)
				serial := runWithWorkers(t, cfg, 0)
				par := runWithThreshold(t, cfg, 4, 2)
				serial.Config = Config{}
				par.Config = Config{}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("forced-dispatch results diverge from serial:\n  serial: %v\n  par:    %v", serial, par)
				}
			})
		}
	}
}

// TestParallelKernelNoFastForwardCombos crosses the two kernel modes:
// -no-ff x -par-kernel must agree with plain -no-ff (every cycle
// stepped, none skipped), and with the fast-forwarding runs on
// everything except the skip audit counter.
func TestParallelKernelNoFastForwardCombos(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.RBTree, m)
			cfg.NoFastForward = true
			serial := runWithWorkers(t, cfg, 0)
			par := runWithWorkers(t, cfg, 4)
			if serial.SkippedCycles != 0 || par.SkippedCycles != 0 {
				t.Errorf("-no-ff runs skipped cycles: serial=%d par=%d, want 0/0",
					serial.SkippedCycles, par.SkippedCycles)
			}
			serial.Config = Config{}
			par.Config = Config{}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("-no-ff results diverge serial vs -par-kernel 4:\n  serial: %v\n  par:    %v", serial, par)
			}

			// Cross-check against the fast-forwarding pair: mode choice
			// (ff x par) changes nothing but the skip audit trail.
			ffCfg := smokeConfig(workload.RBTree, m)
			ffPar := runWithWorkers(t, ffCfg, 4)
			ffPar.Config = Config{}
			ffPar.SkippedCycles = 0
			if !reflect.DeepEqual(serial, ffPar) {
				t.Errorf("ff+par diverges from no-ff serial beyond SkippedCycles:\n  no-ff:  %v\n  ff+par: %v", serial, ffPar)
			}
		})
	}
}

// TestParallelKernelRejectsObs pins the config gate: the parallel
// kernel refuses to run with the observability layer enabled (probe and
// metrics sinks are unsynchronized shared state).
func TestParallelKernelRejectsObs(t *testing.T) {
	cfg := smokeConfig(workload.SPS, TCache)
	cfg.ParWorkers = 2
	cfg.Obs.Enabled = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted ParWorkers with Obs.Enabled")
	}
	cfg.Obs.Enabled = false
	cfg.Obs.Metrics = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted ParWorkers with Obs.Metrics")
	}
	cfg.ParWorkers = -1
	cfg.Obs.Metrics = false
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted negative ParWorkers")
	}
}
