package pmemaccel_test

import (
	"fmt"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

// ExampleRun simulates the red-black tree benchmark on the transaction
// cache accelerator and prints whether the durable state matched the
// committed-transaction oracle.
func ExampleRun() {
	cfg := pmemaccel.DefaultConfig(workload.RBTree, pmemaccel.TCache)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 400
	cfg.Ops = 100
	res, err := pmemaccel.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("transactions:", res.TotalTransactions())
	fmt.Println("durable diffs:", res.DurableDiffCount)
	// Output:
	// transactions: 200
	// durable diffs: 0
}

// ExampleNewSystem_crash pulls the plug mid-run and recovers: the
// transaction cache guarantees the recovered state equals the committed
// prefix exactly.
func ExampleNewSystem_crash() {
	cfg := pmemaccel.DefaultConfig(workload.SPS, pmemaccel.TCache)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 400
	cfg.Ops = 200
	s, err := pmemaccel.NewSystem(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s.RunToCycle(5000) // crash mid-run
	diffs := pmemaccel.CheckDurable(s.ExpectedDurable(), s.RecoveredDurable(), 8)
	fmt.Println("post-crash mismatches:", len(diffs))
	// Output:
	// post-crash mismatches: 0
}
