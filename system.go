package pmemaccel

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
	"pmemaccel/internal/workload"
)

// System is one assembled simulation: workloads generated, machine built,
// ready to run. Build with NewSystem; run with Run or step with
// RunToCycle for crash experiments.
type System struct {
	Config Config

	Kernel  *sim.Kernel
	Router  *memctrl.Router
	Hier    *cache.Hierarchy
	Mech    mechanism.Mechanism
	Cores   []*cpu.Core
	Outputs []*workload.Output

	// Probe is the observability recorder — nil unless Config.Obs is
	// enabled. Export its contents with Probe.WriteChromeTrace and
	// Probe.WriteMetricsCSV after (or during) a run.
	Probe *obs.Probe

	// Live is the volatile shadow image (newest store values); Durable
	// is the NVM content that survives a crash.
	Live    *memimage.Image
	Durable *memimage.Image
}

// NewSystem generates the per-core workloads and assembles the machine.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{Config: cfg}

	// Workloads first: their base images seed the memory state.
	for c := 0; c < cfg.Cores; c++ {
		bench := cfg.benchmarkFor(c)
		p := workload.DefaultParams(bench, c, cfg.Cores, cfg.Seed, cfg.InitialSize, cfg.Ops)
		out, err := workload.Generate(bench, p)
		if err != nil {
			return nil, fmt.Errorf("pmemaccel: core %d: %w", c, err)
		}
		s.Outputs = append(s.Outputs, out)
	}

	s.Kernel = sim.NewKernel()
	s.Kernel.SetFastForward(!cfg.NoFastForward)
	if cfg.Obs.Enabled {
		s.Probe = obs.NewProbe(cfg.Obs.TraceCapacity)
	}
	s.Router = memctrl.NewRouter(s.Kernel, cfg.nvmConfig(), cfg.dramConfig())
	s.Router.NVM.SetProbe(s.Probe, 0)
	s.Router.DRAM.SetProbe(s.Probe, 1)

	// Memory images: the post-warmup state is architecturally live and
	// (for persistent words) already durable. Pre-size for the combined
	// base images; both grow from there as the run writes fresh words.
	var baseWords int
	for _, out := range s.Outputs {
		baseWords += out.BaseImage.Len()
	}
	s.Live = memimage.NewSized(baseWords)
	s.Durable = memimage.NewSized(baseWords)
	for _, out := range s.Outputs {
		out.BaseImage.ForEach(func(addr, v uint64) {
			s.Live.WriteWord(addr, v)
			if memaddr.IsPersistent(addr) {
				s.Durable.WriteWord(addr, v)
			}
		})
	}

	env := &mechanism.Env{
		K:       s.Kernel,
		Cores:   cfg.Cores,
		Router:  s.Router,
		Live:    s.Live,
		Durable: s.Durable,
		TC:      cfg.tcConfig(),
		Probe:   s.Probe,
	}
	s.Mech = mechanism.New(cfg.Mechanism, env)
	s.Hier = cache.New(s.Kernel, cfg.cacheConfig(), s.Router, s.Mech.Hooks(), cfg.Cores)
	s.Hier.SetProbe(s.Probe)
	s.Mech.Attach(s.Hier)

	for c := 0; c < cfg.Cores; c++ {
		rd := s.Mech.Rewrite(c, trace.NewReader(s.Outputs[c].Trace))
		core := cpu.New(s.Kernel, c, cfg.CPU, s.Hier, s.Mech, rd,
			func(addr, value uint64) { s.Live.WriteWord(addr, value) })
		core.SetProbe(s.Probe)
		s.Cores = append(s.Cores, core)
	}
	s.startSampler()
	return s, nil
}

// startSampler registers the time-series sources and the periodic
// kernel callback that samples them. No-op unless the probe is live and
// a sampling period is configured.
func (s *System) startSampler() {
	if s.Probe == nil || s.Config.Obs.SampleEvery == 0 {
		return
	}
	if tp, ok := s.Mech.(interface {
		TC(core int) *txcache.TxCache
	}); ok {
		for c := 0; c < s.Config.Cores; c++ {
			s.Probe.AddSource(fmt.Sprintf("tc%d_occupancy", c), tp.TC(c).Occupancy)
		}
	}
	s.Probe.AddSource("llc_demand_queue", func() int { r, _ := s.Hier.QueueDepths(); return r })
	s.Probe.AddSource("llc_writeback_queue", func() int { _, w := s.Hier.QueueDepths(); return w })
	s.Probe.AddSource("llc_inflight_fills", s.Hier.InflightFills)
	s.Probe.AddSource("nvm_read_queue", s.Router.NVM.PendingReads)
	s.Probe.AddSource("nvm_write_queue", s.Router.NVM.PendingWrites)
	s.Probe.AddSource("dram_read_queue", s.Router.DRAM.PendingReads)
	s.Probe.AddSource("dram_write_queue", s.Router.DRAM.PendingWrites)
	s.Probe.StartSampling(s.Kernel, s.Config.Obs.SampleEvery)
}

// quiesced reports whether every core finished and all persistence and
// memory machinery drained.
func (s *System) quiesced() bool {
	for _, c := range s.Cores {
		if !c.Finished() {
			return false
		}
	}
	return s.Mech.Drained() && s.Hier.Pending() == 0 && s.Router.Quiescent()
}

// Run simulates to quiescence and collects the result.
func (s *System) Run() (*Result, error) {
	endOfTrace, ok := s.Kernel.RunUntil(func() bool {
		for _, c := range s.Cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	}, s.Config.MaxCycles)
	if !ok {
		return nil, fmt.Errorf("pmemaccel: run exceeded %d cycles (deadlock?)", s.Config.MaxCycles)
	}
	// Drain the persistence machinery and memory queues; this tail is
	// excluded from the performance window (cores are done) but keeps
	// functional state complete.
	if _, ok := s.Kernel.RunUntil(s.quiesced, s.Config.MaxCycles); !ok {
		return nil, fmt.Errorf("pmemaccel: post-run drain exceeded %d cycles", s.Config.MaxCycles)
	}
	return s.collect(endOfTrace), nil
}

// RunToCycle advances the simulation to the given absolute cycle (the
// crash-injection primitive). It reports whether the workload finished
// earlier.
func (s *System) RunToCycle(cycle uint64) bool {
	done, _ := s.Kernel.RunUntil(s.quiesced, cycle)
	return done < cycle
}

// RecoveredDurable runs the mechanism's recovery over the current durable
// state — "crash now, reboot, recover".
func (s *System) RecoveredDurable() *memimage.Image {
	return s.Mech.Recover(s.Durable)
}

// ExpectedDurable builds the NVM image that recovery must produce given
// the per-core durably-committed transaction counts at this instant:
// the warmed-up base plus each core's committed prefix of write sets.
func (s *System) ExpectedDurable() *memimage.Image {
	img := memimage.NewSized(s.Durable.Len())
	s.Durable.ForEach(func(addr, v uint64) {
		// Base persistent words only: mechanism-specific regions
		// (logs) are excluded from the expectation domain.
		if memaddr.Classify(addr) == memaddr.SpaceNVM {
			img.WriteWord(addr, v)
		}
	})
	// Overwrite with base values (durable may have advanced past base).
	for _, out := range s.Outputs {
		out.BaseImage.ForEach(func(addr, v uint64) {
			if memaddr.Classify(addr) == memaddr.SpaceNVM {
				img.WriteWord(addr, v)
			}
		})
	}
	for c, out := range s.Outputs {
		n := int(s.Mech.DurablyCommitted(c))
		committed := out.Recorder.Committed()
		if n > len(committed) {
			n = len(committed)
		}
		for _, tx := range committed[:n] {
			for _, w := range tx.Writes {
				img.WriteWord(w.Addr, w.Value)
			}
		}
	}
	return img
}

// CheckDurable compares a recovered image against an expected one over
// the NVM data space, returning up to max mismatches (both directions:
// lost committed writes and leaked uncommitted ones).
func CheckDurable(expected, recovered *memimage.Image, max int) []memimage.Diff {
	var diffs []memimage.Diff
	seen := map[uint64]bool{}
	expected.ForEach(func(addr, v uint64) {
		if memaddr.Classify(addr) != memaddr.SpaceNVM {
			return
		}
		if got := recovered.ReadWord(addr); got != v {
			diffs = append(diffs, memimage.Diff{Addr: addr, A: v, B: got})
			seen[addr] = true
		}
	})
	recovered.ForEach(func(addr, v uint64) {
		if memaddr.Classify(addr) != memaddr.SpaceNVM || v == 0 || seen[addr] {
			return
		}
		if expected.ReadWord(addr) != v {
			diffs = append(diffs, memimage.Diff{Addr: addr, A: expected.ReadWord(addr), B: v})
		}
	})
	if max > 0 && len(diffs) > max {
		diffs = diffs[:max]
	}
	return diffs
}

// Run is the one-call entry point: build a system and run it to
// completion.
func Run(cfg Config) (*Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
