package pmemaccel

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
	"pmemaccel/internal/workload"
)

// System is one assembled simulation: workloads generated, machine built,
// ready to run. Build with NewSystem; run with Run or step with
// RunToCycle for crash experiments.
type System struct {
	Config Config

	Kernel  *sim.Kernel
	Backend *memctrl.Backend
	Hier    *cache.Hierarchy
	Mech    mechanism.Mechanism
	Cores   []*cpu.Core
	Outputs []*workload.Output

	// Probe is the observability recorder — nil unless Config.Obs is
	// enabled. Export its contents with Probe.WriteChromeTrace and
	// Probe.WriteMetricsCSV after (or during) a run.
	Probe *obs.Probe

	// Metrics is the run-wide metrics registry — nil unless
	// Config.Obs.Metrics is set. Live histograms fill during the run;
	// counters and gauges mirrored from the component stats are added at
	// collection time, and the whole registry is snapshotted into
	// Result.Metrics.
	Metrics *metrics.Registry

	// Flight is the transaction flight recorder — nil unless
	// Config.Obs.TxSample > 0. Its aggregate is collected into
	// Result.TxFlight; its KTxStage spans land in Probe (when enabled).
	Flight *txflight.Recorder

	// Live is the volatile shadow image (newest store values); Durable
	// is the NVM content that survives a crash.
	Live    *memimage.Image
	Durable *memimage.Image

	// Arb is the shared-line ownership arbiter and Commits the global
	// durable-commit log — both nil unless some core runs a contended
	// benchmark (workload.BankShared). Commits orders the serialization
	// oracle; Arb's counters land in Result.Arb.
	Arb     *txcache.LineArbiter
	Commits *mechanism.CommitLog
}

// NewSystem generates the per-core workloads and assembles the machine.
func NewSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{Config: cfg}

	// Workloads first: their base images seed the memory state. In
	// streaming mode the measured window is deferred — each output holds
	// a generator the core pulls records from during the run, so no
	// materialized trace (or per-transaction history) ever exists.
	shared := false
	for c := 0; c < cfg.Cores; c++ {
		bench := cfg.benchmarkFor(c)
		p := workload.DefaultParams(bench, c, cfg.Cores, cfg.Seed, cfg.InitialSize, cfg.Ops)
		if bench == workload.BankShared {
			shared = true
			if cfg.ContentionPct > 0 {
				p.ContentionPct = cfg.ContentionPct
			}
			if cfg.SharedAccounts > 0 {
				p.SharedAccounts = cfg.SharedAccounts
			}
		}
		var out *workload.Output
		if cfg.Streaming {
			out, err = workload.NewStream(bench, p)
		} else {
			out, err = workload.Generate(bench, p)
		}
		if err != nil {
			return nil, fmt.Errorf("pmemaccel: core %d: %w", c, err)
		}
		if cfg.Streaming && bench == workload.BankShared {
			// The shared-mode serialization oracle folds per-transaction
			// write sets in global commit order, so the contended
			// benchmark retains its transaction history even when
			// streaming: memory is O(committed write sets) — still far
			// below the full record trace streaming avoids.
			out.Recorder.SetRetainTxHistory(true)
		}
		s.Outputs = append(s.Outputs, out)
	}

	s.Kernel = sim.NewKernel()
	s.Kernel.SetFastForward(!cfg.NoFastForward)
	if cfg.Obs.Enabled {
		s.Probe = obs.NewProbe(cfg.Obs.TraceCapacity)
	}
	if cfg.Obs.Metrics {
		s.Metrics = metrics.NewRegistry()
	}
	if cfg.Obs.TxSample > 0 {
		s.Flight = txflight.New(cfg.Obs.TxSample, s.Probe)
	}
	s.Backend, err = memctrl.NewBackend(s.Kernel, cfg.topology(), cfg.nvmConfig(), cfg.dramConfig())
	if err != nil {
		return nil, fmt.Errorf("pmemaccel: %w", err)
	}
	s.Backend.SetProbe(s.Probe)
	s.Backend.SetMetrics(s.Metrics)

	// Address-space validation: every address the run will ever send to
	// the backend must classify into a mapped space, so an unmapped
	// address is a build-time error here rather than a mid-simulation
	// fault. The workload traces and base images are the only external
	// address sources (mechanism log regions are carved from the NVMLog
	// space by construction).
	for c, out := range s.Outputs {
		if err := validateAddressSpaces(out); err != nil {
			return nil, fmt.Errorf("pmemaccel: core %d: %w", c, err)
		}
	}

	// Memory images: the post-warmup state is architecturally live and
	// (for persistent words) already durable. Pre-size for the combined
	// base images; both grow from there as the run writes fresh words.
	var baseWords int
	for _, out := range s.Outputs {
		baseWords += out.BaseImage.Len()
	}
	s.Live = memimage.NewSized(baseWords)
	s.Durable = memimage.NewSized(baseWords)
	for _, out := range s.Outputs {
		out.BaseImage.ForEach(func(addr, v uint64) {
			s.Live.WriteWord(addr, v)
			if memaddr.IsPersistent(addr) {
				s.Durable.WriteWord(addr, v)
			}
		})
	}

	// Per-core kernel contexts: each core and its private persistence
	// machinery (its transaction cache, commit polls) share one context.
	// Serially the context is a plain passthrough; with ParWorkers > 0
	// it becomes the group binding for the parallel kernel.
	if cfg.ParWorkers > 0 {
		s.Kernel.SetParallel(cfg.ParWorkers)
	}
	ctxs := make([]*sim.Ctx, cfg.Cores)
	for c := range ctxs {
		ctxs[c] = s.Kernel.NewCtx()
	}

	if shared {
		s.Arb = txcache.NewLineArbiter(cfg.Cores)
		s.Commits = &mechanism.CommitLog{}
	}
	env := &mechanism.Env{
		K:       s.Kernel,
		Cores:   cfg.Cores,
		Ctxs:    ctxs,
		Mem:     s.Backend,
		Live:    s.Live,
		Durable: s.Durable,
		TC:      cfg.tcConfig(),
		Probe:   s.Probe,
		Metrics: s.Metrics,
		Flight:  s.Flight,
		Arb:     s.Arb,
		Commits: s.Commits,
	}
	s.Mech = mechanism.New(cfg.Mechanism, env)
	s.Hier = cache.New(s.Kernel, cfg.cacheConfig(), s.Backend, s.Mech.Hooks(), cfg.Cores)
	s.Hier.SetProbe(s.Probe)
	s.Hier.SetMetrics(s.Metrics.Histogram("side_probe_hit_latency_cycles"))
	s.Mech.Attach(s.Hier)

	for c := 0; c < cfg.Cores; c++ {
		rd := s.Mech.Rewrite(c, s.Outputs[c].NewReader())
		core := cpu.New(ctxs[c], c, cfg.CPU, s.Hier, s.Mech, rd,
			func(addr, value uint64) { s.Live.WriteWord(addr, value) })
		core.SetProbe(s.Probe)
		core.SetFlight(s.Flight)
		// Transaction latency and commit-wait distributions are
		// run-wide: every core observes into the same pair of
		// histograms (nil when metrics are off).
		core.SetMetrics(
			s.Metrics.Histogram("tx_latency_cycles"),
			s.Metrics.Histogram("commit_wait_cycles"),
		)
		s.Cores = append(s.Cores, core)
	}
	if cfg.ParWorkers > 0 {
		// Bind each group: the core plus (for the TCache mechanism) its
		// transaction cache tick on the same worker between barriers.
		// Controllers and the hierarchy stay coordinator-owned.
		tp, _ := s.Mech.(mechanism.TCIntrospector)
		for c := 0; c < cfg.Cores; c++ {
			if tp != nil {
				s.Kernel.Bind(ctxs[c], tp.TC(c), s.Cores[c])
			} else {
				s.Kernel.Bind(ctxs[c], s.Cores[c])
			}
		}
	}
	s.startSampler()
	return s, nil
}

// validateAddressSpaces rejects a workload whose trace or base image
// touches an address outside every mapped memory space. The backend's
// For would report such an address as a run-time fault; catching it here
// turns a mid-run surprise into a build-time error naming the record.
//
// In streaming mode there is no materialized trace to scan; the record
// half of this check runs incrementally instead — the generator's
// per-record validator (trace.StreamValidator) classifies every load and
// store address as it flows by, and a violation surfaces through
// Output.StreamErr after the run. Only the base image is checked eagerly.
func validateAddressSpaces(out *workload.Output) error {
	var err error
	out.BaseImage.ForEach(func(addr, _ uint64) {
		if err == nil && memaddr.Classify(addr) == memaddr.SpaceInvalid {
			err = fmt.Errorf("base image holds unmapped address %#x", addr)
		}
	})
	if err != nil {
		return err
	}
	if out.Trace == nil {
		return nil
	}
	for i, rec := range out.Trace.Records {
		switch rec.Kind {
		case trace.KindLoad, trace.KindStore, trace.KindCLWB, trace.KindCLFlush:
			if memaddr.Classify(rec.Addr) == memaddr.SpaceInvalid {
				return fmt.Errorf("trace record %d (%v) touches unmapped address %#x", i, rec.Kind, rec.Addr)
			}
		}
	}
	return nil
}

// startSampler registers the time-series sources and the periodic
// kernel callback that samples them. No-op unless the probe is live and
// a sampling period is configured.
func (s *System) startSampler() {
	if s.Probe == nil || s.Config.Obs.SampleEvery == 0 {
		return
	}
	if tp, ok := s.Mech.(mechanism.TCIntrospector); ok {
		for c := 0; c < s.Config.Cores; c++ {
			s.Probe.AddSource(fmt.Sprintf("tc%d_occupancy", c), tp.TC(c).Occupancy)
		}
	}
	s.Probe.AddSource("llc_demand_queue", func() int { r, _ := s.Hier.QueueDepths(); return r })
	s.Probe.AddSource("llc_writeback_queue", func() int { _, w := s.Hier.QueueDepths(); return w })
	s.Probe.AddSource("llc_inflight_fills", s.Hier.InflightFills)
	s.Backend.AddQueueSources(s.Probe)
	s.Probe.StartSampling(s.Kernel, s.Config.Obs.SampleEvery)
}

// quiesced reports whether every core finished and all persistence and
// memory machinery drained.
func (s *System) quiesced() bool {
	for _, c := range s.Cores {
		if !c.Finished() {
			return false
		}
	}
	return s.Mech.Drained() && s.Hier.Pending() == 0 && s.Backend.Quiescent()
}

// Run simulates to quiescence and collects the result.
func (s *System) Run() (*Result, error) {
	// Parallel-kernel worker goroutines live only for the run; serial
	// runs make this a no-op.
	defer s.Kernel.StopWorkers()
	endOfTrace, ok := s.Kernel.RunUntil(func() bool {
		for _, c := range s.Cores {
			if !c.Finished() {
				return false
			}
		}
		return true
	}, s.Config.MaxCycles)
	if !ok {
		return nil, fmt.Errorf("pmemaccel: run exceeded %d cycles (deadlock?)", s.Config.MaxCycles)
	}
	// Drain the persistence machinery and memory queues; this tail is
	// excluded from the performance window (cores are done) but keeps
	// functional state complete.
	if _, ok := s.Kernel.RunUntil(s.quiesced, s.Config.MaxCycles); !ok {
		return nil, fmt.Errorf("pmemaccel: post-run drain exceeded %d cycles", s.Config.MaxCycles)
	}
	// An unmapped-address fault is recorded sticky by the backend (the
	// request completes so the machine drains) and surfaced here; the
	// build-time address-space validation makes this unreachable for
	// generated workloads.
	if err := s.Backend.Fault(); err != nil {
		return nil, fmt.Errorf("pmemaccel: %w", err)
	}
	// A streaming generator that failed mid-run (workload error, invariant
	// violation, malformed record) looks exhausted to its core; surface the
	// sticky error now so a truncated run never passes as a clean one.
	for c, out := range s.Outputs {
		if err := out.StreamErr(); err != nil {
			return nil, fmt.Errorf("pmemaccel: core %d: %w", c, err)
		}
	}
	return s.collect(endOfTrace), nil
}

// RunToCycle advances the simulation to the given absolute cycle (the
// crash-injection primitive). It reports whether the workload finished
// earlier.
func (s *System) RunToCycle(cycle uint64) bool {
	done, _ := s.Kernel.RunUntil(s.quiesced, cycle)
	return done < cycle
}

// RecoveredDurable runs the mechanism's recovery over the current durable
// state — "crash now, reboot, recover".
func (s *System) RecoveredDurable() *memimage.Image {
	return s.Mech.Recover(s.Durable)
}

// ExpectedDurable builds the NVM image that recovery must produce given
// the per-core durably-committed transaction counts at this instant:
// the warmed-up base plus each core's committed prefix of write sets.
func (s *System) ExpectedDurable() *memimage.Image {
	img := memimage.NewSized(s.Durable.Len())
	s.Durable.ForEach(func(addr, v uint64) {
		// Base persistent words only: mechanism-specific regions
		// (logs) are excluded from the expectation domain.
		if memaddr.Classify(addr) == memaddr.SpaceNVM {
			img.WriteWord(addr, v)
		}
	})
	// Overwrite with base values (durable may have advanced past base).
	for _, out := range s.Outputs {
		out.BaseImage.ForEach(func(addr, v uint64) {
			if memaddr.Classify(addr) == memaddr.SpaceNVM {
				img.WriteWord(addr, v)
			}
		})
	}
	if s.Commits != nil {
		// Shared mode: committed write sets fold in the global durable
		// commit order the machine actually produced — cross-core writes
		// to the shared region serialize in exactly that order, so a
		// per-core fold would be wrong whenever two cores touched the
		// same word. Exact at quiescence (every committed transaction is
		// durably committed once the machine drains); mid-run
		// crash-prefix checking is a core-private-workload capability.
		committed := make([][]trace.TxRecord, len(s.Outputs))
		for c, out := range s.Outputs {
			committed[c] = out.Recorder.Committed()
		}
		idx := make([]int, len(s.Outputs))
		for _, c := range s.Commits.Order {
			if idx[c] >= len(committed[c]) {
				continue
			}
			for _, w := range committed[c][idx[c]].Writes {
				img.WriteWord(w.Addr, w.Value)
			}
			idx[c]++
		}
		return img
	}
	for c, out := range s.Outputs {
		if !out.Recorder.RetainsTxHistory() {
			// Streaming runs keep no per-transaction history — only the
			// incremental final image (base plus every committed write
			// set). That equals the per-prefix expectation exactly when
			// every committed transaction is durably committed, which
			// holds after Run drains the machine; mid-run crash-prefix
			// checking needs the materialized mode.
			out.FinalImage.ForEach(func(addr, v uint64) {
				if memaddr.Classify(addr) == memaddr.SpaceNVM {
					img.WriteWord(addr, v)
				}
			})
			continue
		}
		n := int(s.Mech.DurablyCommitted(c))
		committed := out.Recorder.Committed()
		if n > len(committed) {
			n = len(committed)
		}
		for _, tx := range committed[:n] {
			for _, w := range tx.Writes {
				img.WriteWord(w.Addr, w.Value)
			}
		}
	}
	return img
}

// CheckDurable compares a recovered image against an expected one over
// the NVM data space, returning up to max mismatches (both directions:
// lost committed writes and leaked uncommitted ones).
func CheckDurable(expected, recovered *memimage.Image, max int) []memimage.Diff {
	var diffs []memimage.Diff
	seen := map[uint64]bool{}
	expected.ForEach(func(addr, v uint64) {
		if memaddr.Classify(addr) != memaddr.SpaceNVM {
			return
		}
		if got := recovered.ReadWord(addr); got != v {
			diffs = append(diffs, memimage.Diff{Addr: addr, A: v, B: got})
			seen[addr] = true
		}
	})
	recovered.ForEach(func(addr, v uint64) {
		if memaddr.Classify(addr) != memaddr.SpaceNVM || v == 0 || seen[addr] {
			return
		}
		if expected.ReadWord(addr) != v {
			diffs = append(diffs, memimage.Diff{Addr: addr, A: expected.ReadWord(addr), B: v})
		}
	})
	if max > 0 && len(diffs) > max {
		diffs = diffs[:max]
	}
	return diffs
}

// Run is the one-call entry point: build a system and run it to
// completion.
func Run(cfg Config) (*Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
