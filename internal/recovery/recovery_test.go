package recovery

import (
	"strings"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

// crashConfig is a small, fast configuration for crash sweeps.
func crashConfig(b workload.Benchmark, m pmemaccel.Kind, seed uint64) pmemaccel.Config {
	cfg := pmemaccel.DefaultConfig(b, m)
	cfg.Seed = seed
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 600
	cfg.Ops = 250
	return cfg
}

func TestGuaranteedMechanismsSurviveCrashes(t *testing.T) {
	for _, m := range []pmemaccel.Kind{pmemaccel.SP, pmemaccel.TCache, pmemaccel.Kiln} {
		for _, b := range workload.Extended {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := crashConfig(b, m, 11)
				horizon, err := Horizon(cfg)
				if err != nil {
					t.Fatalf("horizon: %v", err)
				}
				trials, violations, err := Sweep(cfg, 6, horizon, 7)
				if err != nil {
					t.Fatal(err)
				}
				if violations != 0 {
					for _, tr := range trials {
						if !tr.OK() {
							t.Errorf("%v", tr)
							if len(tr.AtomicityDiffs) > 0 {
								t.Errorf("first diff: %+v", tr.AtomicityDiffs[0])
							}
						}
					}
					t.Fatalf("%d/%d crash trials violated persistence", violations, len(trials))
				}
			})
		}
	}
}

func TestOptimalViolatesPersistenceUnderCrash(t *testing.T) {
	// The no-persistence baseline must (with overwhelming probability
	// over many mid-run crash points) leave NVM inconsistent — the
	// motivating failure of §2.
	cfg := crashConfig(workload.SPS, pmemaccel.Optimal, 3)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Crash in the middle third of the run, when traffic is in flight.
	_, violations, err := Sweep(cfg, 6, horizon*2/3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if violations == 0 {
		t.Fatal("optimal survived every crash; the baseline should demonstrate corruption")
	}
}

func TestCrashAfterCompletionIsConsistent(t *testing.T) {
	// Crashing after full quiescence must always recover cleanly for
	// guaranteed mechanisms.
	cfg := crashConfig(workload.Hashtable, pmemaccel.TCache, 5)
	tr, err := RunTrial(cfg, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.FinishedEarly {
		t.Fatal("run did not quiesce before the crash bound")
	}
	if !tr.OK() {
		t.Fatalf("post-completion crash inconsistent: %v", tr)
	}
}

func TestTrialReportsCommitCounts(t *testing.T) {
	cfg := crashConfig(workload.RBTree, pmemaccel.TCache, 9)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrial(cfg, horizon/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.CommittedPerCore) != cfg.Cores {
		t.Fatalf("committed counts for %d cores, want %d", len(tr.CommittedPerCore), cfg.Cores)
	}
	total := uint64(0)
	for _, c := range tr.CommittedPerCore {
		total += c
	}
	if total == 0 {
		t.Fatal("mid-run crash saw zero committed transactions")
	}
}

func TestRecoveryCostReported(t *testing.T) {
	// Mid-run, the TCache mechanism holds buffered entries, so recovery
	// has work to do; after quiescence it has none.
	cfg := crashConfig(workload.SPS, pmemaccel.TCache, 21)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := RunTrial(cfg, horizon/2)
	if err != nil {
		t.Fatal(err)
	}
	end, err := RunTrial(cfg, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if end.Cost.ScannedItems != 0 || end.Cost.NVMWrites != 0 {
		t.Fatalf("post-quiescence recovery cost nonzero: %+v", end.Cost)
	}
	_ = mid // a mid-run TC may or may not hold entries at the sampled cycle
}

func TestSPRecoveryCostGrowsWithProgress(t *testing.T) {
	// SP's recovery scans the whole durable log, which only grows.
	cfg := crashConfig(workload.SPS, pmemaccel.SP, 22)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early, err := RunTrial(cfg, horizon/4)
	if err != nil {
		t.Fatal(err)
	}
	late, err := RunTrial(cfg, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if late.Cost.ScannedItems <= early.Cost.ScannedItems {
		t.Fatalf("late scan %d not above early %d", late.Cost.ScannedItems, early.Cost.ScannedItems)
	}
	if late.Cost.EstCycles == 0 {
		t.Fatal("late recovery estimate is zero")
	}
}

func TestHeterogeneousMixSurvivesCrashes(t *testing.T) {
	cfg := crashConfig(workload.RBTree, pmemaccel.TCache, 31)
	cfg.Mix = []workload.Benchmark{workload.RBTree, workload.Hashtable}
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trials, violations, err := Sweep(cfg, 5, horizon, 17)
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		for _, tr := range trials {
			if !tr.OK() {
				t.Errorf("%v", tr)
			}
		}
		t.Fatalf("%d/%d mixed-workload crash trials violated persistence", violations, len(trials))
	}
}

func TestBankCrashConservation(t *testing.T) {
	// The money-conservation invariant is the sharpest atomicity probe:
	// any torn transfer changes the total. All guaranteed mechanisms
	// must conserve; Optimal must (almost always) tear.
	for _, m := range []pmemaccel.Kind{pmemaccel.SP, pmemaccel.TCache, pmemaccel.Kiln} {
		cfg := crashConfig(workload.Bank, m, 41)
		horizon, err := Horizon(cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		trials, violations, err := Sweep(cfg, 5, horizon, 19)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if violations != 0 {
			for _, tr := range trials {
				if !tr.OK() {
					t.Errorf("%v: %v", m, tr)
				}
			}
			t.Fatalf("%v destroyed or created money in %d/%d crashes", m, violations, len(trials))
		}
	}
	cfg := crashConfig(workload.Bank, pmemaccel.Optimal, 41)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, violations, err := Sweep(cfg, 5, horizon*2/3, 23)
	if err != nil {
		t.Fatal(err)
	}
	if violations == 0 {
		t.Fatal("optimal conserved money in every crash; expected torn transfers")
	}
}

func TestSweepZeroHorizonIsError(t *testing.T) {
	// A zero horizon used to panic inside sim.Uint64n; it must be a
	// descriptive error instead.
	cfg := crashConfig(workload.SPS, pmemaccel.TCache, 61)
	trials, violations, err := Sweep(cfg, 5, 0, 7)
	if err == nil {
		t.Fatal("zero-horizon sweep returned nil error")
	}
	if !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("error %q does not explain the zero horizon", err)
	}
	if len(trials) != 0 || violations != 0 {
		t.Fatalf("zero-horizon sweep returned trials=%d violations=%d", len(trials), violations)
	}
	if _, _, err := SweepParallel(cfg, 5, 0, 7, 4); err == nil {
		t.Fatal("zero-horizon parallel sweep returned nil error")
	}
}

// TestSweepParallelMatchesSequential pins the determinism contract: the
// crash cycles, per-trial outcomes and violation count of a 4-worker
// sweep are identical to the sequential path's.
func TestSweepParallelMatchesSequential(t *testing.T) {
	cfg := crashConfig(workload.SPS, pmemaccel.Optimal, 71)
	horizon, err := Horizon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, seqViol, err := Sweep(cfg, 6, horizon*2/3, 29)
	if err != nil {
		t.Fatal(err)
	}
	par, parViol, err := SweepParallel(cfg, 6, horizon*2/3, 29, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqViol != parViol {
		t.Fatalf("violations: sequential %d, parallel %d", seqViol, parViol)
	}
	if len(seq) != len(par) {
		t.Fatalf("trials: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].CrashCycle != par[i].CrashCycle {
			t.Errorf("trial %d: crash cycle %d != %d", i, seq[i].CrashCycle, par[i].CrashCycle)
		}
		if seq[i].OK() != par[i].OK() {
			t.Errorf("trial %d: OK %v != %v", i, seq[i].OK(), par[i].OK())
		}
		if len(seq[i].AtomicityDiffs) != len(par[i].AtomicityDiffs) {
			t.Errorf("trial %d: diffs %d != %d", i,
				len(seq[i].AtomicityDiffs), len(par[i].AtomicityDiffs))
		}
		if seq[i].Cost != par[i].Cost {
			t.Errorf("trial %d: cost %+v != %+v", i, seq[i].Cost, par[i].Cost)
		}
	}
}

func TestTrialsAreDeterministic(t *testing.T) {
	cfg := crashConfig(workload.SPS, pmemaccel.TCache, 51)
	a, err := RunTrial(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrial(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if a.CrashCycle != b.CrashCycle || len(a.AtomicityDiffs) != len(b.AtomicityDiffs) {
		t.Fatalf("identical trials diverged: %v vs %v", a, b)
	}
	for i := range a.CommittedPerCore {
		if a.CommittedPerCore[i] != b.CommittedPerCore[i] {
			t.Fatalf("committed counts diverged: %v vs %v", a.CommittedPerCore, b.CommittedPerCore)
		}
	}
	if a.Cost != b.Cost {
		t.Fatalf("recovery costs diverged: %+v vs %+v", a.Cost, b.Cost)
	}
}
