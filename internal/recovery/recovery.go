// Package recovery implements crash injection and recovery checking —
// the simulation-side equivalent of pulling the plug on the paper's
// system and rebooting.
//
// A trial runs a full system to an arbitrary crash cycle, discards
// everything volatile (caches, store buffers, queues), runs the
// mechanism's recovery over the durable state (NVM image plus the
// mechanism's nonvolatile structures: transaction cache contents, the
// software log, the NV-LLC), and then checks two properties per core:
//
//	atomicity  — the recovered NVM equals the base image plus exactly the
//	             write sets of the first K committed transactions (the
//	             mechanism's durably-committed count at the crash point);
//	integrity  — the recovered data structure satisfies its own
//	             invariants (a valid red-black tree, a sorted B+tree, ...).
//
// The Optimal mechanism guarantees neither; its trials demonstrate the
// problem the paper sets out to solve.
package recovery

import (
	"errors"
	"fmt"

	"pmemaccel"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/sweep"
	"pmemaccel/internal/workload"
)

// Trial is the outcome of one crash experiment.
type Trial struct {
	// CrashCycle is the cycle the plug was pulled (the run may quiesce
	// earlier; FinishedEarly reports that).
	CrashCycle    uint64
	FinishedEarly bool
	// CommittedPerCore is the durably-committed transaction count per
	// core at the crash point.
	CommittedPerCore []uint64
	// AtomicityDiffs are word-level mismatches between the recovered
	// image and the committed-prefix oracle (empty = atomic+durable).
	AtomicityDiffs []memimage.Diff
	// IntegrityErr is the structural-validation failure, if any.
	IntegrityErr error
	// Cost estimates the reboot-time recovery work at the crash point.
	Cost mechanism.RecoveryCost
}

// OK reports whether the trial found no violation.
func (tr *Trial) OK() bool {
	return len(tr.AtomicityDiffs) == 0 && tr.IntegrityErr == nil
}

// String summarizes the trial.
func (tr *Trial) String() string {
	status := "consistent"
	if !tr.OK() {
		status = fmt.Sprintf("VIOLATION (%d word diffs, integrity: %v)",
			len(tr.AtomicityDiffs), tr.IntegrityErr)
	}
	return fmt.Sprintf("crash@%d committed=%v recovery{scan=%d writes=%d ~%dcy}: %s",
		tr.CrashCycle, tr.CommittedPerCore, tr.Cost.ScannedItems, tr.Cost.NVMWrites,
		tr.Cost.EstCycles, status)
}

// RunTrial builds a system from cfg, runs it to crashCycle, crashes, and
// checks recovery.
func RunTrial(cfg pmemaccel.Config, crashCycle uint64) (*Trial, error) {
	s, err := pmemaccel.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	finished := s.RunToCycle(crashCycle)
	tr := &Trial{CrashCycle: s.Kernel.Now(), FinishedEarly: finished}
	for c := 0; c < cfg.Cores; c++ {
		tr.CommittedPerCore = append(tr.CommittedPerCore, s.Mech.DurablyCommitted(c))
	}
	tr.Cost = s.Mech.RecoveryCost()
	recovered := s.RecoveredDurable()
	tr.AtomicityDiffs = pmemaccel.CheckDurable(s.ExpectedDurable(), recovered, 32)
	for _, out := range s.Outputs {
		if err := workload.CheckImage(out.Benchmark, out.Meta, recovered); err != nil {
			tr.IntegrityErr = err
			break
		}
	}
	return tr, nil
}

// Sweep runs trials at n pseudo-random crash cycles within (0, horizon].
// It returns the trials and the count of violations. It is exactly
// SweepParallel with one worker.
func Sweep(cfg pmemaccel.Config, n int, horizon uint64, seed uint64) ([]*Trial, int, error) {
	return SweepParallel(cfg, n, horizon, seed, 1)
}

// SweepParallel runs the crash trials on a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). The crash cycles are drawn from
// the seed up front in trial order, so the trial list — and therefore
// the violation count — is bit-identical to the sequential path. On
// error the returned trials are the successful prefix a sequential
// sweep would have accumulated.
//
// A zero horizon (a workload that quiesced immediately, or a caller
// passing the Horizon of an empty run) is a descriptive error rather
// than the panic it used to be: there is no cycle to crash into.
func SweepParallel(cfg pmemaccel.Config, n int, horizon uint64, seed uint64, workers int) ([]*Trial, int, error) {
	if horizon == 0 {
		return nil, 0, fmt.Errorf(
			"recovery: crash horizon is 0 for %v/%v (the workload quiesced immediately or the run was empty); nothing to crash into",
			cfg.Benchmark, cfg.Mechanism)
	}
	rng := sim.NewRNG(seed)
	cycles := make([]uint64, n)
	for i := range cycles {
		cycles[i] = rng.Uint64n(horizon) + 1
	}

	trials, err := sweep.Run(n, workers, func(i int) (*Trial, error) {
		tr, terr := RunTrial(cfg, cycles[i])
		if terr != nil {
			return nil, fmt.Errorf("trial %d (crash@%d): %w", i, cycles[i], terr)
		}
		return tr, nil
	}, nil)
	if err != nil {
		// Keep the sequential contract: return the trials completed
		// before the first failing trial.
		var se *sweep.Error
		if errors.As(err, &se) {
			trials = trials[:se.Cell]
		} else {
			trials = nil
		}
	}
	violations := 0
	for _, tr := range trials {
		if !tr.OK() {
			violations++
		}
	}
	return trials, violations, err
}

// Horizon estimates a crash horizon by running the workload once to
// completion and returning its cycle count.
func Horizon(cfg pmemaccel.Config) (uint64, error) {
	res, err := pmemaccel.Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
