// Package pheap implements the bump-pointer + size-class free-list
// allocator that the benchmark data structures allocate from. It is the
// simulation-side equivalent of the paper's p_malloc (Figure 1): workloads
// receive word-aligned addresses inside their core's persistent (or
// volatile) region.
//
// The allocator is deliberately bookkeeping-only: it does not emit trace
// records itself. Workloads account the allocator's instruction cost with
// an explicit Compute batch (see workload.CostAlloc), which keeps the
// allocator reusable for both persistent and volatile regions without
// entangling it with the trace layer.
package pheap

import (
	"fmt"

	"pmemaccel/internal/memaddr"
)

// Heap allocates word-aligned blocks from a fixed address range.
type Heap struct {
	region memaddr.Range
	next   uint64
	inUse  uint64
	free   map[int][]uint64 // words -> reusable block addresses
}

// New returns a heap over region. The region base must be word aligned.
func New(region memaddr.Range) *Heap {
	if !memaddr.IsWordAligned(region.Base) {
		panic(fmt.Sprintf("pheap: region base %#x not word aligned", region.Base))
	}
	return &Heap{region: region, next: region.Base, free: make(map[int][]uint64)}
}

// Region returns the range the heap allocates from.
func (h *Heap) Region() memaddr.Range { return h.region }

// Alloc returns the address of a block of the given number of 64-bit
// words. Freed blocks of the same size are reused LIFO before the bump
// pointer advances. It returns an error when the region is exhausted.
func (h *Heap) Alloc(words int) (uint64, error) {
	if words <= 0 {
		return 0, fmt.Errorf("pheap: alloc of %d words", words)
	}
	if list := h.free[words]; len(list) > 0 {
		addr := list[len(list)-1]
		if len(list) == 1 {
			// Drop the emptied size class: long churn runs cycle through
			// many transient sizes, and keeping every empty slice alive
			// leaks map entries for the rest of the run.
			delete(h.free, words)
		} else {
			h.free[words] = list[:len(list)-1]
		}
		h.inUse += uint64(words) * memaddr.WordSize
		return addr, nil
	}
	size := uint64(words) * memaddr.WordSize
	if h.next+size > h.region.End() {
		return 0, fmt.Errorf("pheap: out of memory: %d bytes requested, %d left in region [%#x,%#x)",
			size, h.region.End()-h.next, h.region.Base, h.region.End())
	}
	addr := h.next
	h.next += size
	h.inUse += size
	return addr, nil
}

// MustAlloc is Alloc for callers whose sizing is static (the workloads size
// their heaps up front); it panics on exhaustion.
func (h *Heap) MustAlloc(words int) uint64 {
	addr, err := h.Alloc(words)
	if err != nil {
		panic(err)
	}
	return addr
}

// Free returns a block to the size-class free list. The caller must pass
// the same word count used at allocation.
func (h *Heap) Free(addr uint64, words int) {
	if !h.region.Contains(addr) {
		panic(fmt.Sprintf("pheap: free of %#x outside region", addr))
	}
	h.free[words] = append(h.free[words], addr)
	h.inUse -= uint64(words) * memaddr.WordSize
}

// InUse reports the number of currently allocated bytes.
func (h *Heap) InUse() uint64 { return h.inUse }

// HighWater reports the highest address ever handed out (exclusive), i.e.
// the touched footprint of the heap.
func (h *Heap) HighWater() uint64 { return h.next }
