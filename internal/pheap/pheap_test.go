package pheap

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
)

func testRegion() memaddr.Range {
	return memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 16}
}

func TestAllocReturnsAlignedDisjointBlocks(t *testing.T) {
	h := New(testRegion())
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		addr := h.MustAlloc(3)
		if !memaddr.IsWordAligned(addr) {
			t.Fatalf("alloc %d: addr %#x not aligned", i, addr)
		}
		for w := uint64(0); w < 3; w++ {
			wa := addr + w*8
			if seen[wa] {
				t.Fatalf("alloc %d: word %#x double-allocated", i, wa)
			}
			seen[wa] = true
		}
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	h := New(testRegion())
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := New(memaddr.Range{Base: memaddr.NVMBase, Size: 64})
	if _, err := h.Alloc(8); err != nil {
		t.Fatalf("first alloc failed: %v", err)
	}
	if _, err := h.Alloc(1); err == nil {
		t.Fatal("alloc past region end succeeded")
	}
}

func TestFreeReuseLIFO(t *testing.T) {
	h := New(testRegion())
	a := h.MustAlloc(4)
	b := h.MustAlloc(4)
	h.Free(a, 4)
	h.Free(b, 4)
	if got := h.MustAlloc(4); got != b {
		t.Fatalf("realloc = %#x, want LIFO reuse of %#x", got, b)
	}
	if got := h.MustAlloc(4); got != a {
		t.Fatalf("second realloc = %#x, want %#x", got, a)
	}
}

func TestFreeDifferentSizeClassNotReused(t *testing.T) {
	h := New(testRegion())
	a := h.MustAlloc(4)
	h.Free(a, 4)
	if got := h.MustAlloc(2); got == a {
		t.Fatal("block reused across size classes")
	}
}

func TestEmptiedSizeClassDropped(t *testing.T) {
	h := New(testRegion())
	// Churn through many distinct size classes, freeing and reusing each
	// once: the free-list map must not accumulate one empty entry per
	// class (the long-run leak this pins down).
	for words := 1; words <= 64; words++ {
		a := h.MustAlloc(words)
		h.Free(a, words)
		if got := h.MustAlloc(words); got != a {
			t.Fatalf("size class %d: realloc = %#x, want reuse of %#x", words, got, a)
		}
	}
	if len(h.free) != 0 {
		t.Fatalf("free-list map holds %d entries after all classes emptied, want 0", len(h.free))
	}
	// A partially drained class must keep its entry.
	a := h.MustAlloc(4)
	b := h.MustAlloc(4)
	h.Free(a, 4)
	h.Free(b, 4)
	h.MustAlloc(4)
	if len(h.free[4]) != 1 {
		t.Fatalf("size class 4 has %d free blocks, want 1", len(h.free[4]))
	}
	h.MustAlloc(4)
	if _, ok := h.free[4]; ok {
		t.Fatal("size class 4 entry survived after its last block was reused")
	}
}

func TestInUseAccounting(t *testing.T) {
	h := New(testRegion())
	a := h.MustAlloc(4)
	_ = h.MustAlloc(2)
	if h.InUse() != 48 {
		t.Fatalf("InUse = %d, want 48", h.InUse())
	}
	h.Free(a, 4)
	if h.InUse() != 16 {
		t.Fatalf("InUse after free = %d, want 16", h.InUse())
	}
}

func TestFreeOutsideRegionPanics(t *testing.T) {
	h := New(testRegion())
	defer func() {
		if recover() == nil {
			t.Fatal("Free outside region did not panic")
		}
	}()
	h.Free(memaddr.DRAMBase, 1)
}

func TestHighWater(t *testing.T) {
	h := New(testRegion())
	h.MustAlloc(10)
	if h.HighWater() != memaddr.NVMBase+80 {
		t.Fatalf("HighWater = %#x, want %#x", h.HighWater(), memaddr.NVMBase+80)
	}
	// Freeing and reusing must not advance the high water mark.
	a := h.MustAlloc(2)
	hw := h.HighWater()
	h.Free(a, 2)
	h.MustAlloc(2)
	if h.HighWater() != hw {
		t.Fatal("reuse advanced high-water mark")
	}
}

// Property: live blocks never overlap and always stay inside the region,
// under arbitrary alloc/free interleavings.
func TestQuickNoOverlap(t *testing.T) {
	type op struct {
		Alloc bool
		Words uint8
	}
	f := func(ops []op) bool {
		h := New(testRegion())
		type block struct {
			addr  uint64
			words int
		}
		var live []block
		for _, o := range ops {
			words := int(o.Words%16) + 1
			if o.Alloc || len(live) == 0 {
				addr, err := h.Alloc(words)
				if err != nil {
					continue // exhaustion is fine
				}
				if addr < h.Region().Base || addr+uint64(words)*8 > h.Region().End() {
					return false
				}
				for _, b := range live {
					if addr < b.addr+uint64(b.words)*8 && b.addr < addr+uint64(words)*8 {
						return false // overlap
					}
				}
				live = append(live, block{addr, words})
			} else {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				h.Free(b.addr, b.words)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
