package sweep

import (
	"errors"
	"strings"
	"testing"
)

// TestProgressInvariants checks the live-progress contract: updates are
// serialized with emit, Done tracks exactly the emitted prefix, never
// decreases, ends at Total, and Busy stays within the worker pool.
func TestProgressInvariants(t *testing.T) {
	const n, workers = 40, 4
	emitted := 0
	lastDone := 0
	updates := 0
	_, err := RunWithProgress(n, workers,
		func(i int) (int, error) { return i * i, nil },
		func(i int, v int) { emitted++ },
		func(p Progress) {
			updates++
			if p.Total != n {
				t.Fatalf("Total = %d, want %d", p.Total, n)
			}
			if p.Done < lastDone {
				t.Fatalf("Done went backwards: %d after %d", p.Done, lastDone)
			}
			lastDone = p.Done
			// Serialized with emit under the same lock: the emitted
			// count and Done must agree at every update.
			if p.Done != emitted {
				t.Fatalf("Done = %d but emit has seen %d cells", p.Done, emitted)
			}
			if p.Busy < 0 || p.Busy > workers {
				t.Fatalf("Busy = %d outside [0, %d]", p.Busy, workers)
			}
			if p.Done > 0 && p.CellsPerSec <= 0 {
				t.Fatalf("Done = %d with non-positive rate %v", p.Done, p.CellsPerSec)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if updates != n {
		t.Errorf("progress fired %d times, want once per cell = %d", updates, n)
	}
	if lastDone != n {
		t.Errorf("final Done = %d, want %d", lastDone, n)
	}
}

// TestProgressOnFailure checks that a failing sweep still reports
// progress and that Done never exceeds the successful prefix the emit
// contract promises.
func TestProgressOnFailure(t *testing.T) {
	boom := errors.New("boom")
	maxDone := 0
	_, err := RunWithProgress(20, 4,
		func(i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		},
		nil,
		func(p Progress) {
			if p.Done > maxDone {
				maxDone = p.Done
			}
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if maxDone > 5 {
		t.Errorf("Done reached %d past the failing cell 5", maxDone)
	}
}

// TestRunUnchangedByNilProgress pins Run's delegation: a nil progress
// consumer produces exactly the old behaviour.
func TestRunUnchangedByNilProgress(t *testing.T) {
	var order []int
	results, err := Run(10, 3,
		func(i int) (int, error) { return i + 100, nil },
		func(i int, v int) { order = append(order, i) })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i+100 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order[%d] = %d", i, got)
		}
	}
}

// TestStderrProgressRenders checks the one-line renderer: counts and
// occupancy appear, the line starts with a carriage return for in-place
// updates, and the final update terminates the line.
func TestStderrProgressRenders(t *testing.T) {
	var b strings.Builder
	render := StderrProgress(&b, "grid")
	render(Progress{Done: 3, Total: 8, Busy: 2, CellsPerSec: 1.5})
	mid := b.String()
	if !strings.HasPrefix(mid, "\r") {
		t.Error("progress line does not start with carriage return")
	}
	for _, want := range []string{"grid:", "3/8 cells", "2 busy", "1.5 cells/s"} {
		if !strings.Contains(mid, want) {
			t.Errorf("progress line missing %q: %q", want, mid)
		}
	}
	if strings.Contains(mid, "\n") {
		t.Error("mid-sweep update emitted a newline")
	}
	render(Progress{Done: 8, Total: 8, CellsPerSec: 2})
	if !strings.HasSuffix(b.String(), "\n") {
		t.Error("final update did not terminate the line")
	}
}
