package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultsKeyedByCell(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Run(50, workers, func(i int) (int, error) {
			// Reverse the completion order with a tiny stagger so any
			// arrival-order bug shows up.
			time.Sleep(time.Duration(50-i) * time.Microsecond)
			return i * i, nil
		}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: cell %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestEmitInCellOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	_, err := Run(40, 8, func(i int) (int, error) {
		time.Sleep(time.Duration((i*7)%13) * time.Microsecond)
		return i, nil
	}, func(i, v int) {
		if i != v {
			t.Errorf("emit(%d, %d): index/value mismatch", i, v)
		}
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 40 {
		t.Fatalf("emitted %d cells, want 40", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("emit order %v: position %d got cell %d", order[:i+1], i, v)
		}
	}
}

func TestLowestIndexedErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var emitted []int
	_, err := Run(20, 4, func(i int) (int, error) {
		// Cells 7 and 12 both fail; 12 tends to fail first in wall time.
		if i == 12 {
			return 0, fmt.Errorf("cell 12: %w", boom)
		}
		if i == 7 {
			time.Sleep(2 * time.Millisecond)
			return 0, fmt.Errorf("cell 7: %w", boom)
		}
		return i, nil
	}, func(i, v int) { emitted = append(emitted, i) })
	if err == nil {
		t.Fatal("sweep with failing cells returned nil error")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not *sweep.Error", err)
	}
	if se.Cell != 7 {
		t.Fatalf("reported cell %d, want lowest failing cell 7", se.Cell)
	}
	if !errors.Is(err, boom) {
		t.Fatal("Unwrap lost the cell's own error")
	}
	// The emitted prefix must be exactly the cells a sequential loop
	// would have completed before the error: 0..6.
	for i, v := range emitted {
		if v != i || v >= 7 {
			t.Fatalf("emitted %v: sequential prefix before cell 7 violated", emitted)
		}
	}
}

func TestPanicRecoveredWithCellIdentity(t *testing.T) {
	_, err := Run(10, 4, func(i int) (int, error) {
		if i == 3 {
			panic("kaboom")
		}
		return i, nil
	}, nil)
	if err == nil {
		t.Fatal("panicking sweep returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T does not unwrap to *sweep.PanicError: %v", err, err)
	}
	if pe.Cell != 3 {
		t.Fatalf("panic attributed to cell %d, want 3", pe.Cell)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value %v, want kaboom", pe.Value)
	}
	if pe.Stack == "" {
		t.Fatal("panic error carries no stack")
	}
}

func TestFirstErrorCancelsScheduling(t *testing.T) {
	// With one worker the sweep degenerates to a sequential loop: after
	// cell 2 fails, no later cell may start.
	var started atomic.Int32
	_, err := Run(100, 1, func(i int) (int, error) {
		started.Add(1)
		if i == 2 {
			return 0, errors.New("stop here")
		}
		return i, nil
	}, nil)
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n != 3 {
		t.Fatalf("started %d cells after early failure, want 3", n)
	}
}

func TestWorkerCountRespected(t *testing.T) {
	var cur, peak atomic.Int32
	_, err := Run(32, 4, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return i, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Fatalf("observed %d concurrent cells with workers=4", p)
	}
}

func TestZeroCells(t *testing.T) {
	got, err := Run(0, 8, func(i int) (int, error) { return 0, errors.New("never") }, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(5); w != 5 {
		t.Errorf("Workers(5) = %d", w)
	}
}
