// Package sweep is the deterministic parallel engine behind every
// evaluation grid: the paper's (benchmark x mechanism) figures, the
// crash-injection sweeps, and the ablation parameter scans are all
// embarrassingly parallel, so they run on a bounded worker pool and must
// produce bit-identical output to a sequential run.
//
// The determinism contract:
//
//   - every cell is a pure function of its index (each simulation seeds
//     its own RNG from its configuration), so results land in a slice
//     keyed by cell index, never by completion order;
//   - progress callbacks are serialized behind a reorder buffer and fire
//     in cell order 0, 1, 2, ... exactly as a sequential loop would;
//   - on failure the error reported is the one the sequential loop would
//     have hit first (the lowest-indexed failing cell), and the emitted
//     progress prefix stops exactly there;
//   - panics inside a cell are recovered into a *PanicError carrying the
//     cell index and stack, so one bad configuration cannot take down a
//     thousand-cell sweep without attribution.
//
// Workers are handed cell indices monotonically, which means every cell
// below the first failing index has been started (and runs to
// completion) before the failure is observed — the successful prefix of
// a failed sweep is therefore identical to the sequential path's.
package sweep

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a -j style worker-count flag: values <= 0 select
// runtime.GOMAXPROCS(0) (all available cores), anything else is taken
// as-is.
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// PanicError is a cell panic recovered into an error.
type PanicError struct {
	Cell  int    // index of the panicking cell
	Value any    // the value passed to panic
	Stack string // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// Error identifies which cell of a sweep failed. Unwrap exposes the
// cell's own error (a *PanicError if the cell panicked), so callers can
// use errors.As to attach benchmark/mechanism identity or trim result
// slices to the successful prefix.
type Error struct {
	Cell int
	Err  error
}

func (e *Error) Error() string { return e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// Run executes cells 0..n-1 on at most workers concurrent goroutines
// (workers <= 0 selects runtime.GOMAXPROCS(0)) and returns the results
// indexed by cell.
//
// emit (may be nil) is the serialized progress callback: it is invoked
// in strict cell order for every successful cell that precedes the
// first failure, regardless of the order cells actually complete.
//
// On failure Run returns a *Error wrapping the lowest-indexed failing
// cell's error; results[i] is still valid for every i below that index.
// The first failure also cancels the sweep: cells not yet started are
// never run (cells already in flight finish, and their results are
// discarded by the caller's error path).
func Run[T any](n, workers int, cell func(i int) (T, error), emit func(i int, v T)) ([]T, error) {
	return RunWithProgress(n, workers, cell, emit, nil)
}

// Progress is one live status update from a running sweep, delivered
// after a cell completes. Done counts the in-order emitted prefix (the
// same cells emit has seen), so a progress consumer and the emit
// callback always agree; Busy is how many workers were executing a
// cell at the instant of the update.
type Progress struct {
	Done  int
	Total int
	Busy  int
	// Elapsed is wall time since the sweep started. CellsPerSec is the
	// completed-prefix rate over Elapsed; ETA extrapolates it over the
	// remaining cells (zero until the rate is known).
	Elapsed     time.Duration
	CellsPerSec float64
	ETA         time.Duration
}

// RunWithProgress is Run plus a live progress callback. progress (may
// be nil, reducing to Run) is serialized through the same reorder-
// buffer lock as emit — the two never interleave mid-call, so a
// progress consumer may freely share an output stream with emit. It
// fires after every cell completion (whether or not the emitted prefix
// advanced), and like emit it must not call back into the sweep.
func RunWithProgress[T any](n, workers int, cell func(i int) (T, error),
	emit func(i int, v T), progress func(Progress)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	start := time.Now()
	var (
		next   atomic.Int64 // next cell index to hand out
		failed atomic.Bool  // stop handing out new cells
		busy   atomic.Int64 // workers currently inside cell()

		mu       sync.Mutex // guards the reorder buffer below
		done     = make([]bool, n)
		nextEmit int
	)

	// finish records cell i's completion and drains the reorder buffer:
	// the contiguous prefix of completed, successful cells is emitted in
	// order. A failed cell stops the drain permanently, so the emitted
	// prefix matches what a sequential loop would have produced before
	// hitting the same error.
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for nextEmit < n && done[nextEmit] && errs[nextEmit] == nil {
			if emit != nil {
				emit(nextEmit, results[nextEmit])
			}
			nextEmit++
		}
		if progress != nil {
			p := Progress{
				Done:    nextEmit,
				Total:   n,
				Busy:    int(busy.Load()),
				Elapsed: time.Since(start),
			}
			if p.Elapsed > 0 && p.Done > 0 {
				p.CellsPerSec = float64(p.Done) / p.Elapsed.Seconds()
				p.ETA = time.Duration(float64(n-p.Done) / p.CellsPerSec * float64(time.Second))
			}
			progress(p)
		}
	}

	runCell := func(i int) {
		busy.Add(1)
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Cell: i, Value: v, Stack: string(debug.Stack())}
				failed.Store(true)
			}
			busy.Add(-1)
			finish(i)
		}()
		v, err := cell(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		results[i] = v
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, &Error{Cell: i, Err: err}
		}
	}
	return results, nil
}

// StderrProgress returns a Progress consumer rendering a single
// carriage-return-updated status line to w (typically os.Stderr):
//
//	label: 12/40 cells, 4 busy, 3.2 cells/s, ETA 9s
//
// The line is finished with a newline when the last cell lands. Pass
// the result as RunWithProgress's progress argument; because progress
// and emit are serialized, sharing w with an emit printer is safe but
// visually messy — prefer one or the other.
func StderrProgress(w io.Writer, label string) func(Progress) {
	return func(p Progress) {
		eta := "?"
		if p.Done == p.Total {
			eta = "0s"
		} else if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		fmt.Fprintf(w, "\r%s: %d/%d cells, %d busy, %.1f cells/s, ETA %-8s",
			label, p.Done, p.Total, p.Busy, p.CellsPerSec, eta)
		if p.Done == p.Total {
			fmt.Fprintln(w)
		}
	}
}
