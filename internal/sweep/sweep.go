// Package sweep is the deterministic parallel engine behind every
// evaluation grid: the paper's (benchmark x mechanism) figures, the
// crash-injection sweeps, and the ablation parameter scans are all
// embarrassingly parallel, so they run on a bounded worker pool and must
// produce bit-identical output to a sequential run.
//
// The determinism contract:
//
//   - every cell is a pure function of its index (each simulation seeds
//     its own RNG from its configuration), so results land in a slice
//     keyed by cell index, never by completion order;
//   - progress callbacks are serialized behind a reorder buffer and fire
//     in cell order 0, 1, 2, ... exactly as a sequential loop would;
//   - on failure the error reported is the one the sequential loop would
//     have hit first (the lowest-indexed failing cell), and the emitted
//     progress prefix stops exactly there;
//   - panics inside a cell are recovered into a *PanicError carrying the
//     cell index and stack, so one bad configuration cannot take down a
//     thousand-cell sweep without attribution.
//
// Workers are handed cell indices monotonically, which means every cell
// below the first failing index has been started (and runs to
// completion) before the failure is observed — the successful prefix of
// a failed sweep is therefore identical to the sequential path's.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a -j style worker-count flag: values <= 0 select
// runtime.GOMAXPROCS(0) (all available cores), anything else is taken
// as-is.
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// PanicError is a cell panic recovered into an error.
type PanicError struct {
	Cell  int    // index of the panicking cell
	Value any    // the value passed to panic
	Stack string // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: cell %d panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// Error identifies which cell of a sweep failed. Unwrap exposes the
// cell's own error (a *PanicError if the cell panicked), so callers can
// use errors.As to attach benchmark/mechanism identity or trim result
// slices to the successful prefix.
type Error struct {
	Cell int
	Err  error
}

func (e *Error) Error() string { return e.Err.Error() }
func (e *Error) Unwrap() error { return e.Err }

// Run executes cells 0..n-1 on at most workers concurrent goroutines
// (workers <= 0 selects runtime.GOMAXPROCS(0)) and returns the results
// indexed by cell.
//
// emit (may be nil) is the serialized progress callback: it is invoked
// in strict cell order for every successful cell that precedes the
// first failure, regardless of the order cells actually complete.
//
// On failure Run returns a *Error wrapping the lowest-indexed failing
// cell's error; results[i] is still valid for every i below that index.
// The first failure also cancels the sweep: cells not yet started are
// never run (cells already in flight finish, and their results are
// discarded by the caller's error path).
func Run[T any](n, workers int, cell func(i int) (T, error), emit func(i int, v T)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	errs := make([]error, n)
	var (
		next   atomic.Int64 // next cell index to hand out
		failed atomic.Bool  // stop handing out new cells

		mu       sync.Mutex // guards the reorder buffer below
		done     = make([]bool, n)
		nextEmit int
	)

	// finish records cell i's completion and drains the reorder buffer:
	// the contiguous prefix of completed, successful cells is emitted in
	// order. A failed cell stops the drain permanently, so the emitted
	// prefix matches what a sequential loop would have produced before
	// hitting the same error.
	finish := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for nextEmit < n && done[nextEmit] && errs[nextEmit] == nil {
			if emit != nil {
				emit(nextEmit, results[nextEmit])
			}
			nextEmit++
		}
	}

	runCell := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Cell: i, Value: v, Stack: string(debug.Stack())}
				failed.Store(true)
			}
			finish(i)
		}()
		v, err := cell(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		results[i] = v
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, &Error{Cell: i, Err: err}
		}
	}
	return results, nil
}
