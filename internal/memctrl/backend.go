package memctrl

import (
	"fmt"
	"strings"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
)

// Topology describes the multi-channel layout of the hybrid main memory:
// how many address-interleaved channels back each space (NVM and DRAM
// independently) and at what granularity consecutive blocks rotate across
// them. The default — one channel per space, 4 KB interleave — is the
// paper's Figure 1 machine.
type Topology struct {
	// NVMChannels and DRAMChannels are the per-space channel counts.
	// Each channel is a full Controller (its own banks, queues and
	// scheduler); adding channels adds memory-level parallelism without
	// changing per-channel timing.
	NVMChannels  int
	DRAMChannels int
	// InterleaveBytes is the interleave granularity: block i of a space
	// (blocks of this many bytes) lives on channel i mod channels. Must
	// be a power of two no smaller than the cache-line size.
	InterleaveBytes uint64
}

// WithDefaults fills zero fields with the single-channel paper topology.
func (t Topology) WithDefaults() Topology {
	if t.NVMChannels == 0 {
		t.NVMChannels = 1
	}
	if t.DRAMChannels == 0 {
		t.DRAMChannels = 1
	}
	if t.InterleaveBytes == 0 {
		t.InterleaveBytes = 4096
	}
	return t
}

// Validate rejects topologies the defaults would silently accept but that
// misbehave downstream. Call it on the defaulted topology.
func (t Topology) Validate() error {
	if t.NVMChannels <= 0 || t.DRAMChannels <= 0 {
		return fmt.Errorf("memctrl: channel counts (NVM %d, DRAM %d) must be positive",
			t.NVMChannels, t.DRAMChannels)
	}
	if t.InterleaveBytes < memaddr.LineSize {
		return fmt.Errorf("memctrl: interleave granularity %d below the %d-byte cache line — one line would straddle channels",
			t.InterleaveBytes, memaddr.LineSize)
	}
	if t.InterleaveBytes&(t.InterleaveBytes-1) != 0 {
		return fmt.Errorf("memctrl: interleave granularity %d must be a power of two", t.InterleaveBytes)
	}
	return nil
}

// shift returns log2(InterleaveBytes) for the channel-index computation.
func (t Topology) shift() uint {
	s := uint(0)
	for b := t.InterleaveBytes; b > 1; b >>= 1 {
		s++
	}
	return s
}

// Backend is the multi-channel hybrid main memory of Figure 1, built from
// a Topology: N address-interleaved NVM channels and M DRAM channels,
// each an independent Controller. It satisfies the cache hierarchy's
// Memory interface and the mechanism layer's port interface.
//
// A request for an address outside every mapped space does not panic
// mid-simulation: the backend records a sticky fault (first one wins),
// completes the request so the simulation can drain, and surfaces the
// fault through Fault() — which System.Run checks after every run.
type Backend struct {
	k     *sim.Kernel
	topo  Topology
	shift uint
	nvm   []*Controller
	dram  []*Controller
	fault error
}

// NewBackend builds the topology's controllers, registered with k in
// channel order (NVM channels first, then DRAM — the same kernel tick
// order as the original two-controller router for the 1x1 topology).
// nvmCfg and dramCfg configure every channel of their space; with more
// than one channel the per-channel name gains the channel index
// ("NVM0", "NVM1", ...).
func NewBackend(k *sim.Kernel, topo Topology, nvmCfg, dramCfg Config) (*Backend, error) {
	topo = topo.WithDefaults()
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	b := &Backend{k: k, topo: topo, shift: topo.shift()}
	b.nvm = buildChannels(k, nvmCfg, topo.NVMChannels)
	b.dram = buildChannels(k, dramCfg, topo.DRAMChannels)
	return b, nil
}

func buildChannels(k *sim.Kernel, cfg Config, n int) []*Controller {
	chans := make([]*Controller, n)
	for i := range chans {
		c := cfg
		if n > 1 {
			c.Name = fmt.Sprintf("%s%d", cfg.Name, i)
		}
		chans[i] = New(k, c)
	}
	return chans
}

// Topology returns the (defaulted) topology.
func (b *Backend) Topology() Topology { return b.topo }

// NVM returns the NVM channels (index order = interleave order).
func (b *Backend) NVM() []*Controller { return b.nvm }

// DRAM returns the DRAM channels.
func (b *Backend) DRAM() []*Controller { return b.dram }

// channelIndex maps a space-relative offset to its channel.
func (b *Backend) channelIndex(off uint64, n int) int {
	if n == 1 {
		return 0
	}
	return int((off >> b.shift) % uint64(n))
}

// For returns the controller owning addr, or a descriptive error for an
// address outside every mapped space. Log-region addresses interleave
// across the NVM channels like data-region ones.
func (b *Backend) For(addr uint64) (*Controller, error) {
	c, _, err := b.forWithID(addr)
	return c, err
}

// forWithID resolves addr to its controller plus the global channel id
// used by SetProbe's track numbering: NVM channels 0..N-1, DRAM
// channels N..N+M-1.
func (b *Backend) forWithID(addr uint64) (*Controller, int, error) {
	switch memaddr.Classify(addr) {
	case memaddr.SpaceDRAM:
		i := b.channelIndex(addr-memaddr.DRAMBase, len(b.dram))
		return b.dram[i], len(b.nvm) + i, nil
	case memaddr.SpaceNVM:
		i := b.channelIndex(addr-memaddr.NVMBase, len(b.nvm))
		return b.nvm[i], i, nil
	case memaddr.SpaceNVMLog:
		i := b.channelIndex(addr-memaddr.NVMLogBase, len(b.nvm))
		return b.nvm[i], i, nil
	default:
		return nil, -1, fmt.Errorf("memctrl: request for unmapped address %#x (mapped: DRAM [%#x,...), NVM [%#x,...), NVMLog [%#x,...))",
			addr, memaddr.DRAMBase, memaddr.NVMBase, memaddr.NVMLogBase)
	}
}

// recordFault keeps the first unmapped-address error and completes the
// request's callback on the next cycle, so the simulation drains instead
// of deadlocking; the fault is surfaced after the run via Fault().
func (b *Backend) recordFault(err error, done func()) {
	if b.fault == nil {
		b.fault = err
	}
	if done != nil {
		b.k.Schedule(1, done)
	}
}

// Fault returns the first unmapped-address error a request hit, or nil.
func (b *Backend) Fault() error { return b.fault }

// Read enqueues a line read on the owning channel.
func (b *Backend) Read(lineAddr uint64, done func()) {
	c, err := b.For(lineAddr)
	if err != nil {
		b.recordFault(err, done)
		return
	}
	c.Read(lineAddr, done)
}

// Write enqueues a line write on the owning channel.
func (b *Backend) Write(lineAddr uint64, apply, onDurable func()) {
	c, err := b.For(lineAddr)
	if err != nil {
		b.recordFault(err, onDurable)
		return
	}
	c.Write(lineAddr, apply, onDurable)
}

// WriteTracked enqueues a line write like Write, additionally marking
// the flight-recorder write w (may be nil) with its service-start cycle
// and the owning channel's global id (NVM 0..N-1, DRAM N..N+M-1, the
// SetProbe track numbering). Faulted requests never mark w — the flight
// recorder treats the missing checkpoint defensively.
func (b *Backend) WriteTracked(lineAddr uint64, apply, onDurable func(), w *txflight.Write) {
	c, id, err := b.forWithID(lineAddr)
	if err != nil {
		b.recordFault(err, onDurable)
		return
	}
	if w == nil {
		c.Write(lineAddr, apply, onDurable)
		return
	}
	c.WriteTracked(lineAddr, apply, onDurable, w, id)
}

// PendingNVMWrites reports queued, unissued writes summed across the NVM
// channels — the quantity the SP mechanism's pcommit stall drains to
// zero.
func (b *Backend) PendingNVMWrites() int {
	n := 0
	for _, c := range b.nvm {
		n += c.PendingWrites()
	}
	return n
}

// Quiescent reports whether every channel is idle.
func (b *Backend) Quiescent() bool {
	for _, c := range b.nvm {
		if !c.Quiescent() {
			return false
		}
	}
	for _, c := range b.dram {
		if !c.Quiescent() {
			return false
		}
	}
	return true
}

// SetProbe attaches the observability recorder to every channel (nil
// disables probing). Channel IDs label the trace tracks: NVM channels
// take 0..N-1, DRAM channels N..N+M-1 — for the 1x1 topology that is the
// original 0=NVM, 1=DRAM assignment.
func (b *Backend) SetProbe(p *obs.Probe) {
	for i, c := range b.nvm {
		c.SetProbe(p, i)
	}
	for i, c := range b.dram {
		c.SetProbe(p, len(b.nvm)+i)
	}
}

// SetMetrics wires every channel's write-drain histograms into the
// registry, one pair per channel keyed by the channel's (lowercased)
// name: "wpq_drain_cycles_nvm0", "wpq_drain_writes_nvm0", ... — for the
// 1x1 topology simply "..._nvm" and "..._dram". A nil registry hands
// the controllers nil histograms, the disabled path.
func (b *Backend) SetMetrics(reg *metrics.Registry) {
	for _, c := range append(append([]*Controller{}, b.nvm...), b.dram...) {
		name := strings.ToLower(c.cfg.Name)
		c.SetMetrics(
			reg.Histogram("wpq_drain_cycles_"+name),
			reg.Histogram("wpq_drain_writes_"+name),
		)
	}
}

// AddQueueSources registers every channel's read/write queue depths with
// the probe's time-series sampler, one source pair per channel
// ("nvm0_read_queue", "nvm0_write_queue", ..., "dram0_read_queue", ...),
// so exported metrics CSVs distinguish channels.
func (b *Backend) AddQueueSources(p *obs.Probe) {
	for i, c := range b.nvm {
		c := c
		p.AddSource(fmt.Sprintf("nvm%d_read_queue", i), c.PendingReads)
		p.AddSource(fmt.Sprintf("nvm%d_write_queue", i), c.PendingWrites)
	}
	for i, c := range b.dram {
		c := c
		p.AddSource(fmt.Sprintf("dram%d_read_queue", i), c.PendingReads)
		p.AddSource(fmt.Sprintf("dram%d_write_queue", i), c.PendingWrites)
	}
}

// NVMStats returns the NVM-space statistics aggregated across channels
// (identical to the single channel's stats for a 1-channel space).
func (b *Backend) NVMStats() Stats { return aggregateStats(b.nvm) }

// DRAMStats returns the DRAM-space statistics aggregated across channels.
func (b *Backend) DRAMStats() Stats { return aggregateStats(b.dram) }

// NVMChannelStats returns one Stats per NVM channel, in interleave order.
func (b *Backend) NVMChannelStats() []Stats { return channelStats(b.nvm) }

// DRAMChannelStats returns one Stats per DRAM channel.
func (b *Backend) DRAMChannelStats() []Stats { return channelStats(b.dram) }

func channelStats(chans []*Controller) []Stats {
	out := make([]Stats, len(chans))
	for i, c := range chans {
		out[i] = c.Stats()
	}
	return out
}

// aggregateStats sums the additive counters and takes the maximum of the
// peak/max ones: WriteQueuePeak and ReadLatencyMax are per-channel highs,
// so the aggregate reports the worst channel.
func aggregateStats(chans []*Controller) Stats {
	var agg Stats
	for _, c := range chans {
		s := c.Stats()
		agg.Reads += s.Reads
		agg.Writes += s.Writes
		agg.RowHits += s.RowHits
		agg.RowMisses += s.RowMisses
		agg.ReadLatencySum += s.ReadLatencySum
		agg.DrainEntries += s.DrainEntries
		agg.BusyCycles += s.BusyCycles
		if s.ReadLatencyMax > agg.ReadLatencyMax {
			agg.ReadLatencyMax = s.ReadLatencyMax
		}
		if s.WriteQueuePeak > agg.WriteQueuePeak {
			agg.WriteQueuePeak = s.WriteQueuePeak
		}
	}
	return agg
}

// NVMWear returns the per-line write-count profile merged across the NVM
// channels (the channel's own tracker when the space has one channel).
func (b *Backend) NVMWear() *Wear {
	if len(b.nvm) == 1 {
		return b.nvm[0].Wear()
	}
	ws := make([]*Wear, len(b.nvm))
	for i, c := range b.nvm {
		ws[i] = c.Wear()
	}
	return MergeWear(ws...)
}
