package memctrl

import (
	"strings"
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/sim"
)

func dramTestConfig() Config {
	return Config{Name: "DRAM", Banks: 4, ReadHit: 13, ReadMiss: 40, WriteHit: 13, WriteMiss: 40}
}

func TestBackendDispatch(t *testing.T) {
	k := sim.NewKernel()
	b, err := NewBackend(k, Topology{}, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var nvmDone, dramDone, logDone bool
	b.Read(memaddr.NVMBase, func() { nvmDone = true })
	b.Read(memaddr.DRAMBase, func() { dramDone = true })
	b.Write(memaddr.NVMLogBase, nil, func() { logDone = true })
	k.RunUntil(func() bool { return nvmDone && dramDone && logDone }, 10000)
	if b.NVMStats().Reads != 1 || b.DRAMStats().Reads != 1 {
		t.Fatalf("backend misdispatched: NVM %d reads, DRAM %d reads",
			b.NVMStats().Reads, b.DRAMStats().Reads)
	}
	if b.NVMStats().Writes != 1 {
		t.Fatal("log write did not reach the NVM space")
	}
	if !b.Quiescent() {
		t.Fatal("backend not quiescent after all completions")
	}
	if err := b.Fault(); err != nil {
		t.Fatalf("mapped traffic recorded a fault: %v", err)
	}
}

func TestBackendUnmappedAddressFaults(t *testing.T) {
	k := sim.NewKernel()
	b, err := NewBackend(k, Topology{}, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.For(4); err == nil {
		t.Fatal("For accepted an unmapped address")
	}
	// The request must still complete (the machine drains) and the fault
	// must be sticky and descriptive.
	done := false
	b.Read(4, func() { done = true })
	b.Write(8, nil, nil)
	k.RunUntil(func() bool { return done }, 100)
	if !done {
		t.Fatal("unmapped read never completed — simulation would deadlock")
	}
	ferr := b.Fault()
	if ferr == nil {
		t.Fatal("unmapped request left no fault")
	}
	if !strings.Contains(ferr.Error(), "0x4") {
		t.Fatalf("fault does not name the first offending address: %v", ferr)
	}
	if !b.Quiescent() {
		t.Fatal("faulted backend not quiescent")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("default topology rejected: %v", err)
	}
	bad := []Topology{
		{NVMChannels: -1, DRAMChannels: 1, InterleaveBytes: 4096},
		{NVMChannels: 1, DRAMChannels: -2, InterleaveBytes: 4096},
		{NVMChannels: 1, DRAMChannels: 1, InterleaveBytes: 32},   // below line size
		{NVMChannels: 1, DRAMChannels: 1, InterleaveBytes: 3000}, // not a power of two
	}
	for _, topo := range bad {
		if err := topo.WithDefaults().Validate(); err == nil {
			t.Errorf("Validate accepted %+v", topo)
		}
	}
	if _, err := NewBackend(sim.NewKernel(), Topology{InterleaveBytes: 100}, testConfig(), dramTestConfig()); err == nil {
		t.Fatal("NewBackend accepted an invalid topology")
	}
}

func TestBackendInterleavesAcrossChannels(t *testing.T) {
	k := sim.NewKernel()
	topo := Topology{NVMChannels: 4, DRAMChannels: 2, InterleaveBytes: 4096}
	b, err := NewBackend(k, topo, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive 4 KB blocks must rotate round-robin over the channels.
	for blk := 0; blk < 8; blk++ {
		addr := memaddr.NVMBase + uint64(blk)*4096
		c, err := b.For(addr)
		if err != nil {
			t.Fatal(err)
		}
		if want := b.NVM()[blk%4]; c != want {
			t.Fatalf("NVM block %d mapped to %q, want channel %d", blk, c.Config().Name, blk%4)
		}
		// Every line of a block stays on the block's channel.
		if c2, _ := b.For(addr + 4096 - memaddr.LineSize); c2 != c {
			t.Fatalf("NVM block %d straddles channels", blk)
		}
	}
	for blk := 0; blk < 4; blk++ {
		c, err := b.For(memaddr.DRAMBase + uint64(blk)*4096)
		if err != nil {
			t.Fatal(err)
		}
		if want := b.DRAM()[blk%2]; c != want {
			t.Fatalf("DRAM block %d mapped to %q, want channel %d", blk, c.Config().Name, blk%2)
		}
	}
	// Log space interleaves over the NVM channels too.
	if c, _ := b.For(memaddr.NVMLogBase + 4096); c != b.NVM()[1] {
		t.Fatal("NVMLog block 1 not on NVM channel 1")
	}
	// Channel naming: indexed when a space has several channels.
	if got := b.NVM()[2].Config().Name; got != "NVM2" {
		t.Fatalf("channel name = %q, want NVM2", got)
	}
	if got := b.DRAM()[1].Config().Name; got != "DRAM1" {
		t.Fatalf("channel name = %q, want DRAM1", got)
	}
}

func TestBackendSingleChannelKeepsSeedNaming(t *testing.T) {
	b, err := NewBackend(sim.NewKernel(), Topology{}, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.NVM()[0].Config().Name; got != "NVM" {
		t.Fatalf("single NVM channel named %q, want NVM", got)
	}
	if got := b.DRAM()[0].Config().Name; got != "DRAM" {
		t.Fatalf("single DRAM channel named %q, want DRAM", got)
	}
}

func TestBackendAggregatesStatsAndWear(t *testing.T) {
	k := sim.NewKernel()
	topo := Topology{NVMChannels: 4, DRAMChannels: 1, InterleaveBytes: 4096}
	b, err := NewBackend(k, topo, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for blk := 0; blk < 8; blk++ {
		addr := memaddr.NVMBase + uint64(blk)*4096
		b.Read(addr, func() { reads++ })
		b.Write(addr, nil, func() { writes++ })
		b.Write(addr, nil, func() { writes++ }) // same line again: wear hotspots
	}
	k.RunUntil(func() bool { return reads == 8 && writes == 16 }, 100000)
	if reads != 8 || writes != 16 {
		t.Fatalf("completed %d reads / %d writes, want 8/16", reads, writes)
	}
	agg := b.NVMStats()
	if agg.Reads != 8 || agg.Writes != 16 {
		t.Fatalf("aggregate = %d reads / %d writes, want 8/16", agg.Reads, agg.Writes)
	}
	per := b.NVMChannelStats()
	if len(per) != 4 {
		t.Fatalf("%d per-channel stats, want 4", len(per))
	}
	var sum uint64
	for i, s := range per {
		if s.Reads != 2 || s.Writes != 4 {
			t.Fatalf("channel %d = %d reads / %d writes, want the even 2/4 split", i, s.Reads, s.Writes)
		}
		sum += s.ReadLatencySum
		if s.ReadLatencyMax > agg.ReadLatencyMax {
			t.Fatalf("aggregate ReadLatencyMax %d below channel %d's %d", agg.ReadLatencyMax, i, s.ReadLatencyMax)
		}
	}
	if agg.ReadLatencySum != sum {
		t.Fatalf("aggregate latency sum %d != channel total %d", agg.ReadLatencySum, sum)
	}
	w := b.NVMWear()
	if w.TotalWrites() != 16 || w.LinesTouched() != 8 {
		t.Fatalf("merged wear = %d writes / %d lines, want 16/8", w.TotalWrites(), w.LinesTouched())
	}
	if w.MaxLineWrites() != 2 {
		t.Fatalf("merged max line writes = %d, want 2", w.MaxLineWrites())
	}
}

func TestBackendProbeChannelIDs(t *testing.T) {
	k := sim.NewKernel()
	b, err := NewBackend(k, Topology{NVMChannels: 2, DRAMChannels: 2}, testConfig(), dramTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := obs.NewProbe(64)
	b.SetProbe(p) // must not panic; IDs are NVM 0..1, DRAM 2..3
	b.AddQueueSources(p)
	// Nil probe is the observability-off path: both must be no-ops.
	b.SetProbe(nil)
	var nilProbe *obs.Probe
	b.AddQueueSources(nilProbe)
}
