package memctrl

import (
	"fmt"
	"sort"
	"strings"

	"pmemaccel/internal/obs/metrics"
)

// Wear tracks per-line write counts on a channel — endurance analysis for
// NVM technologies with limited write cycles. The transaction cache
// trades coalescing for decoupling (one NVM write per committed store),
// so its wear profile versus Kiln's and Optimal's is a first-order
// adoption question for STT-RAM/PCM deployments.
type Wear struct {
	counts map[uint64]uint64
	total  uint64
}

// newWear returns an empty tracker.
func newWear() *Wear {
	return &Wear{counts: make(map[uint64]uint64)}
}

// MergeWear combines per-channel trackers into one whole-space profile
// (interleaving splits a space's lines across channels; endurance
// questions are asked of the space).
func MergeWear(ws ...*Wear) *Wear {
	m := newWear()
	for _, w := range ws {
		for line, c := range w.counts {
			m.counts[line] += c
		}
		m.total += w.total
	}
	return m
}

// record notes one write to lineAddr.
func (w *Wear) record(lineAddr uint64) {
	w.counts[lineAddr]++
	w.total++
}

// LinesTouched reports how many distinct lines were written.
func (w *Wear) LinesTouched() int { return len(w.counts) }

// TotalWrites reports all writes.
func (w *Wear) TotalWrites() uint64 { return w.total }

// MaxLineWrites reports the hottest line's write count — the wear-out
// bound absent wear leveling.
func (w *Wear) MaxLineWrites() uint64 {
	var max uint64
	for _, c := range w.counts {
		if c > max {
			max = c
		}
	}
	return max
}

// MeanLineWrites reports the average writes per touched line.
func (w *Wear) MeanLineWrites() float64 {
	if len(w.counts) == 0 {
		return 0
	}
	return float64(w.total) / float64(len(w.counts))
}

// Hotness is the max/mean ratio: 1.0 is perfectly even wear; large values
// mean a few lines absorb most writes (the log head, hot tree nodes).
func (w *Wear) Hotness() float64 {
	mean := w.MeanLineWrites()
	if mean == 0 {
		return 0
	}
	return float64(w.MaxLineWrites()) / mean
}

// FillHistogram streams the per-line write-count distribution into h:
// one observation per touched line, valued at that line's write count.
// The result is the wear distribution the per-line studies ask for —
// p50/p99/max writes-per-line — computed once at collection time (wear
// counts are only final at end of run, so this is not a hot path).
func (w *Wear) FillHistogram(h *metrics.Histogram) {
	if h == nil {
		return
	}
	for _, c := range w.counts {
		h.Observe(c)
	}
}

// TopLines returns the n hottest lines, hottest first.
func (w *Wear) TopLines(n int) []struct {
	Line   uint64
	Writes uint64
} {
	type lw struct {
		Line   uint64
		Writes uint64
	}
	all := make([]lw, 0, len(w.counts))
	for l, c := range w.counts {
		all = append(all, lw{l, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Writes != all[j].Writes {
			return all[i].Writes > all[j].Writes
		}
		return all[i].Line < all[j].Line
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Line   uint64
		Writes uint64
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Line   uint64
			Writes uint64
		}{all[i].Line, all[i].Writes}
	}
	return out
}

// String summarizes the wear profile.
func (w *Wear) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wear: %d writes over %d lines (mean %.2f, max %d, hotness %.1fx)",
		w.TotalWrites(), w.LinesTouched(), w.MeanLineWrites(), w.MaxLineWrites(), w.Hotness())
	return b.String()
}
