package memctrl

import (
	"fmt"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/sim"
)

// Router dispatches line requests to the NVM or DRAM controller by
// address space — the hybrid main memory of Figure 1. It satisfies the
// cache hierarchy's Memory interface.
type Router struct {
	NVM  *Controller
	DRAM *Controller
}

// NewRouter builds both controllers with the given configs and returns
// the router.
func NewRouter(k *sim.Kernel, nvm, dram Config) *Router {
	return &Router{NVM: New(k, nvm), DRAM: New(k, dram)}
}

// For returns the controller owning addr. Log-region addresses are NVM.
func (r *Router) For(addr uint64) *Controller {
	switch memaddr.Classify(addr) {
	case memaddr.SpaceDRAM:
		return r.DRAM
	case memaddr.SpaceNVM, memaddr.SpaceNVMLog:
		return r.NVM
	default:
		panic(fmt.Sprintf("memctrl: request for unmapped address %#x", addr))
	}
}

// Read enqueues a line read on the owning channel.
func (r *Router) Read(lineAddr uint64, done func()) {
	r.For(lineAddr).Read(lineAddr, done)
}

// Write enqueues a line write on the owning channel.
func (r *Router) Write(lineAddr uint64, apply, onDurable func()) {
	r.For(lineAddr).Write(lineAddr, apply, onDurable)
}

// Quiescent reports whether both channels are idle.
func (r *Router) Quiescent() bool {
	return r.NVM.Quiescent() && r.DRAM.Quiescent()
}
