package memctrl

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/sim"
)

func testConfig() Config {
	return Config{
		Name: "NVM", Banks: 4, RowBytes: 1024,
		ReadHit: 30, ReadMiss: 130, WriteHit: 60, WriteMiss: 152,
		ReadWindow: 8, WriteWindow: 64, DrainHigh: 51, DrainLow: 16,
	}
}

func TestReadCompletesWithMissLatency(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	done := uint64(0)
	c.Read(memaddr.NVMBase, func() { done = k.Now() })
	k.RunUntil(func() bool { return done != 0 }, 10000)
	// Issue happens on the first tick (cycle 1), completion 130 later.
	if done != 1+130 {
		t.Fatalf("read completed at %d, want 131 (cold row miss)", done)
	}
	if c.Stats().Reads != 1 || c.Stats().RowMisses != 1 {
		t.Fatalf("stats = %+v, want 1 read, 1 miss", c.Stats())
	}
}

func TestRowHitIsFaster(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	var t1, t2 uint64
	c.Read(memaddr.NVMBase, func() { t1 = k.Now() })
	c.Read(memaddr.NVMBase+64, func() { t2 = k.Now() }) // same row, same bank? bank = line%4
	// line 0 -> bank 0; line 1 -> bank 1: different banks. Use +64*4 for
	// same bank, same row (row = line/banks/...).
	k.RunUntil(func() bool { return t1 != 0 && t2 != 0 }, 10000)
	if c.Stats().RowHits == 0 {
		// bank interleave may have split them; force same bank:
		k2 := sim.NewKernel()
		c2 := New(k2, testConfig())
		var u1, u2 uint64
		c2.Read(memaddr.NVMBase, func() { u1 = k2.Now() })
		c2.Read(memaddr.NVMBase+64*4, func() { u2 = k2.Now() })
		k2.RunUntil(func() bool { return u1 != 0 && u2 != 0 }, 10000)
		if c2.Stats().RowHits != 1 {
			t.Fatalf("same-bank same-row second read not a row hit: %+v", c2.Stats())
		}
		if u2-u1 > 130 {
			t.Fatalf("row hit took %d cycles after first, want ~30", u2-u1)
		}
	}
}

func TestBankParallelism(t *testing.T) {
	// Two reads to different banks overlap; two to the same bank
	// serialize.
	k := sim.NewKernel()
	c := New(k, testConfig())
	var a, b uint64
	c.Read(memaddr.NVMBase, func() { a = k.Now() })    // bank 0
	c.Read(memaddr.NVMBase+64, func() { b = k.Now() }) // bank 1
	k.RunUntil(func() bool { return a != 0 && b != 0 }, 10000)
	if b != a+1 { // one-cycle command offset only
		t.Fatalf("different-bank reads done at %d and %d, want 1 cycle apart", a, b)
	}

	k2 := sim.NewKernel()
	c2 := New(k2, testConfig())
	var x, y uint64
	c2.Read(memaddr.NVMBase, func() { x = k2.Now() })
	c2.Read(memaddr.NVMBase+64*4, func() { y = k2.Now() }) // same bank
	k2.RunUntil(func() bool { return x != 0 && y != 0 }, 10000)
	if y-x < 30 {
		t.Fatalf("same-bank reads done %d apart, want >= row-hit latency", y-x)
	}
}

func TestWriteRunsApplyThenDone(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	var order []string
	c.Write(memaddr.NVMBase, func() { order = append(order, "apply") }, func() { order = append(order, "done") })
	k.RunUntil(func() bool { return len(order) == 2 }, 10000)
	if order[0] != "apply" || order[1] != "done" {
		t.Fatalf("order = %v, want [apply done]", order)
	}
	if c.Stats().Writes != 1 {
		t.Fatalf("writes = %d, want 1", c.Stats().Writes)
	}
}

func TestReadFirstPolicy(t *testing.T) {
	// With both queues populated (below drain threshold), reads issue
	// before writes.
	k := sim.NewKernel()
	c := New(k, testConfig())
	var readDone, writeDone uint64
	c.Write(memaddr.NVMBase+64*8, nil, func() { writeDone = k.Now() })
	c.Read(memaddr.NVMBase, func() { readDone = k.Now() })
	k.RunUntil(func() bool { return readDone != 0 && writeDone != 0 }, 10000)
	if readDone > writeDone {
		t.Fatalf("read done at %d after write at %d despite read-first", readDone, writeDone)
	}
}

func TestWriteDrainTriggersAtThreshold(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	c := New(k, cfg)
	// Keep a steady read supply so writes would starve without a drain.
	reads := 0
	var feed func()
	feed = func() {
		reads++
		if reads < 200 {
			c.Read(memaddr.NVMBase+uint64(reads%4)*64, func() { feed() })
		}
	}
	feed()
	writesDone := 0
	for i := 0; i < cfg.DrainHigh+5; i++ {
		c.Write(memaddr.NVMBase+uint64(i)*64, nil, func() { writesDone++ })
	}
	k.RunUntil(func() bool { return writesDone >= 20 }, 200000)
	if c.Stats().DrainEntries == 0 {
		t.Fatal("write queue exceeded threshold but no drain started")
	}
	if writesDone < 20 {
		t.Fatalf("only %d writes completed under read pressure", writesDone)
	}
}

func TestOpportunisticWritesWhenNoReads(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	done := 0
	for i := 0; i < 5; i++ {
		c.Write(memaddr.NVMBase+uint64(i)*64, nil, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 5 }, 10000)
	if done != 5 {
		t.Fatalf("%d/5 writes completed with empty read queue", done)
	}
	if c.Stats().DrainEntries != 0 {
		t.Fatal("drain triggered below threshold")
	}
}

func TestQuiescent(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	if !c.Quiescent() {
		t.Fatal("fresh controller not quiescent")
	}
	fired := false
	c.Read(memaddr.NVMBase, func() { fired = true })
	if c.Quiescent() {
		t.Fatal("controller with pending read is quiescent")
	}
	k.RunUntil(func() bool { return fired }, 10000)
	if !c.Quiescent() {
		t.Fatal("controller not quiescent after completion")
	}
}

func TestReadLatencyStats(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	n := 0
	for i := 0; i < 10; i++ {
		c.Read(memaddr.NVMBase+uint64(i)*64, func() { n++ })
	}
	k.RunUntil(func() bool { return n == 10 }, 100000)
	s := c.Stats()
	if s.Reads != 10 || s.ReadLatencySum == 0 || s.ReadLatencyMax == 0 {
		t.Fatalf("latency stats not accumulated: %+v", s)
	}
	if s.ReadLatencySum/s.Reads > s.ReadLatencyMax {
		t.Fatal("mean read latency exceeds max")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Banks == 0 || c.ReadWindow == 0 || c.WriteWindow == 0 ||
		c.DrainHigh == 0 || c.DrainLow == 0 || c.CmdPerCycle == 0 || c.RowBytes == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if c.DrainHigh != c.WriteWindow*8/10 {
		t.Fatalf("DrainHigh = %d, want 80%% of %d", c.DrainHigh, c.WriteWindow)
	}
}

// Property: writes to the same line complete (apply) in issue order, for
// any interleaving with other traffic. The transaction cache's
// address-matched acknowledgments depend on this.
func TestQuickSameLineWriteOrdering(t *testing.T) {
	f := func(seq []uint8) bool {
		k := sim.NewKernel()
		c := New(k, testConfig())
		var got []int
		n := 0
		for i, s := range seq {
			if len(got) > 60 {
				break
			}
			line := memaddr.NVMBase + uint64(s%4)*64*4 // few distinct lines
			id := i
			c.Write(line, nil, func() { got = append(got, id) })
			n++
			// Interleave some reads for scheduling noise.
			if s%3 == 0 {
				c.Read(memaddr.NVMBase+uint64(s)*64, nil)
			}
		}
		k.RunUntil(c.Quiescent, 1_000_000)
		if len(got) != n && n <= 60 {
			return false
		}
		// For each line, completion ids must be increasing among the
		// ids that wrote that line.
		lineOf := func(id int) uint64 { return uint64(seq[id]%4) * 64 * 4 }
		last := map[uint64]int{}
		for _, id := range got {
			l := lineOf(id)
			if prev, ok := last[l]; ok && prev > id {
				return false
			}
			last[l] = id
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every read eventually completes, regardless of write
// pressure (no starvation under drain mode).
func TestQuickNoReadStarvation(t *testing.T) {
	f := func(nWrites uint8) bool {
		k := sim.NewKernel()
		c := New(k, testConfig())
		for i := 0; i < int(nWrites); i++ {
			c.Write(memaddr.NVMBase+uint64(i)*64, nil, nil)
		}
		done := false
		c.Read(memaddr.NVMBase, func() { done = true })
		k.RunUntil(func() bool { return done }, 1_000_000)
		return done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteQueuePeakTracksDepth(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	for i := 0; i < 10; i++ {
		c.Write(memaddr.NVMBase+uint64(i)*64, nil, nil)
	}
	if c.Stats().WriteQueuePeak != 10 {
		t.Fatalf("peak = %d, want 10", c.Stats().WriteQueuePeak)
	}
}

func TestWearTracking(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, testConfig())
	done := 0
	for i := 0; i < 6; i++ {
		c.Write(memaddr.NVMBase, nil, func() { done++ }) // same line x6
	}
	for i := 0; i < 3; i++ {
		c.Write(memaddr.NVMBase+uint64(i+1)*64, nil, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 9 }, 100000)
	w := c.Wear()
	if w.TotalWrites() != 9 || w.LinesTouched() != 4 {
		t.Fatalf("wear = %d writes / %d lines, want 9/4", w.TotalWrites(), w.LinesTouched())
	}
	if w.MaxLineWrites() != 6 {
		t.Fatalf("max line writes = %d, want 6", w.MaxLineWrites())
	}
	if w.MeanLineWrites() != 2.25 {
		t.Fatalf("mean = %v, want 2.25", w.MeanLineWrites())
	}
	if h := w.Hotness(); h < 2.6 || h > 2.7 {
		t.Fatalf("hotness = %v, want ~2.67", h)
	}
	top := w.TopLines(2)
	if len(top) != 2 || top[0].Line != memaddr.NVMBase || top[0].Writes != 6 {
		t.Fatalf("top lines = %+v", top)
	}
	if w.String() == "" {
		t.Fatal("empty wear summary")
	}
}

func TestWearEmpty(t *testing.T) {
	w := newWear()
	if w.MaxLineWrites() != 0 || w.MeanLineWrites() != 0 || w.Hotness() != 0 {
		t.Fatal("empty wear tracker not all-zero")
	}
	if len(w.TopLines(5)) != 0 {
		t.Fatal("empty tracker has top lines")
	}
}

// TestOpenDrainWindowFlushedAtCollection: a write-drain window still
// open when the probe is collected surfaces as KWPQDrainOpen ending at
// the collection cycle.
func TestOpenDrainWindowFlushedAtCollection(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	c := New(k, cfg)
	p := obs.NewProbe(256)
	c.SetProbe(p, 1)
	for i := 0; i < cfg.DrainHigh+5; i++ {
		c.Write(memaddr.NVMBase+uint64(i)*64, nil, nil)
	}
	// A couple of ticks: the drain starts (queue >= DrainHigh) but is
	// nowhere near DrainLow yet.
	k.Step()
	k.Step()
	if c.Stats().DrainEntries != 1 {
		t.Fatalf("drains started = %d, want 1", c.Stats().DrainEntries)
	}
	if c.Idle() {
		t.Fatal("controller mid-drain reports idle")
	}
	p.FlushOpenSpans(k.Now())
	if n := p.CountKind(obs.KWPQDrainOpen); n != 1 {
		t.Fatalf("flushed %d open-drain spans, want 1", n)
	}
	for _, e := range p.Events() {
		if e.Kind == obs.KWPQDrainOpen {
			if e.End != k.Now() || e.Core != 1 {
				t.Fatalf("open span = %+v, want End=%d Core=1", e, k.Now())
			}
			if e.Arg != c.Stats().Writes {
				t.Fatalf("open span Arg = %d, want %d writes issued so far", e.Arg, c.Stats().Writes)
			}
		}
	}
}

// TestDrainSpanEndsWhenQueueReachesLow pins the drain-window accounting
// fixed in this change: the KWPQDrain span must end in the very cycle
// whose issue brought the queue down to DrainLow, not one tick later
// (the old code re-checked last cycle's queue before issuing).
func TestDrainSpanEndsWhenQueueReachesLow(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	c := New(k, cfg)
	p := obs.NewProbe(256)
	c.SetProbe(p, 0)
	for i := 0; i < cfg.DrainHigh; i++ {
		c.Write(memaddr.NVMBase+uint64(i)*64, nil, nil)
	}
	reachedLow := uint64(0)
	for i := 0; i < 100000 && p.CountKind(obs.KWPQDrain) == 0; i++ {
		k.Step()
		if reachedLow == 0 && c.PendingWrites() <= cfg.DrainLow {
			reachedLow = k.Now()
		}
	}
	if p.CountKind(obs.KWPQDrain) != 1 {
		t.Fatal("drain window never closed")
	}
	var span obs.Event
	for _, e := range p.Events() {
		if e.Kind == obs.KWPQDrain {
			span = e
		}
	}
	if span.End != reachedLow {
		t.Fatalf("drain span ends at %d, queue reached DrainLow at %d — span and accounting must agree",
			span.End, reachedLow)
	}
	if want := uint64(cfg.DrainHigh - c.PendingWrites()); span.Arg != want {
		t.Fatalf("drain span Arg = %d, want %d writes issued during the window", span.Arg, want)
	}
}

// TestConfigValidate covers the misconfigurations Validate must reject
// and the defaulted configuration it must accept.
func TestConfigValidate(t *testing.T) {
	if err := testConfig().WithDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("defaulted zero config rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero banks", func(c *Config) { c.Banks = -1 }},
		{"drain low >= high", func(c *Config) { c.DrainLow = c.DrainHigh }},
		{"drain low above high", func(c *Config) { c.DrainLow = c.DrainHigh + 10 }},
		{"negative read window", func(c *Config) { c.ReadWindow = -8 }},
		{"negative cmd rate", func(c *Config) { c.CmdPerCycle = -1 }},
		{"hit slower than miss", func(c *Config) { c.ReadHit = c.ReadMiss + 1 }},
	}
	for _, tc := range bad {
		cfg := testConfig().WithDefaults()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
}
