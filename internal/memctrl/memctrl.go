// Package memctrl models the main-memory controllers — the DRAMSim2-like
// half of the paper's simulation infrastructure. Each Controller owns one
// channel with per-bank row-buffer timing, separate read and write
// queues, and the paper's scheduling policy: read-first, with a write
// drain once the write queue reaches 80% occupancy. A Backend assembles
// controllers into the hybrid main memory of Figure 1: a Topology's worth
// of address-interleaved NVM and DRAM channels (Table 2's machine is the
// default 1x1 topology) behind one typed request port.
//
// Writes carry two callbacks: apply, run at the instant the write becomes
// durable (the caller uses it to update the durable memory image), and
// onDurable, the completion notification (the NVM controller's
// acknowledgment message back to the transaction cache, §4.3).
package memctrl

import (
	"fmt"

	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
)

// Config sizes and times one controller.
type Config struct {
	// Name labels the controller in stats output ("NVM", "DRAM").
	Name string
	// Banks is the total bank count (ranks x banks/rank).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// Read/Write latencies in CPU cycles, split by row-buffer outcome.
	ReadHit, ReadMiss   uint64
	WriteHit, WriteMiss uint64
	// ReadWindow/WriteWindow are the scheduling-queue depths (8/64 in
	// Table 2): only the first Window entries of each pending FIFO are
	// candidates for out-of-order (row-hit-first) issue.
	ReadWindow, WriteWindow int
	// DrainHigh starts a write drain when pending writes reach this
	// count; DrainLow ends it. Table 2: drain at 80% of the 64-entry
	// queue.
	DrainHigh, DrainLow int
	// CmdPerCycle is the command-issue bandwidth (default 1).
	CmdPerCycle int
}

// WithDefaults fills zero fields with usable defaults.
func (c Config) WithDefaults() Config {
	if c.Banks == 0 {
		c.Banks = 32
	}
	if c.RowBytes == 0 {
		c.RowBytes = 8192
	}
	if c.ReadWindow == 0 {
		c.ReadWindow = 8
	}
	if c.WriteWindow == 0 {
		c.WriteWindow = 64
	}
	if c.DrainHigh == 0 {
		c.DrainHigh = c.WriteWindow * 8 / 10
	}
	if c.DrainLow == 0 {
		c.DrainLow = c.WriteWindow / 4
	}
	if c.CmdPerCycle == 0 {
		c.CmdPerCycle = 1
	}
	return c
}

// Validate rejects configurations WithDefaults would silently accept but
// that produce nonsense downstream (a drain window that can never close,
// negative scheduling windows). Call it on the defaulted configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("memctrl %s: Banks = %d, must be positive", c.Name, c.Banks)
	}
	if c.RowBytes == 0 {
		return fmt.Errorf("memctrl %s: RowBytes must be positive", c.Name)
	}
	if c.ReadWindow <= 0 || c.WriteWindow <= 0 {
		return fmt.Errorf("memctrl %s: scheduling windows (read %d, write %d) must be positive",
			c.Name, c.ReadWindow, c.WriteWindow)
	}
	if c.CmdPerCycle <= 0 {
		return fmt.Errorf("memctrl %s: CmdPerCycle = %d, must be positive", c.Name, c.CmdPerCycle)
	}
	if c.DrainHigh <= 0 || c.DrainLow < 0 {
		return fmt.Errorf("memctrl %s: drain thresholds (high %d, low %d) must be non-negative with DrainHigh > 0",
			c.Name, c.DrainHigh, c.DrainLow)
	}
	if c.DrainLow >= c.DrainHigh {
		return fmt.Errorf("memctrl %s: DrainLow %d >= DrainHigh %d — the drain window would re-trigger every cycle",
			c.Name, c.DrainLow, c.DrainHigh)
	}
	if c.ReadHit > c.ReadMiss || c.WriteHit > c.WriteMiss {
		return fmt.Errorf("memctrl %s: row-hit latencies (read %d/%d, write %d/%d) must not exceed row-miss latencies",
			c.Name, c.ReadHit, c.ReadMiss, c.WriteHit, c.WriteMiss)
	}
	return nil
}

type request struct {
	lineAddr uint64
	// bank and row are derived from lineAddr once at enqueue time; the
	// scheduler's window scan reads them every cycle and the divisions
	// are too hot to repeat there.
	bank    int
	row     uint64
	apply   func()
	done    func()
	trk     *txflight.Write
	trkChan int
	enqueue uint64
}

type bank struct {
	busyUntil uint64
	openRow   uint64
	hasOpen   bool
}

// Stats accumulates controller activity.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	ReadLatencySum     uint64 // enqueue -> data, in cycles
	ReadLatencyMax     uint64
	WriteQueuePeak     int
	DrainEntries       uint64 // times a drain started
	BusyCycles         uint64 // cycles with >= 1 command issued
}

// Controller is one memory channel. Register it with the kernel so Tick
// runs every cycle.
type Controller struct {
	k     *sim.Kernel
	cfg   Config
	banks []bank

	reads    []request
	writes   []request
	inFlight int // issued commands whose completion has not fired
	draining bool

	// probe is the observability recorder (nil when disabled); chanID
	// labels this channel's track. drainStart/drainWrites frame the
	// current write-drain window.
	probe       *obs.Probe
	chanID      int
	drainStart  uint64
	drainWrites uint64

	// hDrainCycles/hDrainWrites stream each closed write-drain window's
	// duration and write count into the metrics registry (nil when
	// disabled).
	hDrainCycles *metrics.Histogram
	hDrainWrites *metrics.Histogram

	stats Stats
	wear  *Wear
}

// New returns a controller registered with k.
func New(k *sim.Kernel, cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	c := &Controller{k: k, cfg: cfg, banks: make([]bank, cfg.Banks), wear: newWear()}
	k.Register(c)
	return c
}

// SetProbe attaches the observability recorder (nil disables probing);
// chanID labels the channel's trace track (0 NVM, 1 DRAM). A drain
// window still open when the probe is collected is flushed as a
// KWPQDrainOpen span ending at the collection cycle, so truncated spans
// appear in the trace instead of vanishing.
func (c *Controller) SetProbe(p *obs.Probe, chanID int) {
	c.probe = p
	c.chanID = chanID
	p.AddOpenSpanFlusher(func(now uint64) {
		if c.draining {
			p.Span(obs.KWPQDrainOpen, c.chanID, 0, c.drainStart, now,
				c.stats.Writes-c.drainWrites)
		}
	})
}

// SetMetrics attaches the write-drain histograms: window duration in
// cycles and writes issued per window. Nil histograms disable the
// observations; only windows that close are observed.
func (c *Controller) SetMetrics(drainCycles, drainWrites *metrics.Histogram) {
	c.hDrainCycles = drainCycles
	c.hDrainWrites = drainWrites
}

// Config returns the (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Wear returns the per-line write-count tracker (endurance analysis).
func (c *Controller) Wear() *Wear { return c.wear }

// PendingReads reports queued, unissued reads.
func (c *Controller) PendingReads() int { return len(c.reads) }

// PendingWrites reports queued, unissued writes.
func (c *Controller) PendingWrites() int { return len(c.writes) }

// Read enqueues a line read; done fires when the data returns.
func (c *Controller) Read(lineAddr uint64, done func()) {
	c.reads = append(c.reads, request{
		lineAddr: lineAddr, bank: c.bankOf(lineAddr), row: c.rowOf(lineAddr),
		done: done, enqueue: c.k.Now(),
	})
}

// Write enqueues a line write. apply (may be nil) runs at durability time,
// immediately before onDurable (may be nil).
func (c *Controller) Write(lineAddr uint64, apply, onDurable func()) {
	c.writes = append(c.writes, request{
		lineAddr: lineAddr, bank: c.bankOf(lineAddr), row: c.rowOf(lineAddr),
		apply: apply, done: onDurable, enqueue: c.k.Now(),
	})
	if len(c.writes) > c.stats.WriteQueuePeak {
		c.stats.WriteQueuePeak = len(c.writes)
	}
}

// WriteTracked enqueues a line write like Write, additionally marking
// the flight-recorder write w (may be nil) with the cycle the scheduler
// starts servicing it and the channel id — the recorder's
// WPQ-wait/NVM-write stage boundary. Taking the concrete *txflight.Write
// rather than a callback keeps the tracked path free of per-write
// closure allocations.
func (c *Controller) WriteTracked(lineAddr uint64, apply, onDurable func(), w *txflight.Write, channel int) {
	c.writes = append(c.writes, request{
		lineAddr: lineAddr, bank: c.bankOf(lineAddr), row: c.rowOf(lineAddr),
		apply: apply, done: onDurable, trk: w, trkChan: channel, enqueue: c.k.Now(),
	})
	if len(c.writes) > c.stats.WriteQueuePeak {
		c.stats.WriteQueuePeak = len(c.writes)
	}
}

func (c *Controller) bankOf(lineAddr uint64) int {
	return int((lineAddr / 64) % uint64(c.cfg.Banks))
}

func (c *Controller) rowOf(lineAddr uint64) uint64 {
	return lineAddr / c.cfg.RowBytes / uint64(c.cfg.Banks)
}

// pickIssuable returns the index of the request to issue from q (bounded
// by window): the first row-hit whose bank is idle, else the oldest whose
// bank is idle, else -1 (FR-FCFS within the scheduling window).
func (c *Controller) pickIssuable(q []request, window int, now uint64) int {
	limit := len(q)
	if limit > window {
		limit = window
	}
	oldest := -1
	for i := 0; i < limit; i++ {
		b := q[i].bank
		if c.banks[b].busyUntil > now {
			continue
		}
		if c.banks[b].hasOpen && c.banks[b].openRow == q[i].row {
			return i
		}
		if oldest < 0 {
			oldest = i
		}
	}
	return oldest
}

func (c *Controller) issue(q *[]request, idx int, isWrite bool, now uint64) {
	r := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	b := r.bank
	row := r.row
	hit := c.banks[b].hasOpen && c.banks[b].openRow == row
	var lat uint64
	switch {
	case isWrite && hit:
		lat = c.cfg.WriteHit
	case isWrite:
		lat = c.cfg.WriteMiss
	case hit:
		lat = c.cfg.ReadHit
	default:
		lat = c.cfg.ReadMiss
	}
	c.banks[b].busyUntil = now + lat
	c.banks[b].openRow, c.banks[b].hasOpen = row, true
	if hit {
		c.stats.RowHits++
	} else {
		c.stats.RowMisses++
	}
	if isWrite {
		c.stats.Writes++
		c.wear.record(r.lineAddr)
	} else {
		c.stats.Reads++
	}
	c.inFlight++
	if r.trk != nil {
		r.trk.ServiceStart(r.trkChan, now)
	}
	req := r
	c.k.Schedule(lat, func() {
		c.inFlight--
		if !isWrite {
			l := c.k.Now() - req.enqueue
			c.stats.ReadLatencySum += l
			if l > c.stats.ReadLatencyMax {
				c.stats.ReadLatencyMax = l
			}
		}
		if req.apply != nil {
			req.apply()
		}
		if req.done != nil {
			req.done()
		}
	})
}

// Tick implements sim.Tickable: issue up to CmdPerCycle commands under the
// read-first / write-drain policy.
func (c *Controller) Tick(now uint64) {
	if !c.draining && len(c.writes) >= c.cfg.DrainHigh {
		c.draining = true
		c.stats.DrainEntries++
		c.drainStart = now
		c.drainWrites = c.stats.Writes
	}
	issued := false
	for n := 0; n < c.cfg.CmdPerCycle; n++ {
		if c.draining {
			if i := c.pickIssuable(c.writes, c.cfg.WriteWindow, now); i >= 0 {
				c.issue(&c.writes, i, true, now)
				issued = true
				continue
			}
			// Banks busy for every window entry: fall through to
			// try reads rather than idling the channel.
		}
		if i := c.pickIssuable(c.reads, c.cfg.ReadWindow, now); i >= 0 {
			c.issue(&c.reads, i, false, now)
			issued = true
			continue
		}
		// Reads empty or blocked: opportunistically issue writes.
		if i := c.pickIssuable(c.writes, c.cfg.WriteWindow, now); i >= 0 {
			c.issue(&c.writes, i, true, now)
			issued = true
		}
	}
	if issued {
		c.stats.BusyCycles++
	}
	// The drain window is re-checked after the issue loop, not before it:
	// checking first (against last cycle's queue) recorded a span end —
	// and held the draining flag — one cycle past the issue that actually
	// emptied the queue to DrainLow.
	if c.draining && len(c.writes) <= c.cfg.DrainLow {
		c.draining = false
		c.probe.Span(obs.KWPQDrain, c.chanID, 0, c.drainStart, now,
			c.stats.Writes-c.drainWrites)
		c.hDrainCycles.Observe(now - c.drainStart)
		c.hDrainWrites.Observe(c.stats.Writes - c.drainWrites)
	}
}

// Idle implements sim.Quiescer. Tick is a provable no-op when no drain
// transition is pending and neither scheduling window holds an issuable
// request; BusyCycles only accrues on issue, and a drain window can only
// close in the tick that issued the queue down to DrainLow.
//
// The window-blocked case (requests queued, every candidate's bank busy)
// is skippable because every busy bank has a completion event pending at
// exactly its busyUntil cycle — issue schedules both together and events
// are never cancelled — so the kernel's skip target never passes the
// cycle a bank frees, and the blocked window stays blocked across every
// skipped cycle.
func (c *Controller) Idle() bool {
	if !c.draining && len(c.writes) >= c.cfg.DrainHigh {
		return false // drain-start transition pending
	}
	now := c.k.Now()
	if len(c.reads) > 0 && c.pickIssuable(c.reads, c.cfg.ReadWindow, now) >= 0 {
		return false
	}
	if len(c.writes) > 0 && c.pickIssuable(c.writes, c.cfg.WriteWindow, now) >= 0 {
		return false
	}
	return true
}

// Quiescent reports whether no requests are queued or in flight: every
// accepted request has completed and fired its callbacks.
func (c *Controller) Quiescent() bool {
	return len(c.reads) == 0 && len(c.writes) == 0 && c.inFlight == 0
}
