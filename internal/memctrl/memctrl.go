// Package memctrl models the main-memory controllers — the DRAMSim2-like
// half of the paper's simulation infrastructure. Each Controller owns one
// channel (the system has two: one NVM, one DRAM, per Table 2) with
// per-bank row-buffer timing, separate read and write queues, and the
// paper's scheduling policy: read-first, with a write drain once the write
// queue reaches 80% occupancy.
//
// Writes carry two callbacks: apply, run at the instant the write becomes
// durable (the caller uses it to update the durable memory image), and
// onDurable, the completion notification (the NVM controller's
// acknowledgment message back to the transaction cache, §4.3).
package memctrl

import (
	"pmemaccel/internal/obs"
	"pmemaccel/internal/sim"
)

// Config sizes and times one controller.
type Config struct {
	// Name labels the controller in stats output ("NVM", "DRAM").
	Name string
	// Banks is the total bank count (ranks x banks/rank).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// Read/Write latencies in CPU cycles, split by row-buffer outcome.
	ReadHit, ReadMiss   uint64
	WriteHit, WriteMiss uint64
	// ReadWindow/WriteWindow are the scheduling-queue depths (8/64 in
	// Table 2): only the first Window entries of each pending FIFO are
	// candidates for out-of-order (row-hit-first) issue.
	ReadWindow, WriteWindow int
	// DrainHigh starts a write drain when pending writes reach this
	// count; DrainLow ends it. Table 2: drain at 80% of the 64-entry
	// queue.
	DrainHigh, DrainLow int
	// CmdPerCycle is the command-issue bandwidth (default 1).
	CmdPerCycle int
}

// WithDefaults fills zero fields with usable defaults.
func (c Config) WithDefaults() Config {
	if c.Banks == 0 {
		c.Banks = 32
	}
	if c.RowBytes == 0 {
		c.RowBytes = 8192
	}
	if c.ReadWindow == 0 {
		c.ReadWindow = 8
	}
	if c.WriteWindow == 0 {
		c.WriteWindow = 64
	}
	if c.DrainHigh == 0 {
		c.DrainHigh = c.WriteWindow * 8 / 10
	}
	if c.DrainLow == 0 {
		c.DrainLow = c.WriteWindow / 4
	}
	if c.CmdPerCycle == 0 {
		c.CmdPerCycle = 1
	}
	return c
}

type request struct {
	lineAddr uint64
	apply    func()
	done     func()
	enqueue  uint64
}

type bank struct {
	busyUntil uint64
	openRow   uint64
	hasOpen   bool
}

// Stats accumulates controller activity.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	ReadLatencySum     uint64 // enqueue -> data, in cycles
	ReadLatencyMax     uint64
	WriteQueuePeak     int
	DrainEntries       uint64 // times a drain started
	BusyCycles         uint64 // cycles with >= 1 command issued
}

// Controller is one memory channel. Register it with the kernel so Tick
// runs every cycle.
type Controller struct {
	k     *sim.Kernel
	cfg   Config
	banks []bank

	reads    []request
	writes   []request
	inFlight int // issued commands whose completion has not fired
	draining bool

	// probe is the observability recorder (nil when disabled); chanID
	// labels this channel's track. drainStart/drainWrites frame the
	// current write-drain window.
	probe       *obs.Probe
	chanID      int
	drainStart  uint64
	drainWrites uint64

	stats Stats
	wear  *Wear
}

// New returns a controller registered with k.
func New(k *sim.Kernel, cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	c := &Controller{k: k, cfg: cfg, banks: make([]bank, cfg.Banks), wear: newWear()}
	k.Register(c)
	return c
}

// SetProbe attaches the observability recorder (nil disables probing);
// chanID labels the channel's trace track (0 NVM, 1 DRAM).
func (c *Controller) SetProbe(p *obs.Probe, chanID int) {
	c.probe = p
	c.chanID = chanID
}

// Config returns the (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Wear returns the per-line write-count tracker (endurance analysis).
func (c *Controller) Wear() *Wear { return c.wear }

// PendingReads reports queued, unissued reads.
func (c *Controller) PendingReads() int { return len(c.reads) }

// PendingWrites reports queued, unissued writes.
func (c *Controller) PendingWrites() int { return len(c.writes) }

// Read enqueues a line read; done fires when the data returns.
func (c *Controller) Read(lineAddr uint64, done func()) {
	c.reads = append(c.reads, request{lineAddr: lineAddr, done: done, enqueue: c.k.Now()})
}

// Write enqueues a line write. apply (may be nil) runs at durability time,
// immediately before onDurable (may be nil).
func (c *Controller) Write(lineAddr uint64, apply, onDurable func()) {
	c.writes = append(c.writes, request{lineAddr: lineAddr, apply: apply, done: onDurable, enqueue: c.k.Now()})
	if len(c.writes) > c.stats.WriteQueuePeak {
		c.stats.WriteQueuePeak = len(c.writes)
	}
}

func (c *Controller) bankOf(lineAddr uint64) int {
	return int((lineAddr / 64) % uint64(c.cfg.Banks))
}

func (c *Controller) rowOf(lineAddr uint64) uint64 {
	return lineAddr / c.cfg.RowBytes / uint64(c.cfg.Banks)
}

// pickIssuable returns the index of the request to issue from q (bounded
// by window): the first row-hit whose bank is idle, else the oldest whose
// bank is idle, else -1 (FR-FCFS within the scheduling window).
func (c *Controller) pickIssuable(q []request, window int, now uint64) int {
	limit := len(q)
	if limit > window {
		limit = window
	}
	oldest := -1
	for i := 0; i < limit; i++ {
		b := c.bankOf(q[i].lineAddr)
		if c.banks[b].busyUntil > now {
			continue
		}
		if c.banks[b].hasOpen && c.banks[b].openRow == c.rowOf(q[i].lineAddr) {
			return i
		}
		if oldest < 0 {
			oldest = i
		}
	}
	return oldest
}

func (c *Controller) issue(q *[]request, idx int, isWrite bool, now uint64) {
	r := (*q)[idx]
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	b := c.bankOf(r.lineAddr)
	row := c.rowOf(r.lineAddr)
	hit := c.banks[b].hasOpen && c.banks[b].openRow == row
	var lat uint64
	switch {
	case isWrite && hit:
		lat = c.cfg.WriteHit
	case isWrite:
		lat = c.cfg.WriteMiss
	case hit:
		lat = c.cfg.ReadHit
	default:
		lat = c.cfg.ReadMiss
	}
	c.banks[b].busyUntil = now + lat
	c.banks[b].openRow, c.banks[b].hasOpen = row, true
	if hit {
		c.stats.RowHits++
	} else {
		c.stats.RowMisses++
	}
	if isWrite {
		c.stats.Writes++
		c.wear.record(r.lineAddr)
	} else {
		c.stats.Reads++
	}
	c.inFlight++
	req := r
	c.k.Schedule(lat, func() {
		c.inFlight--
		if !isWrite {
			l := c.k.Now() - req.enqueue
			c.stats.ReadLatencySum += l
			if l > c.stats.ReadLatencyMax {
				c.stats.ReadLatencyMax = l
			}
		}
		if req.apply != nil {
			req.apply()
		}
		if req.done != nil {
			req.done()
		}
	})
}

// Tick implements sim.Tickable: issue up to CmdPerCycle commands under the
// read-first / write-drain policy.
func (c *Controller) Tick(now uint64) {
	if !c.draining && len(c.writes) >= c.cfg.DrainHigh {
		c.draining = true
		c.stats.DrainEntries++
		c.drainStart = now
		c.drainWrites = c.stats.Writes
	}
	if c.draining && len(c.writes) <= c.cfg.DrainLow {
		c.draining = false
		c.probe.Span(obs.KWPQDrain, c.chanID, 0, c.drainStart, now,
			c.stats.Writes-c.drainWrites)
	}
	issued := false
	for n := 0; n < c.cfg.CmdPerCycle; n++ {
		if c.draining {
			if i := c.pickIssuable(c.writes, c.cfg.WriteWindow, now); i >= 0 {
				c.issue(&c.writes, i, true, now)
				issued = true
				continue
			}
			// Banks busy for every window entry: fall through to
			// try reads rather than idling the channel.
		}
		if i := c.pickIssuable(c.reads, c.cfg.ReadWindow, now); i >= 0 {
			c.issue(&c.reads, i, false, now)
			issued = true
			continue
		}
		// Reads empty or blocked: opportunistically issue writes.
		if i := c.pickIssuable(c.writes, c.cfg.WriteWindow, now); i >= 0 {
			c.issue(&c.writes, i, true, now)
			issued = true
		}
	}
	if issued {
		c.stats.BusyCycles++
	}
}

// Quiescent reports whether no requests are queued or in flight: every
// accepted request has completed and fired its callbacks.
func (c *Controller) Quiescent() bool {
	return len(c.reads) == 0 && len(c.writes) == 0 && c.inFlight == 0
}
