package figures

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/workload"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Cores = 2
		cfg.Scale = 256
		cfg.InitialSize = 500
		cfg.Ops = 150
		return cfg
	}
	g, err := Run([]workload.Benchmark{workload.SPS, workload.Hashtable}, Mechs, configure, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridProducesAllFigures(t *testing.T) {
	g := smallGrid(t)
	for n := 6; n <= 10; n++ {
		s, err := g.Figure(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		// Normalized: the Optimal column is exactly 1 wherever the
		// raw baseline is nonzero (a zero baseline NaNs the row —
		// possible for write traffic at test scale).
		for _, bench := range s.Benchs {
			v := s.Get(bench, pmemaccel.Optimal.String())
			if v != 1.0 && !math.IsNaN(v) {
				t.Errorf("figure %d: %s optimal = %v, want 1.0 or NaN", n, bench, v)
			}
		}
		if !strings.Contains(s.Table(), "geomean") {
			t.Errorf("figure %d table lacks geomean", n)
		}
	}
	if _, err := g.Figure(11); err == nil {
		t.Fatal("figure 11 accepted")
	}
}

func TestFig6OrderingHolds(t *testing.T) {
	g := smallGrid(t)
	f6 := g.Fig6()
	sp := f6.Geomean(pmemaccel.SP.String())
	tc := f6.Geomean(pmemaccel.TCache.String())
	if !(sp < tc) {
		t.Errorf("SP geomean IPC %.3f not below TCache %.3f", sp, tc)
	}
	if tc > 1.02 {
		t.Errorf("TCache geomean IPC %.3f exceeds Optimal", tc)
	}
}

func TestFig9OrderingHolds(t *testing.T) {
	// At test scale the Optimal baseline may produce no write-backs at
	// all (the working set fits in the LLC), so compare raw counts.
	g := smallGrid(t)
	for _, bench := range g.Benchs {
		sp := g.Results[bench][pmemaccel.SP].NVMWriteTraffic()
		tc := g.Results[bench][pmemaccel.TCache].NVMWriteTraffic()
		opt := g.Results[bench][pmemaccel.Optimal].NVMWriteTraffic()
		if !(sp > tc && tc > opt) {
			t.Errorf("%s: write traffic SP %d > TC %d > Optimal %d violated",
				bench, sp, tc, opt)
		}
	}
}

// TestStallTableMatchesStallFraction pins the §5.2 fix: the printed
// fraction is Result.StallFraction exactly — no residual division by the
// core count (which is already in StallFraction's denominator and used
// to be applied twice, under-reporting stall time 4x on a 4-core run).
func TestStallTableMatchesStallFraction(t *testing.T) {
	// Hand-built result: 4 cores, 1000 cycles, 40+10+0+30 = 80 stall
	// cycles over 4*1000 core-cycles = exactly 2%.
	r := &pmemaccel.Result{
		Cycles: 1000,
		PerCore: []cpu.Stats{
			{StallStoreRetry: 40},
			{StallStoreRetry: 10},
			{StallStoreRetry: 0},
			{StallStoreRetry: 30},
		},
	}
	want := r.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry })
	if want != 0.02 {
		t.Fatalf("StallFraction = %v, want 0.02 (80 stalls / 4x1000 core-cycles)", want)
	}
	g := &Grid{
		Benchs: []workload.Benchmark{workload.SPS},
		Mechs:  []pmemaccel.Kind{pmemaccel.TCache},
		Results: map[workload.Benchmark]map[pmemaccel.Kind]*pmemaccel.Result{
			workload.SPS: {pmemaccel.TCache: r},
		},
	}
	table := g.StallTable()
	if !strings.Contains(table, " 2.000%") {
		t.Fatalf("stall table does not print StallFraction (2.000%%) verbatim:\n%s", table)
	}
	if strings.Contains(table, "0.500%") {
		t.Fatalf("stall table still divides by the core count:\n%s", table)
	}
}

// TestParallelGridIsDeterministic runs the same grid sequentially and on
// four workers and asserts every Result field behind Figures 6-10 (and
// the §5.2 table) is identical, regardless of completion order.
func TestParallelGridIsDeterministic(t *testing.T) {
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Cores = 2
		cfg.Scale = 256
		cfg.InitialSize = 400
		cfg.Ops = 120
		return cfg
	}
	benchs := []workload.Benchmark{workload.SPS, workload.RBTree}
	seq, err := Run(benchs, Mechs, configure, nil)
	if err != nil {
		t.Fatal(err)
	}
	var progress []string
	par, err := RunParallel(benchs, Mechs, configure,
		func(b workload.Benchmark, m pmemaccel.Kind, r *pmemaccel.Result) {
			progress = append(progress, b.String()+"/"+m.String())
		}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benchs {
		for _, m := range Mechs {
			s, p := seq.Results[b][m], par.Results[b][m]
			if s.Cycles != p.Cycles {
				t.Errorf("%v/%v: cycles %d != %d", b, m, s.Cycles, p.Cycles)
			}
			if s.IPC() != p.IPC() {
				t.Errorf("%v/%v: IPC %v != %v", b, m, s.IPC(), p.IPC())
			}
			if s.Throughput() != p.Throughput() {
				t.Errorf("%v/%v: throughput %v != %v", b, m, s.Throughput(), p.Throughput())
			}
			if s.LLCMissRate != p.LLCMissRate {
				t.Errorf("%v/%v: LLC miss rate %v != %v", b, m, s.LLCMissRate, p.LLCMissRate)
			}
			if s.NVMWriteTraffic() != p.NVMWriteTraffic() {
				t.Errorf("%v/%v: NVM writes %d != %d", b, m, s.NVMWriteTraffic(), p.NVMWriteTraffic())
			}
			if s.AvgPersistentLoadLatency() != p.AvgPersistentLoadLatency() {
				t.Errorf("%v/%v: pload latency %v != %v", b, m,
					s.AvgPersistentLoadLatency(), p.AvgPersistentLoadLatency())
			}
			sf := func(st cpu.Stats) uint64 { return st.StallStoreRetry }
			if s.StallFraction(sf) != p.StallFraction(sf) {
				t.Errorf("%v/%v: stall fraction %v != %v", b, m, s.StallFraction(sf), p.StallFraction(sf))
			}
		}
	}
	// The rendered artifacts must be byte-identical.
	for n := 6; n <= 10; n++ {
		sf, _ := seq.Figure(n)
		pf, _ := par.Figure(n)
		if sf.Table() != pf.Table() {
			t.Errorf("figure %d tables differ between -j 1 and -j 4:\n%s\n---\n%s",
				n, sf.Table(), pf.Table())
		}
	}
	if seq.StallTable() != par.StallTable() || seq.Summary() != par.Summary() {
		t.Error("stall table or summary differs between -j 1 and -j 4")
	}
	// Progress fired once per cell, in grid order (bench-major).
	if len(progress) != len(benchs)*len(Mechs) {
		t.Fatalf("progress fired %d times for %d cells", len(progress), len(benchs)*len(Mechs))
	}
	i := 0
	for _, b := range benchs {
		for _, m := range Mechs {
			if want := b.String() + "/" + m.String(); progress[i] != want {
				t.Fatalf("progress[%d] = %s, want %s (grid order)", i, progress[i], want)
			}
			i++
		}
	}
}

func TestStallTableAndSummaryRender(t *testing.T) {
	g := smallGrid(t)
	st := g.StallTable()
	if !strings.Contains(st, "sps") || !strings.Contains(st, "%") {
		t.Errorf("stall table malformed:\n%s", st)
	}
	sum := g.Summary()
	for _, want := range []string{"tcache", "kiln", "sp", "IPC", "throughput"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestChannelSweepWorkerInvariant: the channel-scaling series must be
// identical for every worker count — the sweep engine only changes which
// goroutine runs a cell, never the cell's configuration or seed.
func TestChannelSweepWorkerInvariant(t *testing.T) {
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Cores = 2
		cfg.Scale = 256
		cfg.InitialSize = 300
		cfg.Ops = 100
		return cfg
	}
	mechs := []pmemaccel.Kind{pmemaccel.TCache, pmemaccel.SP}
	counts := []int{1, 4}
	seq, err := ChannelSweep(workload.SPS, mechs, counts, configure, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ChannelSweep(workload.SPS, mechs, counts, configure, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.CSV() != par.CSV() {
		t.Fatalf("channel sweep differs across worker counts:\n-j1:\n%s\n-j4:\n%s", seq.CSV(), par.CSV())
	}
	for _, m := range mechs {
		for _, row := range []string{"1ch", "4ch"} {
			if v := seq.Get(row, m.String()); v <= 0 {
				t.Fatalf("%s/%s throughput = %v, want positive", row, m, v)
			}
		}
	}
}

// TestMetricsTableAndPercentileSeries runs a metrics-enabled grid and
// checks the two metrics renderings: MetricsTable emits one snapshot
// block per cell, and the TxLatencyP99 series is positive everywhere
// (every mechanism commits transactions) with histogram rows agreeing
// with the cell's own snapshot.
func TestMetricsTableAndPercentileSeries(t *testing.T) {
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Cores = 2
		cfg.Scale = 256
		cfg.InitialSize = 500
		cfg.Ops = 150
		cfg.Obs.Metrics = true
		return cfg
	}
	g, err := Run([]workload.Benchmark{workload.SPS}, Mechs, configure, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl := g.MetricsTable()
	for _, want := range []string{"sps/tcache", "tx_latency_cycles", "p99", "nvm_writes"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("metrics table missing %q", want)
		}
	}
	s := g.TxLatencyP99()
	for _, m := range Mechs {
		v := s.Get("sps", m.String())
		if v <= 0 {
			t.Errorf("tx latency p99 for %v = %v, want > 0", m, v)
		}
		want := g.Results[workload.SPS][m].Metrics.Histogram("tx_latency_cycles")
		if want != nil && v != float64(want.P99) {
			t.Errorf("series p99 %v != snapshot p99 %d for %v", v, want.P99, m)
		}
	}

	// A metrics-free grid renders an empty table and a zero series.
	plain := smallGrid(t)
	if got := plain.MetricsTable(); got != "" {
		t.Errorf("metrics-free grid rendered a table: %q", got)
	}
	if v := plain.TxLatencyP99().Get("sps", "tcache"); v != 0 {
		t.Errorf("metrics-free grid p99 = %v, want 0", v)
	}
}

// TestContentionSweepDeterministicAndConsistent runs a tiny contention
// sweep twice (-j 1 and -j 4) and pins: byte-identical renderings across
// worker counts, an Optimal share column of exactly 1, zero aborts on
// the degenerate single-core row, and real aborts on the contended
// multi-core row.
func TestContentionSweepDeterministicAndConsistent(t *testing.T) {
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Scale = 256
		cfg.InitialSize = 300
		cfg.Ops = 80
		return cfg
	}
	mechs := []pmemaccel.Kind{pmemaccel.TCache, pmemaccel.Optimal}
	cores := []int{1, 4}
	pcts := []float64{0.9}
	seqIPC, seqShare, seqAbort, err := ContentionSweep(cores, pcts, mechs, configure, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	parIPC, parShare, parAbort, err := ContentionSweep(cores, pcts, mechs, configure, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range [][2]string{
		{seqIPC.CSV(), parIPC.CSV()},
		{seqShare.CSV(), parShare.CSV()},
		{seqAbort.CSV(), parAbort.CSV()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("sweep series %d differs across worker counts:\n-j1:\n%s\n-j4:\n%s", i, pair[0], pair[1])
		}
	}
	for _, row := range []string{"1c/90%", "4c/90%"} {
		if v := seqIPC.Get(row, "tcache"); v <= 0 {
			t.Errorf("%s tcache IPC = %v, want positive", row, v)
		}
		if v := seqShare.Get(row, "optimal"); v != 1.0 {
			t.Errorf("%s optimal share = %v, want exactly 1", row, v)
		}
	}
	if v := seqAbort.Get("1c/90%", "tcache"); v != 0 {
		t.Errorf("single-core abort rate = %v%%, want 0 (no cross-core conflicts possible)", v)
	}
	if v := seqAbort.Get("4c/90%", "tcache"); v <= 0 {
		t.Errorf("4-core 90%%-contention abort rate = %v%%, want positive", v)
	}
}

// TestRenderingAcrossCoreWidths pins the figures rendering paths that
// used to assume the paper's fixed 4-core machine: the stall table,
// summary, and per-transaction stage breakdown must render (and stay
// internally sized) at every supported width, 1 through 64.
func TestRenderingAcrossCoreWidths(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		n := n
		t.Run(fmt.Sprintf("%dcores", n), func(t *testing.T) {
			t.Parallel()
			configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
				cfg := pmemaccel.DefaultConfig(b, m)
				cfg.Cores = n
				cfg.Scale = 256
				cfg.InitialSize = 200
				cfg.Ops = 60
				cfg.Obs.Enabled = true
				cfg.Obs.TxSample = 1
				return cfg
			}
			g, err := Run([]workload.Benchmark{workload.Bank},
				[]pmemaccel.Kind{pmemaccel.TCache}, configure, nil)
			if err != nil {
				t.Fatal(err)
			}
			r := g.Results[workload.Bank][pmemaccel.TCache]
			if len(r.PerCore) != n {
				t.Fatalf("result has %d cores, want %d", len(r.PerCore), n)
			}
			if !strings.Contains(g.StallTable(), "bank") {
				t.Error("stall table failed to render")
			}
			if !strings.Contains(g.Summary(), "tcache") {
				t.Error("summary failed to render")
			}
			sb := g.StageBreakdown()
			for _, want := range []string{"bank/tcache", "execute"} {
				if !strings.Contains(sb, want) {
					t.Errorf("stage breakdown at %d cores missing %q:\n%s", n, want, sb)
				}
			}
		})
	}
}
