package figures

import (
	"strings"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		cfg.Cores = 2
		cfg.Scale = 256
		cfg.InitialSize = 500
		cfg.Ops = 150
		return cfg
	}
	g, err := Run([]workload.Benchmark{workload.SPS, workload.Hashtable}, Mechs, configure, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridProducesAllFigures(t *testing.T) {
	g := smallGrid(t)
	for n := 6; n <= 10; n++ {
		s, err := g.Figure(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		// Normalized: the Optimal column is exactly 1 wherever the
		// raw baseline is nonzero (a zero baseline zeroes the row —
		// possible for write traffic at test scale).
		for _, bench := range s.Benchs {
			v := s.Get(bench, pmemaccel.Optimal.String())
			if v != 1.0 && v != 0.0 {
				t.Errorf("figure %d: %s optimal = %v, want 1.0 or 0", n, bench, v)
			}
		}
		if !strings.Contains(s.Table(), "geomean") {
			t.Errorf("figure %d table lacks geomean", n)
		}
	}
	if _, err := g.Figure(11); err == nil {
		t.Fatal("figure 11 accepted")
	}
}

func TestFig6OrderingHolds(t *testing.T) {
	g := smallGrid(t)
	f6 := g.Fig6()
	sp := f6.Geomean(pmemaccel.SP.String())
	tc := f6.Geomean(pmemaccel.TCache.String())
	if !(sp < tc) {
		t.Errorf("SP geomean IPC %.3f not below TCache %.3f", sp, tc)
	}
	if tc > 1.02 {
		t.Errorf("TCache geomean IPC %.3f exceeds Optimal", tc)
	}
}

func TestFig9OrderingHolds(t *testing.T) {
	// At test scale the Optimal baseline may produce no write-backs at
	// all (the working set fits in the LLC), so compare raw counts.
	g := smallGrid(t)
	for _, bench := range g.Benchs {
		sp := g.Results[bench][pmemaccel.SP].NVMWriteTraffic()
		tc := g.Results[bench][pmemaccel.TCache].NVMWriteTraffic()
		opt := g.Results[bench][pmemaccel.Optimal].NVMWriteTraffic()
		if !(sp > tc && tc > opt) {
			t.Errorf("%s: write traffic SP %d > TC %d > Optimal %d violated",
				bench, sp, tc, opt)
		}
	}
}

func TestStallTableAndSummaryRender(t *testing.T) {
	g := smallGrid(t)
	st := g.StallTable()
	if !strings.Contains(st, "sps") || !strings.Contains(st, "%") {
		t.Errorf("stall table malformed:\n%s", st)
	}
	sum := g.Summary()
	for _, want := range []string{"tcache", "kiln", "sp", "IPC", "throughput"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
