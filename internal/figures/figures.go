// Package figures regenerates the paper's evaluation artifacts: one
// function per figure (6–10) plus the §5.2 transaction-cache stall table,
// all computed from a (benchmark x mechanism) grid of runs.
package figures

import (
	"fmt"
	"strings"

	"pmemaccel"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/stats"
	"pmemaccel/internal/sweep"
	"pmemaccel/internal/workload"
)

// Mechs is the presentation order of the paper's bars.
var Mechs = []pmemaccel.Kind{pmemaccel.SP, pmemaccel.TCache, pmemaccel.Kiln, pmemaccel.Optimal}

// Grid holds one full evaluation sweep.
type Grid struct {
	Benchs  []workload.Benchmark
	Mechs   []pmemaccel.Kind
	Results map[workload.Benchmark]map[pmemaccel.Kind]*pmemaccel.Result
}

// Run executes the sweep sequentially. configure produces the run
// configuration for a cell (letting callers choose scale and op counts);
// progress (may be nil) is invoked after each cell. It is exactly
// RunParallel with one worker.
func Run(benchs []workload.Benchmark, mechs []pmemaccel.Kind,
	configure func(workload.Benchmark, pmemaccel.Kind) pmemaccel.Config,
	progress func(workload.Benchmark, pmemaccel.Kind, *pmemaccel.Result)) (*Grid, error) {
	return RunParallel(benchs, mechs, configure, progress, 1)
}

// RunParallel executes the grid on a bounded worker pool (workers <= 0
// selects GOMAXPROCS). Every cell seeds its own RNG from its
// configuration, so the grid is bit-identical to the sequential path
// regardless of completion order; progress callbacks are serialized and
// fire in grid order (bench-major, mechanism-minor), exactly as Run's.
// configure is called sequentially in grid order before any simulation
// starts, so it need not be safe for concurrent use.
func RunParallel(benchs []workload.Benchmark, mechs []pmemaccel.Kind,
	configure func(workload.Benchmark, pmemaccel.Kind) pmemaccel.Config,
	progress func(workload.Benchmark, pmemaccel.Kind, *pmemaccel.Result),
	workers int) (*Grid, error) {
	return RunParallelWithProgress(benchs, mechs, configure, progress, nil, workers)
}

// RunParallelWithProgress is RunParallel plus a live sweep-progress
// consumer (see sweep.RunWithProgress): onProgress (may be nil) fires
// after every cell completes, serialized with the per-cell progress
// callback, carrying cells-done/total, busy workers, throughput and
// ETA — the feed behind paperrepro's -progress flag.
func RunParallelWithProgress(benchs []workload.Benchmark, mechs []pmemaccel.Kind,
	configure func(workload.Benchmark, pmemaccel.Kind) pmemaccel.Config,
	progress func(workload.Benchmark, pmemaccel.Kind, *pmemaccel.Result),
	onProgress func(sweep.Progress),
	workers int) (*Grid, error) {

	type cell struct {
		b   workload.Benchmark
		m   pmemaccel.Kind
		cfg pmemaccel.Config
	}
	var cells []cell
	for _, b := range benchs {
		for _, m := range mechs {
			cells = append(cells, cell{b, m, configure(b, m)})
		}
	}

	results, err := sweep.RunWithProgress(len(cells), workers,
		func(i int) (*pmemaccel.Result, error) {
			c := cells[i]
			res, err := pmemaccel.Run(c.cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: %v/%v: %w", c.b, c.m, err)
			}
			if res.DurableDiffCount > 0 {
				return nil, fmt.Errorf("figures: %v/%v left NVM inconsistent (%d diffs)",
					c.b, c.m, res.DurableDiffCount)
			}
			return res, nil
		},
		func(i int, res *pmemaccel.Result) {
			if progress != nil {
				progress(cells[i].b, cells[i].m, res)
			}
		}, onProgress)
	if err != nil {
		return nil, err
	}

	g := &Grid{
		Benchs:  benchs,
		Mechs:   mechs,
		Results: make(map[workload.Benchmark]map[pmemaccel.Kind]*pmemaccel.Result),
	}
	for i, c := range cells {
		if g.Results[c.b] == nil {
			g.Results[c.b] = make(map[pmemaccel.Kind]*pmemaccel.Result)
		}
		g.Results[c.b][c.m] = results[i]
	}
	return g, nil
}

// series extracts one metric into a stats.Series.
func (g *Grid) series(name string, metric func(*pmemaccel.Result) float64) *stats.Series {
	var bn, mn []string
	for _, b := range g.Benchs {
		bn = append(bn, b.String())
	}
	for _, m := range g.Mechs {
		mn = append(mn, m.String())
	}
	s := stats.NewSeries(name, bn, mn)
	for _, b := range g.Benchs {
		for _, m := range g.Mechs {
			s.Set(b.String(), m.String(), metric(g.Results[b][m]))
		}
	}
	return s
}

// normalizedTo returns the metric normalized to the Optimal baseline, as
// the paper plots every figure.
func (g *Grid) normalizedTo(name string, metric func(*pmemaccel.Result) float64) *stats.Series {
	return g.series(name, metric).Normalized(pmemaccel.Optimal.String())
}

// Fig6 is the normalized IPC figure.
func (g *Grid) Fig6() *stats.Series {
	return g.normalizedTo("Figure 6: Normalized IPC", (*pmemaccel.Result).IPC)
}

// Fig7 is the normalized transaction-throughput figure.
func (g *Grid) Fig7() *stats.Series {
	return g.normalizedTo("Figure 7: Normalized throughput (tx/kcycle)", (*pmemaccel.Result).Throughput)
}

// Fig8 is the normalized LLC miss-rate figure.
func (g *Grid) Fig8() *stats.Series {
	return g.normalizedTo("Figure 8: Normalized LLC miss rate",
		func(r *pmemaccel.Result) float64 { return r.LLCMissRate })
}

// Fig9 is the normalized NVM write-traffic figure.
func (g *Grid) Fig9() *stats.Series {
	return g.normalizedTo("Figure 9: Normalized NVM write traffic",
		func(r *pmemaccel.Result) float64 { return float64(r.NVMWriteTraffic()) })
}

// Fig10 is the normalized persistent-load-latency figure.
func (g *Grid) Fig10() *stats.Series {
	return g.normalizedTo("Figure 10: Normalized persistent load latency",
		(*pmemaccel.Result).AvgPersistentLoadLatency)
}

// Figure returns the numbered figure (6..10).
func (g *Grid) Figure(n int) (*stats.Series, error) {
	switch n {
	case 6:
		return g.Fig6(), nil
	case 7:
		return g.Fig7(), nil
	case 8:
		return g.Fig8(), nil
	case 9:
		return g.Fig9(), nil
	case 10:
		return g.Fig10(), nil
	default:
		return nil, fmt.Errorf("figures: the paper has figures 6..10, not %d", n)
	}
}

// StallTable reports the §5.2 observation: the fraction of execution time
// each TCache run stalled on a full transaction cache (the paper: ~0
// everywhere except 0.67%% on sps). Result.StallFraction already
// normalizes by cores x Cycles, so the fraction is printed as-is —
// dividing by the core count again (as this table did before) would
// under-report stall time by 4x on the default machine.
func (g *Grid) StallTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transaction-cache full-stall time (TCache runs, %% of cycles)\n")
	for _, bench := range g.Benchs {
		r := g.Results[bench][pmemaccel.TCache]
		if r == nil {
			continue
		}
		frac := r.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry })
		fmt.Fprintf(&b, "  %-10s %6.3f%%\n", bench, frac*100)
	}
	return b.String()
}

// ChannelSweep runs one benchmark across NVM channel counts for every
// mechanism and returns absolute throughput (tx/kcycle) as a series with
// one row per channel count — the memory-side scaling companion to the
// paper's fixed-topology figures. Cells run on up to workers goroutines
// (<= 0 selects GOMAXPROCS) and the series is identical for every worker
// count.
func ChannelSweep(bench workload.Benchmark, mechs []pmemaccel.Kind, counts []int,
	configure func(workload.Benchmark, pmemaccel.Kind) pmemaccel.Config,
	workers int) (*stats.Series, error) {

	type cell struct {
		n   int
		m   pmemaccel.Kind
		cfg pmemaccel.Config
	}
	var cells []cell
	var rows, cols []string
	for _, n := range counts {
		rows = append(rows, fmt.Sprintf("%dch", n))
		for _, m := range mechs {
			cfg := configure(bench, m)
			cfg.NVMChannels = n
			cells = append(cells, cell{n, m, cfg})
		}
	}
	for _, m := range mechs {
		cols = append(cols, m.String())
	}
	results, err := sweep.Run(len(cells), workers,
		func(i int) (*pmemaccel.Result, error) {
			res, err := pmemaccel.Run(cells[i].cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: %v/%v x%dch: %w", bench, cells[i].m, cells[i].n, err)
			}
			return res, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	s := stats.NewSeries(fmt.Sprintf("NVM channel scaling (%v, tx/kcycle)", bench), rows, cols)
	for i, c := range cells {
		s.Set(fmt.Sprintf("%dch", c.n), c.m.String(), results[i].Throughput())
	}
	return s, nil
}

// ContentionSweep runs the contended benchmark (workload.BankShared)
// across machine widths and contention levels for every mechanism — the
// many-core companion to the paper's four-core, core-private figures. It
// returns three row-aligned series (rows "<cores>c/<pct>%"): absolute
// IPC, IPC as a share of the same row's Optimal (the acceptance metric:
// how much of the side-path TC's 98.5%-of-Optimal headline survives
// cross-core collisions), and the abort rate (aborted attempts per
// attempt). Cells run on up to workers goroutines; results are identical
// for every worker count.
func ContentionSweep(cores []int, contentions []float64, mechs []pmemaccel.Kind,
	configure func(workload.Benchmark, pmemaccel.Kind) pmemaccel.Config,
	progress func(string, *pmemaccel.Result),
	workers int) (ipc, ipcShare, abortRate *stats.Series, err error) {

	type cell struct {
		row string
		m   pmemaccel.Kind
		cfg pmemaccel.Config
	}
	var cells []cell
	var rows, cols []string
	for _, n := range cores {
		for _, pct := range contentions {
			row := fmt.Sprintf("%dc/%.0f%%", n, pct*100)
			rows = append(rows, row)
			for _, m := range mechs {
				cfg := configure(workload.BankShared, m)
				cfg.Cores = n
				cfg.ContentionPct = pct
				cells = append(cells, cell{row, m, cfg})
			}
		}
	}
	for _, m := range mechs {
		cols = append(cols, m.String())
	}
	results, err := sweep.Run(len(cells), workers,
		func(i int) (*pmemaccel.Result, error) {
			c := cells[i]
			res, err := pmemaccel.Run(c.cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: contention %s/%v: %w", c.row, c.m, err)
			}
			if res.DurableDiffCount > 0 {
				return nil, fmt.Errorf("figures: contention %s/%v left NVM inconsistent (%d diffs)",
					c.row, c.m, res.DurableDiffCount)
			}
			return res, nil
		},
		func(i int, res *pmemaccel.Result) {
			if progress != nil {
				progress(cells[i].row, res)
			}
		})
	if err != nil {
		return nil, nil, nil, err
	}
	ipc = stats.NewSeries("Contention sweep: IPC (bankshared)", rows, cols)
	abortRate = stats.NewSeries("Contention sweep: abort rate (%)", rows, cols)
	for i, c := range cells {
		ipc.Set(c.row, c.m.String(), results[i].IPC())
		abortRate.Set(c.row, c.m.String(), results[i].AbortRate()*100)
	}
	ipcShare = ipc.Normalized(pmemaccel.Optimal.String())
	ipcShare.Name = "Contention sweep: IPC share of Optimal"
	return ipc, ipcShare, abortRate, nil
}

// MetricsTable renders the full run-wide metrics snapshot of every grid
// cell that carried one (runs configured with Obs.Metrics): counters,
// gauges, and each histogram's count/mean/p50/p90/p99/max row. Cells
// without a snapshot are skipped; the empty string means no cell had
// metrics enabled.
func (g *Grid) MetricsTable() string {
	var b strings.Builder
	for _, bench := range g.Benchs {
		for _, m := range g.Mechs {
			r := g.Results[bench][m]
			if r == nil || r.Metrics == nil {
				continue
			}
			fmt.Fprintf(&b, "%v/%v\n%s\n", bench, m, r.Metrics.Table())
		}
	}
	return b.String()
}

// HistogramSeries extracts one value from a named histogram across the
// grid — e.g. tx_latency_cycles p99 per benchmark and mechanism, the
// tail-latency companion to Figure 6's mean-driven IPC. value selects
// the statistic from the snapshot row; cells without the histogram (or
// without metrics at all) report zero.
func (g *Grid) HistogramSeries(title, name string,
	value func(metrics.HistogramSnapshot) float64) *stats.Series {
	return g.series(title, func(r *pmemaccel.Result) float64 {
		if r.Metrics == nil {
			return 0
		}
		h := r.Metrics.Histogram(name)
		if h == nil {
			return 0
		}
		return value(*h)
	})
}

// TxLatencyP99 is the transaction-latency tail table: p99 cycles from
// commit-request to durable-commit resume, per benchmark and mechanism.
func (g *Grid) TxLatencyP99() *stats.Series {
	return g.HistogramSeries("Transaction latency p99 (cycles)", "tx_latency_cycles",
		func(h metrics.HistogramSnapshot) float64 { return float64(h.P99) })
}

// StageBreakdown renders the flight recorder's per-cell transaction
// waterfall: mean cycles per lifecycle stage (execute, commit-wait,
// tc-drain, wpq-wait, nvm-write), the mean end-to-end latency they sum
// to, and the sampled-transaction count, one row per benchmark x
// mechanism cell. Cells without a flight aggregate (runs configured
// without Obs.TxSample) are skipped; the empty string means no cell
// sampled.
func (g *Grid) StageBreakdown() string {
	cols := append(append([]string{}, obs.TxStageNames[:]...), "e2e", "sampled")
	var rows []string
	var vals [][]float64
	for _, bench := range g.Benchs {
		for _, m := range g.Mechs {
			r := g.Results[bench][m]
			if r == nil || r.TxFlight == nil {
				continue
			}
			a := r.TxFlight
			row := make([]float64, 0, len(cols))
			for i := range obs.TxStageNames {
				row = append(row, a.MeanStage(i))
			}
			row = append(row, a.MeanE2E(), float64(a.Sampled))
			rows = append(rows, fmt.Sprintf("%v/%v", bench, m))
			vals = append(vals, row)
		}
	}
	if len(rows) == 0 {
		return ""
	}
	return stats.Crosstab("Transaction lifecycle stage breakdown (mean cycles per sampled tx)", rows, cols, vals)
}

// Summary renders the headline comparison the paper's abstract quotes:
// each mechanism's geomean share of Optimal performance.
func (g *Grid) Summary() string {
	f6, f7 := g.Fig6(), g.Fig7()
	var b strings.Builder
	fmt.Fprintf(&b, "Geomean share of Optimal performance (paper: TCache 98.5%%, Kiln 87.8%%, SP 47.7%% IPC / 30.6%% throughput)\n")
	for _, m := range g.Mechs {
		if m == pmemaccel.Optimal {
			continue
		}
		fmt.Fprintf(&b, "  %-8s IPC %5.1f%%   throughput %5.1f%%\n",
			m, f6.Geomean(m.String())*100, f7.Geomean(m.String())*100)
	}
	return b.String()
}
