package figures

// BenchmarkGrid records the parallel sweep engine's speedup on a small
// (2 benchmark x 4 mechanism) grid:
//
//	go test -bench=Grid -benchtime=1x ./internal/figures
//
// The cells are fully independent simulations, so j=GOMAXPROCS should
// approach linear speedup over j=1 on a multicore host (on a single-core
// host the two run at the same speed). Both produce bit-identical grids;
// TestParallelGridIsDeterministic pins that.

import (
	"fmt"
	"runtime"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func benchGrid(b *testing.B, workers int) {
	b.Helper()
	configure := func(wb workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(wb, m)
		cfg.Cores = 2
		cfg.Scale = 128
		cfg.InitialSize = 500
		cfg.Ops = 1000
		return cfg
	}
	benchs := []workload.Benchmark{workload.SPS, workload.RBTree}
	for i := 0; i < b.N; i++ {
		if _, err := RunParallel(benchs, Mechs, configure, nil, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSequential(b *testing.B) { benchGrid(b, 1) }

func BenchmarkGridParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchGrid(b, 0)
}

func BenchmarkGridWorkers(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) { benchGrid(b, j) })
	}
}
