package figures

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/grid_1x1_golden.txt from the current simulator output")

// equivalenceConfig is the reduced-size paperrepro cell: small enough to
// run the whole 20-cell grid in a test, large enough that every metric in
// the pinned output is nonzero.
func equivalenceConfig(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
	cfg := pmemaccel.DefaultConfig(b, m)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 500
	cfg.Ops = 200
	return cfg
}

// renderGrid produces the full paperrepro-style report for the grid: one
// Result line per cell in grid order, every figure table, the §5.2 stall
// table and the summary. This is the byte-pinned surface.
func renderGrid(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	grid, err := Run(workload.All, Mechs, equivalenceConfig,
		func(wb workload.Benchmark, m pmemaccel.Kind, r *pmemaccel.Result) {
			fmt.Fprintf(&b, "%v\n", r)
		})
	if err != nil {
		t.Fatal(err)
	}
	for n := 6; n <= 10; n++ {
		s, err := grid.Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(s.Table())
		b.WriteString("\n")
	}
	b.WriteString(grid.StallTable())
	b.WriteString("\n")
	b.WriteString(grid.Summary())
	return b.String()
}

// TestDefaultTopologyOutputPinned pins the complete paperrepro grid
// output for the default topology (1 NVM channel, 1 DRAM channel)
// against a golden file generated from the pre-Backend Router code.
// Any byte of drift in any of the 20 workload x mechanism cells — cycle
// counts, miss rates, write traffic, stall fractions — fails the test,
// so the port/topology refactor is provably behaviour-preserving for the
// paper's configuration.
func TestDefaultTopologyOutputPinned(t *testing.T) {
	got := renderGrid(t)
	goldenPath := filepath.Join("testdata", "grid_1x1_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("1x1 topology output drifted from the pinned seed output.\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test ./internal/figures -run TestDefaultTopologyOutputPinned -update-golden\n%s",
			firstDiff(string(want), got))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first diff at line %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
