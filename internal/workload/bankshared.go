package workload

import (
	"fmt"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// bankShared is the contended variant of bank: the private balance array
// and audit list are kept per core exactly as in bank, but a
// ContentionPct fraction of transactions instead transfer between
// accounts of a shared array every core addresses at the same fixed
// location (memaddr.SharedNVM.Base). Those transactions collide across
// cores on real cache lines, which is the whole point: they exercise the
// conflict-detection and arbitration path of each persistence mechanism.
//
// Because traces are generated per core before the machine runs, a
// core's loads of shared accounts observe only its own prior writes;
// cross-core interaction is purely a matter of runtime timing and
// durable-commit ordering. Shared-account stores therefore carry
// self-describing tagged values — writer core, per-core sequence number,
// account index — rather than values derived from loads, so the durable
// image is checkable: each shared word must equal the value written by
// the globally last durably-committed transaction that touched it
// (System.ExpectedDurable folds committed write sets in global
// commit order), and any well-formed image holds either the initial
// balance or some core's tag.
type bankShared struct {
	rec  *trace.Recorder
	rng  *sim.RNG
	priv *bank

	core       int
	contention float64
	sharedBase uint64
	nShared    int
	counter    uint64 // private persistent word: shared-transfer count
	sharedSeq  uint64
}

// SharedTag builds the value core stores into a shared account: writer
// core in the top byte (1-based so the tag is never mistaken for the
// initial balance), per-core transfer sequence, account index low.
func SharedTag(core int, seq uint64, idx int) uint64 {
	return uint64(core+1)<<56 | (seq&0xFFFFFFFFFF)<<16 | uint64(idx)&0xFFFF
}

// SharedTagCore extracts the 1-based writer core from a tagged value, or
// 0 when v is not a tag (e.g. the initial balance).
func SharedTagCore(v uint64) int { return int(v >> 56) }

func newBankShared(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG, p Params) *bankShared {
	n := p.SharedAccounts
	if n == 0 {
		n = DefaultSharedAccounts
	}
	pct := p.ContentionPct
	if pct == 0 {
		pct = DefaultContentionPct
	}
	return &bankShared{
		rec:        rec,
		rng:        rng,
		priv:       newBank(rec, hp, rng),
		core:       p.Core,
		contention: pct,
		sharedBase: memaddr.SharedNVM.Base,
		nShared:    n,
	}
}

func (b *bankShared) sharedAddr(i int) uint64 { return b.sharedBase + uint64(i)*8 }

func (b *bankShared) setup(n int) error {
	if b.nShared < 2 {
		return fmt.Errorf("bankshared needs at least 2 shared accounts, got %d", b.nShared)
	}
	if uint64(b.nShared)*8 > memaddr.SharedNVM.Size {
		return fmt.Errorf("bankshared: %d shared accounts exceed the shared region", b.nShared)
	}
	if err := b.priv.setup(n); err != nil {
		return err
	}
	ctr, err := b.priv.heap.Alloc(1)
	if err != nil {
		return err
	}
	b.counter = ctr
	b.rec.Store(b.counter, 0)
	// Every core seeds the shared array with identical values during the
	// quiet (untraced) setup, so the per-core base images agree on the
	// overlapping region and the fold order across cores is irrelevant.
	for i := 0; i < b.nShared; i++ {
		b.rec.Store(b.sharedAddr(i), bankInitialBalance)
	}
	return nil
}

// transferShared updates two shared accounts and the private transfer
// counter in one durable transaction. The stored values are tags, not
// balances: with concurrent writers, "current balance" is undefined at
// generation time, but last-committed-writer-wins over tags is exactly
// checkable.
func (b *bankShared) transferShared(from, to int) error {
	b.rec.Compute(CostAlloc)
	b.rec.TxBegin()
	b.rec.Load(b.sharedAddr(from))
	b.rec.Load(b.sharedAddr(to))
	b.rec.Compute(4)
	seq := b.sharedSeq
	b.rec.Store(b.sharedAddr(from), SharedTag(b.core, seq, from))
	b.rec.Store(b.sharedAddr(to), SharedTag(b.core, seq, to))
	b.rec.Store(b.counter, seq+1)
	b.rec.TxEnd()
	b.sharedSeq = seq + 1
	return nil
}

func (b *bankShared) op(searches int) error {
	if b.rng.Bool(b.contention) {
		b.rec.Compute(CostOpSetup)
		for s := 0; s < searches; s++ {
			b.rec.Load(b.priv.balanceAddr(b.rng.Intn(b.priv.nAccounts)))
		}
		from := b.rng.Intn(b.nShared)
		to := b.rng.Intn(b.nShared - 1)
		if to >= from {
			to++
		}
		return b.transferShared(from, to)
	}
	return b.priv.op(searches)
}

func (b *bankShared) check() error {
	// The private array and audit list keep bank's full invariants
	// (shared transfers never touch private balances). The shared array
	// in this core's generation image holds only this core's writes:
	// initial balances or tags from this core.
	if err := b.priv.check(); err != nil {
		return err
	}
	img := b.rec.Image()
	if got := img.ReadWord(b.counter); got != b.sharedSeq {
		return fmt.Errorf("bankshared counter %d, want %d", got, b.sharedSeq)
	}
	for i := 0; i < b.nShared; i++ {
		v := img.ReadWord(b.sharedAddr(i))
		if v != bankInitialBalance && SharedTagCore(v) != b.core+1 {
			return fmt.Errorf("bankshared[%d] = %#x: neither initial balance nor this core's tag", i, v)
		}
	}
	return nil
}

func (b *bankShared) describe() Meta {
	m := b.priv.describe()
	m.SharedBase = b.sharedBase
	m.SharedLen = b.nShared
	return m
}

// checkBankSharedImage validates a recovered image: the private part
// keeps bank's invariants; each shared word is either the initial
// balance or a well-formed tag from some core.
func checkBankSharedImage(meta Meta, img *memimage.Image) error {
	if err := checkBankImage(meta, img); err != nil {
		return err
	}
	for i := 0; i < meta.SharedLen; i++ {
		v := img.ReadWord(meta.SharedBase + uint64(i)*8)
		if v == bankInitialBalance {
			continue
		}
		if c := SharedTagCore(v); c < 1 || c > memaddr.MaxCores {
			return fmt.Errorf("bankshared shared[%d] = %#x: malformed writer tag", i, v)
		}
	}
	return nil
}
