package workload

import (
	"fmt"

	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// graph is the adjacency-list edge-insert benchmark. The vertex table is a
// persistent array of list-head pointers; each operation allocates an edge
// node and links it at the head of a random vertex's list — the linked-list
// insert from the paper's introduction whose dangling-pointer failure mode
// motivates write-order control.
//
// Edge node layout (3 words): 0 = destination vertex, 1 = weight,
// 2 = next edge pointer (0 terminates the list).
type graph struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	heads    uint64 // base of vertex head-pointer array
	vertices int
	edges    int
}

const (
	graphEdgeWords = 3
	geTo           = 0
	geWeight       = 1
	geNext         = 2
)

func newGraph(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *graph {
	return &graph{rec: rec, heap: hp, rng: rng}
}

func (g *graph) headAddr(v int) uint64 { return g.heads + uint64(v)*8 }

// graphDegree is the average prepopulated out-degree: measured inserts
// scan a list of roughly this length before linking.
const graphDegree = 8

func (g *graph) setup(n int) error {
	if n < graphDegree {
		return fmt.Errorf("graph needs at least %d elements, got %d", graphDegree, n)
	}
	// n counts heap elements (~one edge each); carve out vertices so the
	// average degree lands at graphDegree.
	g.vertices = n / graphDegree
	heads, err := g.heap.Alloc(g.vertices)
	if err != nil {
		return err
	}
	g.heads = heads
	for v := 0; v < g.vertices; v++ {
		g.rec.Store(g.headAddr(v), 0)
	}
	for i := 0; i < n; i++ {
		if err := g.insertEdge(g.rng.Intn(g.vertices), g.rng.Intn(g.vertices)); err != nil {
			return err
		}
	}
	return nil
}

// insertEdge adds src->dst: scan src's adjacency list for an existing
// edge (updating its weight in place if found), else allocate a node and
// link it at the head. All durable writes happen inside one transaction:
// node initialization first, then the head pointer — the ordering whose
// violation corrupts the list.
func (g *graph) insertEdge(src, dst int) error {
	g.rec.TxBegin()
	head := g.rec.Load(g.headAddr(src))
	for node := head; node != 0; {
		g.rec.Compute(CostNodeVisit)
		if int(g.rec.LoadDep(node+geTo*8)) == dst {
			g.rec.Store(node+geWeight*8, g.rng.Uint64()%1000)
			g.rec.TxEnd()
			return nil
		}
		node = g.rec.LoadDep(node + geNext*8)
	}
	node, err := g.heap.Alloc(graphEdgeWords)
	if err != nil {
		g.rec.TxEnd()
		return err
	}
	g.rec.Compute(CostAlloc)
	g.rec.Store(node+geTo*8, uint64(dst))
	g.rec.Store(node+geWeight*8, g.rng.Uint64()%1000)
	g.rec.Store(node+geNext*8, head)
	g.rec.Store(g.headAddr(src), node)
	g.rec.TxEnd()
	g.edges++
	return nil
}

func (g *graph) op(searches int) error {
	g.rec.Compute(CostOpSetup)
	return g.insertEdge(g.rng.Intn(g.vertices), g.rng.Intn(g.vertices))
}

func (g *graph) check() error {
	img := g.rec.Image()
	count := 0
	for v := 0; v < g.vertices; v++ {
		node := img.ReadWord(g.headAddr(v))
		steps := 0
		for node != 0 {
			to := img.ReadWord(node + geTo*8)
			if to >= uint64(g.vertices) {
				return fmt.Errorf("vertex %d: edge to out-of-range vertex %d", v, to)
			}
			node = img.ReadWord(node + geNext*8)
			count++
			if steps++; steps > g.edges+1 {
				return fmt.Errorf("vertex %d: adjacency list cycle detected", v)
			}
		}
	}
	if count != g.edges {
		return fmt.Errorf("reachable edges = %d, inserted = %d", count, g.edges)
	}
	return nil
}

func (g *graph) describe() Meta {
	return Meta{Heads: g.heads, Vertices: g.vertices}
}
