package workload

import (
	"fmt"

	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// hashtable is the chained key-value hashtable benchmark. Buckets are a
// persistent pointer array; each entry is a 3-word node {key, value, next}.
// An operation performs SearchesPerOp read-only lookups of existing keys
// followed by one durable insert (or value update on key collision).
type hashtable struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	buckets  uint64
	nbuckets int
	keys     []uint64 // inserted keys (volatile driver bookkeeping)
	size     int      // distinct keys in the table
}

const (
	htNodeWords = 3
	htKey       = 0
	htVal       = 1
	htNext      = 2
)

func newHashtable(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *hashtable {
	return &hashtable{rec: rec, heap: hp, rng: rng}
}

// hash is a 64-bit mix (splitmix64 finalizer); its cost is charged as
// CostHash compute instructions at each use site.
func hash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (h *hashtable) bucketAddr(k uint64) uint64 {
	return h.buckets + (hash(k)%uint64(h.nbuckets))*8
}

func (h *hashtable) setup(n int) error {
	if n < 1 {
		return fmt.Errorf("hashtable needs at least 1 element, got %d", n)
	}
	// Size buckets for a load factor around 2 at the end of the run,
	// keeping chains short but non-trivial.
	h.nbuckets = n/2 + 1
	b, err := h.heap.Alloc(h.nbuckets)
	if err != nil {
		return err
	}
	h.buckets = b
	for i := 0; i < h.nbuckets; i++ {
		h.rec.Store(h.buckets+uint64(i)*8, 0)
	}
	for i := 0; i < n; i++ {
		if err := h.insert(h.rng.Uint64()%uint64(4*n)+1, h.rng.Uint64()); err != nil {
			return err
		}
	}
	return nil
}

// lookup walks the chain for key, returning the node address (0 if
// absent). It is read-only and non-transactional.
func (h *hashtable) lookup(key uint64) uint64 {
	h.rec.Compute(CostHash)
	node := h.rec.Load(h.bucketAddr(key))
	for node != 0 {
		h.rec.Compute(CostNodeVisit)
		if h.rec.LoadDep(node+htKey*8) == key {
			h.rec.LoadDep(node + htVal*8)
			return node
		}
		node = h.rec.LoadDep(node + htNext*8)
	}
	return 0
}

// insert adds key->value durably: node initialization then bucket-head
// publication in one transaction, or an in-place value update if the key
// already exists.
func (h *hashtable) insert(key, value uint64) error {
	h.rec.Compute(CostHash)
	baddr := h.bucketAddr(key)
	h.rec.TxBegin()
	head := h.rec.Load(baddr)
	node := head
	for node != 0 {
		h.rec.Compute(CostNodeVisit)
		if h.rec.LoadDep(node+htKey*8) == key {
			h.rec.Store(node+htVal*8, value)
			h.rec.TxEnd()
			return nil
		}
		node = h.rec.LoadDep(node + htNext*8)
	}
	fresh, err := h.heap.Alloc(htNodeWords)
	if err != nil {
		return err
	}
	h.rec.Compute(CostAlloc)
	h.rec.Store(fresh+htKey*8, key)
	h.rec.Store(fresh+htVal*8, value)
	h.rec.Store(fresh+htNext*8, head)
	h.rec.Store(baddr, fresh)
	h.rec.TxEnd()
	h.keys = append(h.keys, key)
	h.size++
	return nil
}

func (h *hashtable) op(searches int) error {
	h.rec.Compute(CostOpSetup)
	for s := 0; s < searches && len(h.keys) > 0; s++ {
		h.lookup(h.keys[h.rng.Intn(len(h.keys))])
	}
	keyRange := uint64(4 * (h.size + 1))
	return h.insert(h.rng.Uint64()%keyRange+1, h.rng.Uint64())
}

func (h *hashtable) check() error {
	img := h.rec.Image()
	seen := make(map[uint64]bool)
	count := 0
	for i := 0; i < h.nbuckets; i++ {
		node := img.ReadWord(h.buckets + uint64(i)*8)
		steps := 0
		for node != 0 {
			key := img.ReadWord(node + htKey*8)
			if key == 0 {
				return fmt.Errorf("bucket %d: node %#x holds zero key", i, node)
			}
			if hash(key)%uint64(h.nbuckets) != uint64(i) {
				return fmt.Errorf("bucket %d: key %d hashed to wrong chain", i, key)
			}
			if seen[key] {
				return fmt.Errorf("key %d appears twice", key)
			}
			seen[key] = true
			count++
			node = img.ReadWord(node + htNext*8)
			if steps++; steps > h.size+1 {
				return fmt.Errorf("bucket %d: chain cycle detected", i)
			}
		}
	}
	if count != h.size {
		return fmt.Errorf("table holds %d keys, inserted %d distinct", count, h.size)
	}
	return nil
}

func (h *hashtable) describe() Meta {
	return Meta{Buckets: h.buckets, NBuckets: h.nbuckets}
}
