package workload

// Instruction-cost calibration: paper-scale runs size their op count to
// an instruction target, and the dynamic instructions per operation vary
// per benchmark (pointer-chase depth, rebalancing, allocator traffic).
// Rather than hand-maintaining a cost table, sample a short streamed
// window and measure.

import "fmt"

// CalibrationOps is the number of measured operations sampled by
// InstructionsPerOp — long enough to average out per-op variance, short
// enough to be negligible against a paper-scale run.
const CalibrationOps = 2048

// InstructionsPerOp estimates benchmark b's dynamic instruction cost per
// measured operation under p by streaming a CalibrationOps-long window
// and reading the recorder's running instruction counter. p.Ops is
// ignored (the sample length is fixed); p.InitialSize should match the
// intended run, since structure depth feeds traversal cost.
func InstructionsPerOp(b Benchmark, p Params) (float64, error) {
	p.Ops = CalibrationOps
	out, err := NewStream(b, p)
	if err != nil {
		return 0, fmt.Errorf("workload %s: calibration: %w", b, err)
	}
	rd := out.NewReader()
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
	}
	if err := out.StreamErr(); err != nil {
		return 0, fmt.Errorf("workload %s: calibration: %w", b, err)
	}
	instr := out.Recorder.Instructions()
	if instr == 0 {
		return 0, fmt.Errorf("workload %s: calibration produced no instructions", b)
	}
	return float64(instr) / CalibrationOps, nil
}
