package workload

import (
	"fmt"

	"pmemaccel/internal/memimage"
	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// bank is an OLTP-style extension workload beyond the paper's Table 3: a
// persistent array of account balances plus an append-only audit list.
// Each transaction transfers a random amount between two accounts AND
// appends an audit record — a multi-structure durable update whose
// atomicity is directly checkable: the sum of balances is conserved by
// every committed prefix, and every audit record matches a transfer that
// happened. A torn transfer (debit without credit, or transfer without
// audit) is exactly the corruption persistence mechanisms must prevent.
//
// Audit record layout (4 words): 0 from, 1 to, 2 amount, 3 next.
type bank struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	accounts  uint64 // balance array base
	nAccounts int
	auditHead uint64 // persistent pointer to the newest audit record
	transfers int
	total     uint64 // conserved sum of balances
}

const (
	bankAuditWords = 4
	baFrom         = 0
	baTo           = 1
	baAmount       = 2
	baNext         = 3
	// bankInitialBalance seeds every account.
	bankInitialBalance = 1000
)

func newBank(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *bank {
	return &bank{rec: rec, heap: hp, rng: rng}
}

func (b *bank) balanceAddr(i int) uint64 { return b.accounts + uint64(i)*8 }

func (b *bank) setup(n int) error {
	if n < 2 {
		return fmt.Errorf("bank needs at least 2 accounts, got %d", n)
	}
	b.nAccounts = n
	base, err := b.heap.Alloc(n)
	if err != nil {
		return err
	}
	b.accounts = base
	head, err := b.heap.Alloc(1)
	if err != nil {
		return err
	}
	b.auditHead = head
	b.rec.Store(b.auditHead, 0)
	for i := 0; i < n; i++ {
		b.rec.Store(b.balanceAddr(i), bankInitialBalance)
	}
	b.total = uint64(n) * bankInitialBalance
	return nil
}

// transfer moves amount between two distinct accounts and appends the
// audit record, all in one durable transaction.
func (b *bank) transfer(from, to int, amount uint64) error {
	node, err := b.heap.Alloc(bankAuditWords)
	if err != nil {
		return err
	}
	b.rec.Compute(CostAlloc)
	b.rec.TxBegin()
	fromBal := b.rec.Load(b.balanceAddr(from))
	toBal := b.rec.Load(b.balanceAddr(to))
	if amount > fromBal {
		amount = fromBal // transfers never overdraw
	}
	b.rec.Compute(4)
	b.rec.Store(b.balanceAddr(from), fromBal-amount)
	b.rec.Store(b.balanceAddr(to), toBal+amount)
	oldHead := b.rec.Load(b.auditHead)
	b.rec.Store(node+baFrom*8, uint64(from))
	b.rec.Store(node+baTo*8, uint64(to))
	b.rec.Store(node+baAmount*8, amount)
	b.rec.Store(node+baNext*8, oldHead)
	b.rec.Store(b.auditHead, node)
	b.rec.TxEnd()
	b.transfers++
	return nil
}

func (b *bank) op(searches int) error {
	b.rec.Compute(CostOpSetup)
	for s := 0; s < searches; s++ {
		// Balance inquiry: one independent load.
		b.rec.Load(b.balanceAddr(b.rng.Intn(b.nAccounts)))
	}
	from := b.rng.Intn(b.nAccounts)
	to := b.rng.Intn(b.nAccounts - 1)
	if to >= from {
		to++
	}
	return b.transfer(from, to, b.rng.Uint64()%200+1)
}

func (b *bank) check() error {
	img := b.rec.Image()
	var sum uint64
	for i := 0; i < b.nAccounts; i++ {
		sum += img.ReadWord(b.balanceAddr(i))
	}
	if sum != b.total {
		return fmt.Errorf("bank total %d, want %d (money created or destroyed)", sum, b.total)
	}
	count := 0
	for node := img.ReadWord(b.auditHead); node != 0; node = img.ReadWord(node + baNext*8) {
		from := img.ReadWord(node + baFrom*8)
		to := img.ReadWord(node + baTo*8)
		if from >= uint64(b.nAccounts) || to >= uint64(b.nAccounts) || from == to {
			return fmt.Errorf("audit record %#x references invalid accounts %d->%d", node, from, to)
		}
		count++
		if count > b.transfers {
			return fmt.Errorf("audit list longer than %d transfers (cycle?)", b.transfers)
		}
	}
	if count != b.transfers {
		return fmt.Errorf("audit list holds %d records, made %d transfers", count, b.transfers)
	}
	return nil
}

func (b *bank) describe() Meta {
	return Meta{
		ArrayBase: b.accounts, ArrayLen: b.nAccounts,
		RootPtr: b.auditHead,
	}
}

// checkBankImage validates a recovered image: balances non-negative and
// conserved, audit chain well-formed. Called through CheckImage.
func checkBankImage(meta Meta, img *memimage.Image) error {
	var sum uint64
	for i := 0; i < meta.ArrayLen; i++ {
		bal := img.ReadWord(meta.ArrayBase + uint64(i)*8)
		if bal > uint64(meta.ArrayLen)*bankInitialBalance {
			return fmt.Errorf("bank account %d balance %d exceeds total money supply", i, bal)
		}
		sum += bal
	}
	if sum != uint64(meta.ArrayLen)*bankInitialBalance {
		return fmt.Errorf("bank total %d, want %d (torn transfer)", sum, uint64(meta.ArrayLen)*bankInitialBalance)
	}
	var steps int64
	for node := img.ReadWord(meta.RootPtr); node != 0; node = img.ReadWord(node + baNext*8) {
		from := img.ReadWord(node + baFrom*8)
		to := img.ReadWord(node + baTo*8)
		if from >= uint64(meta.ArrayLen) || to >= uint64(meta.ArrayLen) || from == to {
			return fmt.Errorf("bank audit record %#x invalid (%d->%d)", node, from, to)
		}
		if steps++; steps > meta.MaxElems {
			return fmt.Errorf("bank audit chain cycle")
		}
	}
	return nil
}
