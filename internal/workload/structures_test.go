package workload

// Direct structural tests of the individual data structures, driving them
// harder than the Generate path does and checking invariants after every
// few operations.

import (
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

func newHarness() (*trace.Recorder, *pheap.Heap, *sim.RNG) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 28})
	return rec, hp, sim.NewRNG(99)
}

func TestRBTreeInvariantsUnderHeavyInsert(t *testing.T) {
	rec, hp, rng := newHarness()
	tr := newRBTree(rec, hp, rng)
	if err := tr.setup(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.insert(tr.nextKey(), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
		if i%250 == 0 {
			if err := tr.check(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeSequentialKeysForceRotations(t *testing.T) {
	// Monotonic keys are the worst case for an unbalanced BST; a valid
	// red-black fixup keeps the tree shallow.
	rec, hp, rng := newHarness()
	tr := newRBTree(rec, hp, rng)
	if err := tr.setup(0); err != nil {
		t.Fatal(err)
	}
	const n = 1024
	for i := 1; i <= n; i++ {
		if err := tr.insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	// Depth bound: 2*log2(n+1) for a red-black tree.
	img := rec.Image()
	var depth func(n uint64) int
	depth = func(node uint64) int {
		if node == 0 {
			return 0
		}
		l := depth(img.ReadWord(node + rbLeft*8))
		r := depth(img.ReadWord(node + rbRight*8))
		if r > l {
			l = r
		}
		return l + 1
	}
	if d := depth(img.ReadWord(tr.rootPtr)); d > 22 {
		t.Fatalf("depth %d for %d sequential inserts, want <= 22", d, n)
	}
}

func TestRBTreeSearchFindsEveryInsertedKey(t *testing.T) {
	rec, hp, rng := newHarness()
	tr := newRBTree(rec, hp, rng)
	if err := tr.setup(0); err != nil {
		t.Fatal(err)
	}
	keys := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		k, v := tr.nextKey(), rng.Uint64()
		if _, dup := keys[k]; dup {
			continue
		}
		keys[k] = v
		if err := tr.insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k := range keys {
		if n := tr.search(k); n == 0 {
			t.Fatalf("key %d not found", k)
		}
	}
	if tr.search(0xffff_ffff_ffff_fff1) != 0 {
		t.Fatal("search found a key never inserted")
	}
}

func TestRBTreeDuplicateInsertUpdatesValue(t *testing.T) {
	rec, hp, rng := newHarness()
	tr := newRBTree(rec, hp, rng)
	if err := tr.setup(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.insert(42, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.insert(42, 2); err != nil {
		t.Fatal(err)
	}
	if tr.size != 1 {
		t.Fatalf("size = %d after duplicate insert, want 1", tr.size)
	}
	n := tr.search(42)
	if got := rec.Image().ReadWord(n + rbVal*8); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
}

func TestBTreeInvariantsUnderHeavyInsert(t *testing.T) {
	rec, hp, rng := newHarness()
	bt := newBTree(rec, hp, rng)
	if err := bt.setup(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := bt.insert(bt.nextKey(), rng.Uint64()); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if err := bt.check(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := bt.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeSequentialAndReverseInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i + 1) },
		"descending": func(i int) uint64 { return uint64(5000 - i) },
	} {
		rec, hp, rng := newHarness()
		bt := newBTree(rec, hp, rng)
		if err := bt.setup(0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if err := bt.insert(gen(i), uint64(i)); err != nil {
				t.Fatalf("%s insert %d: %v", name, i, err)
			}
		}
		if err := bt.check(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = rec
	}
}

func TestBTreeSearchFindsEveryInsertedKeyWithValue(t *testing.T) {
	rec, hp, rng := newHarness()
	bt := newBTree(rec, hp, rng)
	if err := bt.setup(0); err != nil {
		t.Fatal(err)
	}
	keys := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k, v := bt.nextKey(), rng.Uint64()
		keys[k] = v
		if err := bt.insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range keys {
		got, found := bt.search(k)
		if !found || got != v {
			t.Fatalf("search(%d) = (%d,%v), want (%d,true)", k, got, found, v)
		}
	}
	if _, found := bt.search(0xffff_ffff_ffff_fff1); found {
		t.Fatal("search found a key never inserted")
	}
	_ = rec
}

func TestBTreeDuplicateInsertUpdates(t *testing.T) {
	rec, hp, rng := newHarness()
	bt := newBTree(rec, hp, rng)
	if err := bt.setup(0); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{10, 20} {
		if err := bt.insert(77, v); err != nil {
			t.Fatal(err)
		}
	}
	if bt.size != 1 {
		t.Fatalf("size = %d, want 1", bt.size)
	}
	got, found := bt.search(77)
	if !found || got != 20 {
		t.Fatalf("search(77) = (%d,%v), want (20,true)", got, found)
	}
	_ = rec
}

func TestHashtableCollisionsAndUpdates(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 24})
	ht := newHashtable(rec, hp, sim.NewRNG(3))
	if err := ht.setup(4); err != nil { // few buckets -> forced collisions
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := ht.insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := ht.check(); err != nil {
		t.Fatal(err)
	}
	// Update an existing key: size must not grow.
	before := ht.size
	if err := ht.insert(100, 555); err != nil {
		t.Fatal(err)
	}
	if ht.size != before {
		t.Fatalf("update grew size from %d to %d", before, ht.size)
	}
	if n := ht.lookup(100); n == 0 {
		t.Fatal("lookup(100) failed")
	} else if got := rec.Image().ReadWord(n + htVal*8); got != 555 {
		t.Fatalf("value = %d, want 555", got)
	}
	if ht.lookup(0xdead_beef_dead_beef) != 0 {
		t.Fatal("lookup found a key never inserted")
	}
}

func TestGraphEdgeOrderIsLIFO(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 24})
	g := newGraph(rec, hp, sim.NewRNG(5))
	if err := g.setup(graphDegree * 40); err != nil {
		t.Fatal(err)
	}
	// Insert two fresh edges from vertex 0 to distinct targets the
	// setup cannot have created (targets beyond... use edges to the
	// same vertex pair twice to exercise the update path instead).
	before := g.edges
	if err := g.insertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	head1 := rec.Image().ReadWord(g.headAddr(0))
	firstWasFresh := g.edges == before+1
	if err := g.insertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	head2 := rec.Image().ReadWord(g.headAddr(0))
	secondWasFresh := g.edges == before+1+1 || (!firstWasFresh && g.edges == before+1)
	if firstWasFresh && secondWasFresh {
		if head2 == head1 {
			t.Fatal("head did not move on fresh insert")
		}
		if next := rec.Image().ReadWord(head2 + geNext*8); next != head1 {
			t.Fatalf("new head's next = %#x, want %#x", next, head1)
		}
	}
	// Re-inserting an existing edge updates in place: head stays.
	headBefore := rec.Image().ReadWord(g.headAddr(0))
	edgesBefore := g.edges
	if err := g.insertEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.edges != edgesBefore {
		t.Fatal("duplicate insert created a new edge")
	}
	if rec.Image().ReadWord(g.headAddr(0)) != headBefore {
		t.Fatal("duplicate insert moved the head")
	}
	if err := g.check(); err != nil {
		t.Fatal(err)
	}
}

func TestSPSSwapPreservesPermutation(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 20})
	s := newSPS(rec, hp, sim.NewRNG(8))
	if err := s.setup(64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := s.op(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBankConservationAndAudit(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 24})
	b := newBank(rec, hp, sim.NewRNG(17))
	if err := b.setup(64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := b.op(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.check(); err != nil {
		t.Fatal(err)
	}
	if b.transfers != 500 {
		t.Fatalf("transfers = %d, want 500", b.transfers)
	}
	// The image validator agrees.
	meta := b.describe()
	meta.MaxElems = 4 * (64 + 500)
	if err := CheckImage(Bank, meta, rec.Image()); err != nil {
		t.Fatal(err)
	}
}

func TestBankNeverOverdraws(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 22})
	b := newBank(rec, hp, sim.NewRNG(3))
	if err := b.setup(2); err != nil {
		t.Fatal(err)
	}
	// Drain account 0 with repeated large transfers.
	for i := 0; i < 50; i++ {
		if err := b.transfer(0, 1, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	img := rec.Image()
	if got := img.ReadWord(b.balanceAddr(0)); got != 0 {
		t.Fatalf("account 0 balance = %d, want 0 (clamped, not negative)", got)
	}
	if got := img.ReadWord(b.balanceAddr(1)); got != 2*bankInitialBalance {
		t.Fatalf("account 1 balance = %d, want %d", got, 2*bankInitialBalance)
	}
	if err := b.check(); err != nil {
		t.Fatal(err)
	}
}

func TestBankImageValidatorDetectsTornTransfer(t *testing.T) {
	rec := trace.NewRecorder(memimage.New())
	hp := pheap.New(memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 22})
	b := newBank(rec, hp, sim.NewRNG(5))
	if err := b.setup(8); err != nil {
		t.Fatal(err)
	}
	img := rec.Image().Snapshot()
	// Simulate a torn transfer: debit without credit.
	img.WriteWord(b.balanceAddr(0), bankInitialBalance-100)
	meta := b.describe()
	meta.MaxElems = 100
	if err := checkBankImage(meta, img); err == nil {
		t.Fatal("torn transfer not detected")
	}
}
