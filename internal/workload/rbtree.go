package workload

import (
	"fmt"

	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// rbtree is the red-black tree search/insert benchmark. Nodes live in the
// persistent heap with the layout (6 words):
//
//	0 key, 1 value, 2 left, 3 right, 4 parent, 5 color (0 black, 1 red)
//
// A null pointer is address 0. The tree root pointer is itself a persistent
// word so the whole structure is recoverable. Each insert — BST descent,
// link, and the full CLRS fixup with rotations — is one durable
// transaction, giving the multi-store, scattered-address write sets that
// make trees a classic persistence stress test.
type rbtree struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	rootPtr  uint64 // address of the persistent root pointer word
	size     int    // distinct keys
	maxKey   uint64
	inserted []uint64 // keys present, for lookup ops
}

const (
	rbNodeWords = 6
	rbKey       = 0
	rbVal       = 1
	rbLeft      = 2
	rbRight     = 3
	rbParent    = 4
	rbColor     = 5

	rbBlack = 0
	rbRed   = 1
)

func newRBTree(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *rbtree {
	return &rbtree{rec: rec, heap: hp, rng: rng}
}

// Field accessors through the recorder. Every one is a real traced memory
// access; the CostNodeVisit compute is charged by the traversal loops, not
// here.
func (t *rbtree) get(n uint64, f uint64) uint64 { return t.rec.LoadDep(n + f*8) }
func (t *rbtree) set(n uint64, f, v uint64)     { t.rec.Store(n+f*8, v) }
func (t *rbtree) root() uint64                  { return t.rec.Load(t.rootPtr) }
func (t *rbtree) setRoot(n uint64)              { t.rec.Store(t.rootPtr, n) }

func (t *rbtree) setup(n int) error {
	rp, err := t.heap.Alloc(1)
	if err != nil {
		return err
	}
	t.rootPtr = rp
	t.rec.Store(t.rootPtr, 0)
	for i := 0; i < n; i++ {
		if err := t.insert(t.nextKey(), t.rng.Uint64()); err != nil {
			return err
		}
	}
	return nil
}

// nextKey draws a fresh random key; collisions fall back to max+1 so the
// tree keeps growing (the update path is still exercised by op's explicit
// duplicate probability).
func (t *rbtree) nextKey() uint64 {
	k := t.rng.Uint64()%1_000_000_007 + 1
	if k > t.maxKey {
		t.maxKey = k
	}
	return k
}

// search descends from the root, read-only.
func (t *rbtree) search(key uint64) uint64 {
	n := t.root()
	for n != 0 {
		t.rec.Compute(CostNodeVisit)
		k := t.get(n, rbKey)
		switch {
		case key == k:
			t.get(n, rbVal)
			return n
		case key < k:
			n = t.get(n, rbLeft)
		default:
			n = t.get(n, rbRight)
		}
	}
	return 0
}

// rotateLeft/rotateRight are the CLRS rotations, executed with traced
// loads and stores.
func (t *rbtree) rotateLeft(x uint64) {
	y := t.get(x, rbRight)
	yl := t.get(y, rbLeft)
	t.set(x, rbRight, yl)
	if yl != 0 {
		t.set(yl, rbParent, x)
	}
	xp := t.get(x, rbParent)
	t.set(y, rbParent, xp)
	if xp == 0 {
		t.setRoot(y)
	} else if t.get(xp, rbLeft) == x {
		t.set(xp, rbLeft, y)
	} else {
		t.set(xp, rbRight, y)
	}
	t.set(y, rbLeft, x)
	t.set(x, rbParent, y)
}

func (t *rbtree) rotateRight(x uint64) {
	y := t.get(x, rbLeft)
	yr := t.get(y, rbRight)
	t.set(x, rbLeft, yr)
	if yr != 0 {
		t.set(yr, rbParent, x)
	}
	xp := t.get(x, rbParent)
	t.set(y, rbParent, xp)
	if xp == 0 {
		t.setRoot(y)
	} else if t.get(xp, rbRight) == x {
		t.set(xp, rbRight, y)
	} else {
		t.set(xp, rbLeft, y)
	}
	t.set(y, rbRight, x)
	t.set(x, rbParent, y)
}

// insert adds key->value (or updates in place) inside one transaction.
func (t *rbtree) insert(key, value uint64) error {
	t.rec.TxBegin()
	// Descent.
	var parent uint64
	n := t.root()
	for n != 0 {
		t.rec.Compute(CostNodeVisit)
		k := t.get(n, rbKey)
		if key == k {
			t.set(n, rbVal, value)
			t.rec.TxEnd()
			return nil
		}
		parent = n
		if key < k {
			n = t.get(n, rbLeft)
		} else {
			n = t.get(n, rbRight)
		}
	}
	fresh, err := t.heap.Alloc(rbNodeWords)
	if err != nil {
		t.rec.TxEnd() // commit the (pure-read) transaction before failing
		return err
	}
	t.rec.Compute(CostAlloc)
	t.set(fresh, rbKey, key)
	t.set(fresh, rbVal, value)
	t.set(fresh, rbLeft, 0)
	t.set(fresh, rbRight, 0)
	t.set(fresh, rbParent, parent)
	t.set(fresh, rbColor, rbRed)
	if parent == 0 {
		t.setRoot(fresh)
	} else if key < t.get(parent, rbKey) {
		t.set(parent, rbLeft, fresh)
	} else {
		t.set(parent, rbRight, fresh)
	}
	t.fixup(fresh)
	t.rec.TxEnd()
	t.size++
	t.inserted = append(t.inserted, key)
	return nil
}

// fixup restores the red-black invariants after linking a red leaf.
func (t *rbtree) fixup(z uint64) {
	for {
		zp := t.get(z, rbParent)
		if zp == 0 || t.get(zp, rbColor) == rbBlack {
			break
		}
		t.rec.Compute(CostNodeVisit)
		zpp := t.get(zp, rbParent) // grandparent exists: parent is red, so not root
		if t.get(zpp, rbLeft) == zp {
			y := t.get(zpp, rbRight) // uncle
			if y != 0 && t.get(y, rbColor) == rbRed {
				t.set(zp, rbColor, rbBlack)
				t.set(y, rbColor, rbBlack)
				t.set(zpp, rbColor, rbRed)
				z = zpp
				continue
			}
			if t.get(zp, rbRight) == z {
				z = zp
				t.rotateLeft(z)
				zp = t.get(z, rbParent)
				zpp = t.get(zp, rbParent)
			}
			t.set(zp, rbColor, rbBlack)
			t.set(zpp, rbColor, rbRed)
			t.rotateRight(zpp)
		} else {
			y := t.get(zpp, rbLeft)
			if y != 0 && t.get(y, rbColor) == rbRed {
				t.set(zp, rbColor, rbBlack)
				t.set(y, rbColor, rbBlack)
				t.set(zpp, rbColor, rbRed)
				z = zpp
				continue
			}
			if t.get(zp, rbLeft) == z {
				z = zp
				t.rotateRight(z)
				zp = t.get(z, rbParent)
				zpp = t.get(zp, rbParent)
			}
			t.set(zp, rbColor, rbBlack)
			t.set(zpp, rbColor, rbRed)
			t.rotateLeft(zpp)
		}
	}
	r := t.root()
	if t.get(r, rbColor) != rbBlack {
		t.set(r, rbColor, rbBlack)
	}
}

func (t *rbtree) op(searches int) error {
	t.rec.Compute(CostOpSetup)
	for s := 0; s < searches && len(t.inserted) > 0; s++ {
		t.search(t.inserted[t.rng.Intn(len(t.inserted))])
	}
	// 1-in-8 operations update an existing key; the rest insert fresh.
	if len(t.inserted) > 0 && t.rng.Intn(8) == 0 {
		return t.insert(t.inserted[t.rng.Intn(len(t.inserted))], t.rng.Uint64())
	}
	return t.insert(t.nextKey(), t.rng.Uint64())
}

// check validates the full red-black invariants against the program image.
func (t *rbtree) check() error {
	img := t.rec.Image()
	read := func(n, f uint64) uint64 { return img.ReadWord(n + f*8) }
	root := img.ReadWord(t.rootPtr)
	if root == 0 {
		if t.size != 0 {
			return fmt.Errorf("empty tree but %d keys inserted", t.size)
		}
		return nil
	}
	if read(root, rbColor) != rbBlack {
		return fmt.Errorf("root is red")
	}
	if read(root, rbParent) != 0 {
		return fmt.Errorf("root has parent %#x", read(root, rbParent))
	}
	count := 0
	var walk func(n uint64, lo, hi uint64) (blackHeight int, err error)
	walk = func(n uint64, lo, hi uint64) (int, error) {
		if n == 0 {
			return 1, nil
		}
		count++
		if count > t.size {
			return 0, fmt.Errorf("more reachable nodes than inserted keys (cycle?)")
		}
		k := read(n, rbKey)
		if k <= lo || (hi != 0 && k >= hi) {
			return 0, fmt.Errorf("node %#x key %d violates BST bounds (%d,%d)", n, k, lo, hi)
		}
		l, r := read(n, rbLeft), read(n, rbRight)
		if read(n, rbColor) == rbRed {
			if l != 0 && read(l, rbColor) == rbRed || r != 0 && read(r, rbColor) == rbRed {
				return 0, fmt.Errorf("red node %#x (key %d) has red child", n, k)
			}
		}
		for _, c := range []uint64{l, r} {
			if c != 0 && read(c, rbParent) != n {
				return 0, fmt.Errorf("node %#x child %#x has wrong parent", n, c)
			}
		}
		bl, err := walk(l, lo, k)
		if err != nil {
			return 0, err
		}
		br, err := walk(r, k, hi)
		if err != nil {
			return 0, err
		}
		if bl != br {
			return 0, fmt.Errorf("node %#x (key %d): black heights %d != %d", n, k, bl, br)
		}
		if read(n, rbColor) == rbBlack {
			bl++
		}
		return bl, nil
	}
	if _, err := walk(root, 0, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("reachable nodes = %d, inserted keys = %d", count, t.size)
	}
	return nil
}

func (t *rbtree) describe() Meta {
	return Meta{RootPtr: t.rootPtr}
}
