package workload

import (
	"reflect"
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/trace"
)

func testParams(seed uint64, initial, ops int) Params {
	return Params{
		Seed:             seed,
		InitialSize:      initial,
		Ops:              ops,
		SearchesPerOp:    1,
		PersistentRegion: memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 26},
		VolatileRegion:   memaddr.Range{Base: memaddr.DRAMBase, Size: 1 << 22},
	}
}

func TestBenchmarkNamesRoundTrip(t *testing.T) {
	for _, b := range All {
		got, err := ParseBenchmark(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBenchmark(%q) = %v, %v", b.String(), got, err)
		}
		if b.Description() == "unknown" {
			t.Errorf("%v has no description", b)
		}
	}
	if _, err := ParseBenchmark("nope"); err == nil {
		t.Error("ParseBenchmark accepted unknown name")
	}
}

func TestGenerateAllBenchmarks(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			out, err := Generate(b, testParams(1, 200, 300))
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if err := trace.Validate(out.Trace); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			s := trace.Summarize(out.Trace)
			if s.Transactions != 300 {
				t.Errorf("transactions = %d, want 300 (one per op)", s.Transactions)
			}
			if s.PersistentStores == 0 {
				t.Error("no persistent stores recorded")
			}
			if len(out.Recorder.Committed()) != 300 {
				t.Errorf("oracle has %d txs, want 300", len(out.Recorder.Committed()))
			}
			if s.Instructions == 0 || s.Loads == 0 {
				t.Error("empty instruction/load stream")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, b := range All {
		a1, err := Generate(b, testParams(7, 100, 150))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		a2, err := Generate(b, testParams(7, 100, 150))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if a1.Trace.Len() != a2.Trace.Len() {
			t.Fatalf("%v: trace lengths differ: %d vs %d", b, a1.Trace.Len(), a2.Trace.Len())
		}
		for i := range a1.Trace.Records {
			if a1.Trace.Records[i] != a2.Trace.Records[i] {
				t.Fatalf("%v: record %d differs", b, i)
			}
		}
		if !a1.FinalImage.Equal(a2.FinalImage) {
			t.Fatalf("%v: final images differ", b)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(RBTree, testParams(1, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(RBTree, testParams(2, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() == b.Trace.Len() {
		same := true
		for i := range a.Trace.Records {
			if a.Trace.Records[i] != b.Trace.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestFinalImageMatchesArchitecturalState(t *testing.T) {
	// The base image plus all committed write sets must agree with the
	// final architectural image on every persistent word the oracle
	// touched.
	for _, b := range All {
		out, err := Generate(b, testParams(3, 150, 200))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		arch := out.Recorder.Image()
		bad := 0
		out.FinalImage.ForEach(func(addr, v uint64) {
			if memaddr.IsPersistent(addr) && arch.ReadWord(addr) != v {
				bad++
			}
		})
		if bad != 0 {
			t.Errorf("%v: %d persistent words diverge between oracle and architecture", b, bad)
		}
	}
}

func TestSPSIsMostWriteIntensive(t *testing.T) {
	// §5.2 singles out sps as the highest write intensity; confirm the
	// workload suite preserves that ranking (persistent stores per
	// instruction).
	intensity := func(b Benchmark) float64 {
		out, err := Generate(b, testParams(4, 300, 300))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		s := trace.Summarize(out.Trace)
		return float64(s.PersistentStores) / float64(s.Instructions)
	}
	sps := intensity(SPS)
	for _, b := range []Benchmark{Graph, RBTree, BTree, Hashtable} {
		if in := intensity(b); in >= sps {
			t.Errorf("%v write intensity %.4f >= sps %.4f", b, in, sps)
		}
	}
}

func TestSetupTooSmallFails(t *testing.T) {
	p := testParams(1, 0, 10)
	if _, err := Generate(SPS, p); err == nil {
		t.Error("sps with 0 elements did not fail")
	}
	if _, err := Generate(Graph, p); err == nil {
		t.Error("graph with 0 vertices did not fail")
	}
}

func TestHeapExhaustionSurfacesAsError(t *testing.T) {
	p := testParams(1, 100, 100)
	p.PersistentRegion.Size = 1 << 10 // far too small
	if _, err := Generate(RBTree, p); err == nil {
		t.Error("tiny persistent region did not fail")
	}
}

func TestDefaultParamsDisjointAcrossCores(t *testing.T) {
	const nCores = 4
	var regions []memaddr.Range
	for c := 0; c < nCores; c++ {
		p := DefaultParams(RBTree, c, nCores, 1, 10, 10)
		regions = append(regions, p.PersistentRegion, p.VolatileRegion)
		if p.SearchesPerOp != 1 {
			t.Errorf("core %d: rbtree SearchesPerOp = %d, want 1", c, p.SearchesPerOp)
		}
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].Overlaps(regions[j]) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestTraceHasVolatileTraffic(t *testing.T) {
	out, err := Generate(SPS, testParams(5, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(out.Trace)
	if s.Stores <= s.PersistentStores {
		t.Error("no volatile stores in trace (DRAM path unexercised)")
	}
	if s.Loads <= s.PersistentLoads {
		t.Error("no volatile loads in trace")
	}
}

func TestTraceCompositionCharacteristics(t *testing.T) {
	// Pin the qualitative character of each benchmark's memory stream:
	// these are the properties the evaluation depends on.
	type char struct {
		minStoresPerTx, maxStoresPerTx float64
		minLoadsPerStore               float64
	}
	want := map[Benchmark]char{
		SPS:       {1.9, 2.3, 0.7},  // 2 stores, 2 loads per swap (plus ring traffic)
		Graph:     {0.5, 4.5, 1.0},  // mostly 4-store inserts + updates
		Hashtable: {1.0, 5.0, 1.5},  // insert + chain walk + lookup
		RBTree:    {5.0, 40.0, 1.5}, // rebalancing writes + two descents
		BTree:     {3.0, 40.0, 1.5}, // shifting writes + descents
	}
	for b, w := range want {
		out, err := Generate(b, testParams(6, 400, 400))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		s := trace.Summarize(out.Trace)
		perTx := float64(s.PersistentStores) / float64(s.Transactions)
		if perTx < w.minStoresPerTx || perTx > w.maxStoresPerTx {
			t.Errorf("%v: %.2f persistent stores/tx outside [%.1f, %.1f]",
				b, perTx, w.minStoresPerTx, w.maxStoresPerTx)
		}
		loadsPerStore := float64(s.Loads) / float64(s.Stores)
		if loadsPerStore < w.minLoadsPerStore {
			t.Errorf("%v: loads/store %.2f below %.2f", b, loadsPerStore, w.minLoadsPerStore)
		}
	}
}

func TestDependentLoadTagging(t *testing.T) {
	// Pointer-chasing benchmarks must tag most loads dependent; sps must
	// tag none.
	depFraction := func(b Benchmark) float64 {
		out, err := Generate(b, testParams(8, 300, 300))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		var dep, all int
		for _, r := range out.Trace.Records {
			if r.Kind == trace.KindLoad {
				all++
				if r.Dep {
					dep++
				}
			}
		}
		return float64(dep) / float64(all)
	}
	if f := depFraction(SPS); f != 0 {
		t.Errorf("sps dependent-load fraction = %.2f, want 0", f)
	}
	for _, b := range []Benchmark{RBTree, BTree, Hashtable} {
		if f := depFraction(b); f < 0.5 {
			t.Errorf("%v dependent-load fraction = %.2f, want >= 0.5", b, f)
		}
	}
}

func TestMetaAnchorsPopulated(t *testing.T) {
	for _, b := range All {
		out, err := Generate(b, testParams(2, 200, 100))
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		m := out.Meta
		ok := false
		switch b {
		case SPS:
			ok = m.ArrayBase != 0 && m.ArrayLen > 0
		case Graph:
			ok = m.Heads != 0 && m.Vertices > 0
		case Hashtable:
			ok = m.Buckets != 0 && m.NBuckets > 0
		case RBTree, BTree:
			ok = m.RootPtr != 0
		}
		if !ok || m.MaxElems == 0 {
			t.Errorf("%v meta anchors incomplete: %+v", b, m)
		}
		// The final architectural image must validate against the meta.
		if err := CheckImage(b, m, out.Recorder.Image()); err != nil {
			t.Errorf("%v: final image fails its own validator: %v", b, err)
		}
	}
}

func TestCheckImageDetectsCorruption(t *testing.T) {
	// Corrupting the recovered image must trip the validators.
	out, err := Generate(RBTree, testParams(4, 300, 100))
	if err != nil {
		t.Fatal(err)
	}
	img := out.Recorder.Image().Snapshot()
	root := img.ReadWord(out.Meta.RootPtr)
	// Flip the root's color to red: a red root violates the invariants.
	img.WriteWord(root+rbColor*8, rbRed)
	if err := CheckImage(RBTree, out.Meta, img); err == nil {
		t.Fatal("red root not detected")
	}

	outS, err := Generate(SPS, testParams(4, 300, 100))
	if err != nil {
		t.Fatal(err)
	}
	imgS := outS.Recorder.Image().Snapshot()
	imgS.WriteWord(outS.Meta.ArrayBase, 0) // 0 is outside 1..n
	if err := CheckImage(SPS, outS.Meta, imgS); err == nil {
		t.Fatal("sps corruption not detected")
	}
}

// TestPerCoreStreamStableAcrossWidths pins the seed and carving
// derivation documented on DefaultParams: core c's parameter set — and
// therefore its generated record stream — is a function of (seed, core)
// only, never of the machine width. Growing a 4-core run to 16 or 64
// cores must not perturb the traces of the cores they share.
func TestPerCoreStreamStableAcrossWidths(t *testing.T) {
	for _, b := range []Benchmark{BankShared, RBTree} {
		for _, core := range []int{0, 2, 3} {
			p4 := DefaultParams(b, core, 4, 7, 50, 40)
			for _, n := range []int{16, 64} {
				pn := DefaultParams(b, core, n, 7, 50, 40)
				if p4 != pn {
					t.Fatalf("%v core %d: params differ between 4 and %d cores:\n4:  %+v\n%d: %+v",
						b, core, n, p4, n, pn)
				}
			}
			a, err := Generate(b, p4)
			if err != nil {
				t.Fatalf("%v core %d: %v", b, core, err)
			}
			bOut, err := Generate(b, DefaultParams(b, core, 64, 7, 50, 40))
			if err != nil {
				t.Fatalf("%v core %d (64-wide params): %v", b, core, err)
			}
			if !reflect.DeepEqual(a.Trace.Records, bOut.Trace.Records) {
				t.Fatalf("%v core %d: trace diverges across machine widths (%d vs %d records)",
					b, core, len(a.Trace.Records), len(bOut.Trace.Records))
			}
		}
	}
}
