package workload

// Structural validators over arbitrary NVM images. After a crash and
// recovery, the recovered image must be SOME consistent state of the data
// structure (a committed prefix), so these checks are size-agnostic: they
// verify invariants — ordering, balance, reachability, no cycles — but
// not element counts.

import (
	"fmt"

	"pmemaccel/internal/memimage"
)

// Meta carries the structure's anchor addresses, captured at generation
// time, so a recovered image can be validated without the live workload.
type Meta struct {
	// RootPtr is the persistent root-pointer word (rbtree, btree).
	RootPtr uint64
	// Buckets/NBuckets describe the hashtable's bucket array.
	Buckets  uint64
	NBuckets int
	// Heads/Vertices describe the graph's vertex table.
	Heads    uint64
	Vertices int
	// ArrayBase/ArrayLen describe the sps array.
	ArrayBase uint64
	ArrayLen  int
	// SharedBase/SharedLen describe the cross-core shared account array
	// (BankShared). Zero SharedLen means the workload is core-private.
	SharedBase uint64
	SharedLen  int
	// MaxElems bounds traversals (cycle detection). 64-bit because it is
	// derived from the op count, which reaches billions at paper scale.
	MaxElems int64
}

// CheckImage verifies benchmark b's structural invariants against img.
func CheckImage(b Benchmark, meta Meta, img *memimage.Image) error {
	switch b {
	case SPS:
		return checkSPSImage(meta, img)
	case Graph:
		return checkGraphImage(meta, img)
	case Hashtable:
		return checkHashtableImage(meta, img)
	case RBTree:
		return checkRBTreeImage(meta, img)
	case BTree:
		return checkBTreeImage(meta, img)
	case Bank:
		return checkBankImage(meta, img)
	case BankShared:
		return checkBankSharedImage(meta, img)
	default:
		return fmt.Errorf("workload: no image checker for %v", b)
	}
}

// checkSPSImage: swaps permute, so any committed prefix is exactly the
// multiset {1..n}.
func checkSPSImage(meta Meta, img *memimage.Image) error {
	seen := make(map[uint64]bool, meta.ArrayLen)
	for i := 0; i < meta.ArrayLen; i++ {
		v := img.ReadWord(meta.ArrayBase + uint64(i)*8)
		if v < 1 || v > uint64(meta.ArrayLen) {
			return fmt.Errorf("sps[%d] = %d outside 1..%d", i, v, meta.ArrayLen)
		}
		if seen[v] {
			return fmt.Errorf("sps value %d duplicated", v)
		}
		seen[v] = true
	}
	return nil
}

func checkGraphImage(meta Meta, img *memimage.Image) error {
	var total int64
	for v := 0; v < meta.Vertices; v++ {
		node := img.ReadWord(meta.Heads + uint64(v)*8)
		var steps int64
		for node != 0 {
			to := img.ReadWord(node + geTo*8)
			if to >= uint64(meta.Vertices) {
				return fmt.Errorf("graph vertex %d: edge to %d out of range", v, to)
			}
			node = img.ReadWord(node + geNext*8)
			total++
			if steps++; steps > meta.MaxElems {
				return fmt.Errorf("graph vertex %d: cycle detected", v)
			}
		}
	}
	if total > meta.MaxElems {
		return fmt.Errorf("graph has %d reachable edges, bound %d", total, meta.MaxElems)
	}
	return nil
}

func checkHashtableImage(meta Meta, img *memimage.Image) error {
	seen := make(map[uint64]bool)
	for i := 0; i < meta.NBuckets; i++ {
		node := img.ReadWord(meta.Buckets + uint64(i)*8)
		var steps int64
		for node != 0 {
			key := img.ReadWord(node + htKey*8)
			if key == 0 {
				return fmt.Errorf("hashtable bucket %d: zero key at %#x", i, node)
			}
			if hash(key)%uint64(meta.NBuckets) != uint64(i) {
				return fmt.Errorf("hashtable key %d in wrong bucket %d", key, i)
			}
			if seen[key] {
				return fmt.Errorf("hashtable key %d duplicated", key)
			}
			seen[key] = true
			node = img.ReadWord(node + htNext*8)
			if steps++; steps > meta.MaxElems {
				return fmt.Errorf("hashtable bucket %d: cycle detected", i)
			}
		}
	}
	return nil
}

func checkRBTreeImage(meta Meta, img *memimage.Image) error {
	read := func(n, f uint64) uint64 { return img.ReadWord(n + f*8) }
	root := img.ReadWord(meta.RootPtr)
	if root == 0 {
		return nil
	}
	if read(root, rbColor) != rbBlack {
		return fmt.Errorf("rbtree root is red")
	}
	var count int64
	var walk func(n, lo, hi uint64) (int, error)
	walk = func(n, lo, hi uint64) (int, error) {
		if n == 0 {
			return 1, nil
		}
		if count++; count > meta.MaxElems {
			return 0, fmt.Errorf("rbtree cycle or overgrowth (> %d nodes)", meta.MaxElems)
		}
		k := read(n, rbKey)
		if k <= lo || (hi != 0 && k >= hi) {
			return 0, fmt.Errorf("rbtree node %#x key %d violates BST bounds", n, k)
		}
		l, r := read(n, rbLeft), read(n, rbRight)
		if read(n, rbColor) == rbRed {
			if (l != 0 && read(l, rbColor) == rbRed) || (r != 0 && read(r, rbColor) == rbRed) {
				return 0, fmt.Errorf("rbtree red node %#x has red child", n)
			}
		}
		bl, err := walk(l, lo, k)
		if err != nil {
			return 0, err
		}
		br, err := walk(r, k, hi)
		if err != nil {
			return 0, err
		}
		if bl != br {
			return 0, fmt.Errorf("rbtree black heights differ at %#x", n)
		}
		if read(n, rbColor) == rbBlack {
			bl++
		}
		return bl, nil
	}
	_, err := walk(root, 0, 0)
	return err
}

func checkBTreeImage(meta Meta, img *memimage.Image) error {
	root := img.ReadWord(meta.RootPtr)
	if root == 0 {
		return fmt.Errorf("btree root pointer is nil")
	}
	header := func(n uint64) (int, bool) {
		h := img.ReadWord(n)
		return int(h & 0xffffffff), h&btLeafBit != 0
	}
	leafDepth := -1
	var count int64
	var walk func(n, lo, hi uint64, depth int) error
	walk = func(n, lo, hi uint64, depth int) error {
		c, leaf := header(n)
		if c < 0 || c > btMaxKeys {
			return fmt.Errorf("btree node %#x count %d out of range", n, c)
		}
		if count += int64(c); count > meta.MaxElems {
			return fmt.Errorf("btree cycle or overgrowth")
		}
		var prev uint64
		for i := 0; i < c; i++ {
			k := img.ReadWord(n + uint64(1+i)*8)
			if i > 0 && k <= prev {
				return fmt.Errorf("btree node %#x keys unsorted", n)
			}
			if k < lo || (hi != 0 && k >= hi) {
				return fmt.Errorf("btree node %#x key %d outside [%d,%d)", n, k, lo, hi)
			}
			prev = k
		}
		if leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree leaf depths differ (%d vs %d)", depth, leafDepth)
			}
			return nil
		}
		for i := 0; i <= c; i++ {
			child := img.ReadWord(n + uint64(8+i)*8)
			if child == 0 {
				return fmt.Errorf("btree internal node %#x has nil child %d", n, i)
			}
			clo, chi := lo, hi
			if i > 0 {
				clo = img.ReadWord(n + uint64(1+i-1)*8)
			}
			if i < c {
				chi = img.ReadWord(n + uint64(1+i)*8)
			}
			if err := walk(child, clo, chi, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0, 0, 0)
}
