package workload

import (
	"fmt"

	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// sps is the "swap elements in a persistent array" benchmark — the most
// write-intensive of the suite (two persistent stores per four memory
// references with almost no compute), and therefore the workload that
// stresses the transaction cache hardest (§5.2: only sps ever stalls the
// CPU on a full transaction cache).
type sps struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	base uint64
	n    int
}

func newSPS(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *sps {
	return &sps{rec: rec, heap: hp, rng: rng}
}

func (s *sps) addr(i int) uint64 { return s.base + uint64(i)*8 }

func (s *sps) setup(n int) error {
	if n < 2 {
		return fmt.Errorf("sps needs at least 2 elements, got %d", n)
	}
	s.n = n
	base, err := s.heap.Alloc(n)
	if err != nil {
		return err
	}
	s.base = base
	for i := 0; i < n; i++ {
		s.rec.Store(s.addr(i), uint64(i)+1)
	}
	return nil
}

func (s *sps) op(searches int) error {
	// sps performs no standalone lookups; searches is ignored by design
	// (the paper describes it as pure random swaps).
	i := s.rng.Intn(s.n)
	j := s.rng.Intn(s.n - 1)
	if j >= i {
		j++
	}
	// A swap is two index computations and four memory operations — far
	// less compute per store than any other benchmark, which is what
	// makes sps the suite's write-intensity extreme.
	s.rec.Compute(3)
	s.rec.TxBegin()
	vi := s.rec.Load(s.addr(i))
	vj := s.rec.Load(s.addr(j))
	s.rec.Store(s.addr(i), vj)
	s.rec.Store(s.addr(j), vi)
	s.rec.TxEnd()
	return nil
}

func (s *sps) check() error {
	// Swaps permute the array: the value multiset must still be exactly
	// {1..n}.
	img := s.rec.Image()
	seen := make(map[uint64]bool, s.n)
	for i := 0; i < s.n; i++ {
		v := img.ReadWord(s.addr(i))
		if v < 1 || v > uint64(s.n) {
			return fmt.Errorf("element %d holds %d, outside 1..%d", i, v, s.n)
		}
		if seen[v] {
			return fmt.Errorf("value %d duplicated", v)
		}
		seen[v] = true
	}
	return nil
}

func (s *sps) describe() Meta {
	return Meta{ArrayBase: s.base, ArrayLen: s.n}
}
