// Package workload implements the five-benchmark suite of Table 3 —
// adjacency-list graph insert, red-black tree search/insert, random array
// swaps (sps), B+tree search/insert, and hashtable search/insert — as real
// data structures operating over the simulated persistent heap.
//
// Every node field access goes through a trace.Recorder, so the emitted
// memory trace has the genuine pointer-chasing, rebalancing and allocation
// behaviour of the benchmark class used by the paper (the NV-heaps-like
// suite). Durable updates are wrapped in Transaction{...} blocks exactly as
// the paper's software interface prescribes; lookups are read-only and
// non-transactional.
package workload

import (
	"fmt"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// Benchmark identifies one of the five workloads.
type Benchmark int

const (
	// Graph inserts edges into an adjacency-list graph.
	Graph Benchmark = iota
	// RBTree searches and inserts nodes in a red-black tree.
	RBTree
	// SPS randomly swaps elements in a persistent array.
	SPS
	// BTree searches and inserts nodes in a B+tree.
	BTree
	// Hashtable searches and inserts key-value pairs in a chained
	// hashtable.
	Hashtable
	// Bank is an extension beyond the paper's suite: OLTP-style
	// transfers across a balance array plus an append-only audit list,
	// with a money-conservation invariant.
	Bank
	// BankShared is the contended variant of Bank: every core keeps its
	// private balance array and audit trail, but a configurable fraction
	// of transactions also update accounts in a shared array that all
	// cores address (memaddr.SharedNVM), so cross-core transactions
	// genuinely collide on cache lines.
	BankShared
)

// All lists the paper's Table 3 benchmarks in presentation order.
var All = []Benchmark{Graph, RBTree, SPS, BTree, Hashtable}

// Extended lists every available benchmark, including the extensions
// beyond the paper's suite.
var Extended = []Benchmark{Graph, RBTree, SPS, BTree, Hashtable, Bank, BankShared}

// String returns the benchmark's name as used in the paper's figures.
func (b Benchmark) String() string {
	switch b {
	case Graph:
		return "graph"
	case RBTree:
		return "rbtree"
	case SPS:
		return "sps"
	case BTree:
		return "btree"
	case Hashtable:
		return "hashtable"
	case Bank:
		return "bank"
	case BankShared:
		return "bankshared"
	default:
		return fmt.Sprintf("benchmark(%d)", int(b))
	}
}

// Description returns the Table 3 description.
func (b Benchmark) Description() string {
	switch b {
	case Graph:
		return "Insert in an adjacency list graph."
	case RBTree:
		return "Search/Insert nodes in a red-black tree."
	case SPS:
		return "Randomly swap elements in an array."
	case BTree:
		return "Search/Insert nodes in a B+tree."
	case Hashtable:
		return "Search/Insert a key-value pair in a hashtable."
	case Bank:
		return "Transfer between accounts with an audit trail (extension)."
	case BankShared:
		return "Bank with cross-core transfers into a shared account array (extension)."
	default:
		return "unknown"
	}
}

// ParseBenchmark maps a name (as printed by String) to a Benchmark.
func ParseBenchmark(name string) (Benchmark, error) {
	for _, b := range Extended {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Instruction-cost constants: the compute work surrounding each memory
// access, standing in for the address arithmetic, compares, branches and
// allocator bookkeeping of the real binaries. The resulting dynamic
// instruction mix is roughly one memory access per 3–5 instructions,
// matching the pointer-heavy benchmark class.
const (
	// CostOpSetup is per-operation driver overhead (argument marshaling,
	// RNG advance).
	CostOpSetup = 6
	// CostNodeVisit is per-node traversal work (compare + branch +
	// address arithmetic).
	CostNodeVisit = 3
	// CostAlloc is the persistent allocator's bookkeeping per
	// allocation.
	CostAlloc = 16
	// CostHash is the hash-function work per hashtable operation.
	CostHash = 8
)

// BytesPerElement estimates the persistent-heap footprint per
// prepopulated element, used to size working sets relative to the LLC.
func BytesPerElement(b Benchmark) int {
	switch b {
	case SPS:
		return 8 // one word per array element
	case RBTree:
		return rbNodeWords * 8
	case BTree:
		// ~4.5 keys per 128-byte leaf plus ~15% internal-node
		// overhead.
		return 33
	case Hashtable:
		return htNodeWords*8 + 4 // node plus amortized half-bucket
	case Graph:
		return 8 + graphEdgeWords*8 // head pointer plus one edge
	case Bank, BankShared:
		return 8 + bankAuditWords*8 // balance word plus ~one audit record
	default:
		return 8
	}
}

// SizeForFootprint returns the InitialSize that gives the benchmark
// roughly the requested persistent footprint in bytes.
func SizeForFootprint(b Benchmark, bytes int) int {
	n := bytes / BytesPerElement(b)
	if n < 16 {
		n = 16
	}
	return n
}

// Params configures one core's workload generation.
type Params struct {
	// Seed drives all randomness for this core's stream.
	Seed uint64
	// Core is this stream's core index; BankShared tags its shared-array
	// store values with it so the durable image attributes every word to
	// a writer.
	Core int
	// InitialSize is the number of elements prepopulated (untraced)
	// before the measured window: array length for sps, vertex count
	// for graph, element count for the index structures.
	InitialSize int
	// Ops is the number of measured operations (each operation commits
	// exactly one durable transaction).
	Ops int
	// SearchesPerOp is the number of read-only lookups performed before
	// each insert/swap transaction (0 for graph and sps, which the
	// paper describes as insert/swap-only).
	SearchesPerOp int
	// PersistentRegion and VolatileRegion are this core's disjoint
	// address carvings.
	PersistentRegion memaddr.Range
	VolatileRegion   memaddr.Range
	// SharedAccounts sizes the cross-core shared balance array
	// (BankShared only; 0 selects DefaultSharedAccounts). The array
	// lives at memaddr.SharedNVM.Base on every core.
	SharedAccounts int
	// ContentionPct is the fraction of BankShared transactions
	// (0..1) that transfer between shared accounts instead of the
	// core's private ones.
	ContentionPct float64
}

// DefaultSharedAccounts is the shared-array length used when
// Params.SharedAccounts is zero. Small on purpose: 64 accounts across
// up to 64 cores makes line collisions routine rather than incidental.
const DefaultSharedAccounts = 64

// DefaultContentionPct is the shared-transfer fraction used when
// Params.ContentionPct is zero on a BankShared workload.
const DefaultContentionPct = 0.5

// DefaultParams returns a parameter set sized for the given benchmark,
// using fixed per-core region carvings for core.
//
// Seed derivation: core c's stream seed is seed*1000003 + c — a fixed
// function of (seed, core) only. Together with the fixed-offset address
// carvings (memaddr.PerCoreNVM/PerCoreDRAM, which never divide by the
// machine width), this makes core c's generated record stream invariant
// under the core count: the trace core 2 replays on a 4-core machine is
// byte-identical to the one it replays on a 16- or 64-core machine.
// nCores is retained for interface stability and bounds-checking only.
func DefaultParams(b Benchmark, core, nCores int, seed uint64, initialSize, ops int) Params {
	if core < 0 || core >= nCores {
		panic(fmt.Sprintf("workload: core %d outside [0, %d)", core, nCores))
	}
	p := Params{
		Seed:             seed*1000003 + uint64(core),
		Core:             core,
		InitialSize:      initialSize,
		Ops:              ops,
		PersistentRegion: memaddr.PerCoreNVM(core),
		VolatileRegion:   memaddr.PerCoreDRAM(core),
	}
	switch b {
	case RBTree, BTree, Hashtable, Bank, BankShared:
		p.SearchesPerOp = 1
	}
	if b == BankShared {
		p.SharedAccounts = DefaultSharedAccounts
		p.ContentionPct = DefaultContentionPct
	}
	return p
}

// Output is the product of generating one core's workload: the trace the
// timing model replays, the oracle of committed transactions, and the
// durable base image (the NVM content assumed durable before cycle 0).
type Output struct {
	Benchmark Benchmark
	Params    Params
	// Trace is the materialized record sequence (nil in streaming mode).
	Trace    *trace.Trace
	Recorder *trace.Recorder
	// Stream is the lazy record producer (nil in materialized mode): the
	// measured window's op() loop runs behind a bounded per-op buffer as
	// the core pulls records, so memory stays O(structure footprint)
	// instead of O(run length).
	Stream *trace.Generator
	// Meta anchors the structure for post-crash image validation.
	Meta Meta
	// BaseImage is the post-warmup architectural image: the durable NVM
	// state at the start of the measured window.
	BaseImage *memimage.Image
	// FinalImage is BaseImage plus every committed transaction — what
	// NVM must contain once all persistence traffic drains. In streaming
	// mode it fills incrementally and is complete only once Stream is
	// exhausted.
	FinalImage *memimage.Image
}

// NewReader returns the trace source the core model consumes: the
// generator in streaming mode, a slice reader otherwise.
func (o *Output) NewReader() trace.Reader {
	if o.Stream != nil {
		return o.Stream
	}
	return trace.NewReader(o.Trace)
}

// StreamErr surfaces a streaming generation failure (a workload error,
// invariant violation or malformed record mid-run). The core model sees
// a failed stream as merely exhausted, so drivers must check this after
// the run. Always nil in materialized mode — Generate validates eagerly.
func (o *Output) StreamErr() error {
	if o.Stream != nil {
		return o.Stream.Err()
	}
	return nil
}

// bench is the internal contract each data structure implements.
type bench interface {
	// setup prepopulates the structure with n elements (called with the
	// recorder quiet).
	setup(n int) error
	// op runs one measured operation; searches read-only lookups
	// precede the single durable transaction.
	op(searches int) error
	// check verifies structural invariants by reading the program image
	// directly (no trace pollution); returns a descriptive error.
	check() error
	// describe returns the anchors needed to validate a recovered
	// image.
	describe() Meta
}

// ringWords sizes the volatile scratch ring every benchmark keeps in
// DRAM (per-operation application bookkeeping), so the DRAM path is
// exercised alongside the NVM path.
const ringWords = 1024

// generation is the shared state of one core's workload run: the data
// structure, its recorder, and the volatile scratch ring. Both the
// materialized (Generate) and streaming (NewStream) paths drive it, so
// the two produce identical record sequences by construction.
type generation struct {
	b    Benchmark
	p    Params
	impl bench
	rec  *trace.Recorder
	base *memimage.Image
	ring uint64
}

// build assembles the benchmark, runs the (untraced) warmup and captures
// the post-warmup base image; the measured window has not started yet.
func build(b Benchmark, p Params) (*generation, error) {
	rec := trace.NewRecorder(memimage.New())
	rng := sim.NewRNG(p.Seed)
	hp := pheap.New(p.PersistentRegion)
	hv := pheap.New(p.VolatileRegion)

	var impl bench
	switch b {
	case Graph:
		impl = newGraph(rec, hp, rng)
	case RBTree:
		impl = newRBTree(rec, hp, rng)
	case SPS:
		impl = newSPS(rec, hp, rng)
	case BTree:
		impl = newBTree(rec, hp, rng)
	case Hashtable:
		impl = newHashtable(rec, hp, rng)
	case Bank:
		impl = newBank(rec, hp, rng)
	case BankShared:
		impl = newBankShared(rec, hp, rng, p)
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %d", int(b))
	}

	ring, err := hv.Alloc(ringWords)
	if err != nil {
		return nil, fmt.Errorf("workload %s: volatile ring: %w", b, err)
	}

	rec.SetQuiet(true)
	if err := impl.setup(p.InitialSize); err != nil {
		return nil, fmt.Errorf("workload %s: setup: %w", b, err)
	}
	rec.SetQuiet(false)
	base := rec.Image().Snapshot()
	rec.SetFinalBase(base)
	return &generation{b: b, p: p, impl: impl, rec: rec, base: base, ring: ring}, nil
}

// runOp executes measured operation i: the benchmark op plus the
// volatile ring traffic.
func (g *generation) runOp(i int) error {
	if err := g.impl.op(g.p.SearchesPerOp); err != nil {
		return fmt.Errorf("workload %s: op %d: %w", g.b, i, err)
	}
	g.rec.Store(g.ring+uint64(i%ringWords)*8, uint64(i))
	if i%4 == 3 {
		g.rec.Load(g.ring + uint64((i*7)%ringWords)*8)
	}
	return nil
}

// finish verifies the structure's invariants over the program image once
// the measured window completes.
func (g *generation) finish() error {
	if err := g.impl.check(); err != nil {
		return fmt.Errorf("workload %s: invariant check: %w", g.b, err)
	}
	return nil
}

// output assembles the Output common to both paths.
func (g *generation) output() *Output {
	meta := g.impl.describe()
	meta.MaxElems = 4*(int64(g.p.InitialSize)+int64(g.p.Ops)) + 16
	return &Output{
		Benchmark:  g.b,
		Params:     g.p,
		Recorder:   g.rec,
		Meta:       meta,
		BaseImage:  g.base,
		FinalImage: g.rec.FinalImage(),
	}
}

// Generate builds the data structure, runs the measured window, and
// returns the materialized trace plus oracle. The returned trace always
// passes trace.Validate.
func Generate(b Benchmark, p Params) (*Output, error) {
	g, err := build(b, p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.Ops; i++ {
		if err := g.runOp(i); err != nil {
			return nil, err
		}
	}
	if err := g.finish(); err != nil {
		return nil, err
	}
	if err := trace.Validate(&g.rec.Trace); err != nil {
		return nil, fmt.Errorf("workload %s: invalid trace: %w", b, err)
	}
	out := g.output()
	out.Trace = &g.rec.Trace
	return out, nil
}

// NewStream builds the data structure (warmup included, so BaseImage is
// ready for machine construction) but defers the measured window: the
// returned Output carries a trace.Generator that runs one op per refill
// of its bounded buffer as the consumer pulls records. Records are
// validated as they flow by (the streaming trace.Validate), structural
// invariants are checked at exhaustion, and any failure surfaces through
// Output.StreamErr. The record sequence is byte-identical to Generate's
// for the same parameters; memory stays O(structure footprint) instead
// of O(ops).
func NewStream(b Benchmark, p Params) (*Output, error) {
	g, err := build(b, p)
	if err != nil {
		return nil, err
	}
	// The full per-transaction history is O(ops) memory; streaming runs
	// rely on the incremental final image and counters instead.
	g.rec.SetRetainTxHistory(false)
	var sv trace.StreamValidator
	i := 0
	gen := trace.NewGenerator(func(emit func(trace.Record)) (bool, error) {
		g.rec.SetSink(emit)
		if i >= g.p.Ops {
			if err := g.finish(); err != nil {
				return false, err
			}
			// Every emitted record has already passed the per-record
			// check (the buffer drains before each refill), so only the
			// end-of-stream condition remains.
			if err := sv.Finish(); err != nil {
				return false, fmt.Errorf("workload %s: invalid trace: %w", g.b, err)
			}
			return false, nil
		}
		err := g.runOp(i)
		i++
		return err == nil, err
	})
	gen.SetCheck(func(r trace.Record) error {
		if err := sv.Check(r); err != nil {
			return fmt.Errorf("workload %s: invalid trace: %w", g.b, err)
		}
		return nil
	})
	out := g.output()
	out.Stream = gen
	return out, nil
}
