package workload

import (
	"runtime"
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/trace"
)

// drain pulls the stream dry, returning every record.
func drain(t *testing.T, out *Output) []trace.Record {
	t.Helper()
	rd := out.NewReader()
	var recs []trace.Record
	for {
		rec, ok := rd.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestStreamMatchesGenerateRecords is the workload-level half of the
// byte-identity contract: for every benchmark, NewStream must emit
// exactly the record sequence Generate materializes, and the two oracles
// (final image, instruction and transaction counters, base image, meta)
// must agree.
func TestStreamMatchesGenerateRecords(t *testing.T) {
	for _, b := range Extended {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			p := testParams(3, 150, 250)
			mat, err := Generate(b, p)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			str, err := NewStream(b, p)
			if err != nil {
				t.Fatalf("NewStream: %v", err)
			}
			recs := drain(t, str)
			if err := str.StreamErr(); err != nil {
				t.Fatalf("StreamErr: %v", err)
			}
			if len(recs) != mat.Trace.Len() {
				t.Fatalf("stream produced %d records, materialized %d", len(recs), mat.Trace.Len())
			}
			for i, rec := range recs {
				if rec != mat.Trace.Records[i] {
					t.Fatalf("record %d differs: stream %+v, materialized %+v", i, rec, mat.Trace.Records[i])
				}
			}
			if got, want := str.Recorder.Instructions(), mat.Trace.Instructions(); got != want {
				t.Errorf("streamed instruction counter = %d, want %d", got, want)
			}
			if got, want := str.Recorder.Transactions(), mat.Trace.Transactions(); got != want {
				t.Errorf("streamed transaction counter = %d, want %d", got, want)
			}
			if !str.FinalImage.Equal(mat.FinalImage) {
				t.Error("final images differ between streaming and materialized runs")
			}
			if !str.BaseImage.Equal(mat.BaseImage) {
				t.Error("base images differ between streaming and materialized runs")
			}
			if str.Meta != mat.Meta {
				t.Errorf("meta differs: stream %+v, materialized %+v", str.Meta, mat.Meta)
			}
			// Streaming keeps no per-transaction history, only the counter.
			if n := len(str.Recorder.Committed()); n != 0 {
				t.Errorf("streaming run retained %d tx records, want 0", n)
			}
			if got := str.Recorder.CommittedCount(); got != uint64(p.Ops) {
				t.Errorf("CommittedCount = %d, want %d", got, p.Ops)
			}
		})
	}
}

// heapAllocAfterDrain generates an sps stream of the given length,
// drains it, and reports the live heap afterwards (with the output still
// reachable, so structure state counts and trace state would too, if any
// accumulated).
func heapAllocAfterDrain(t *testing.T, ops int) uint64 {
	t.Helper()
	p := testParams(5, 4096, ops)
	p.SearchesPerOp = 0
	out, err := NewStream(SPS, p)
	if err != nil {
		t.Fatal(err)
	}
	rd := out.NewReader()
	n := 0
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
		n++
	}
	if err := out.StreamErr(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("stream produced no records")
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(out)
	return ms.HeapAlloc
}

// TestStreamMemoryCeiling pins the tentpole's memory claim: growing the
// op count 100x must leave the live heap roughly flat, because nothing
// O(ops) is retained — no materialized trace, no per-transaction
// history. sps is the vehicle since its structure footprint (a
// fixed-size array) is independent of the op count; insert benchmarks
// legitimately grow with ops.
func TestStreamMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-ceiling run is a few seconds")
	}
	small := heapAllocAfterDrain(t, 2_000)
	large := heapAllocAfterDrain(t, 200_000)
	// "Roughly flat": allow slack for allocator noise, but a materialized
	// path would grow by ~100x here (tens of MB), far past 2x.
	if large > 2*small+(8<<20) {
		t.Errorf("HeapAlloc grew from %d to %d across a 100x op increase; streaming must stay O(1) in ops", small, large)
	}
}

// TestStreamErrorSurfaces forces a mid-stream workload failure (heap
// exhaustion during the measured window) and checks the contract: the
// reader just ends, and StreamErr reports the failure.
func TestStreamErrorSurfaces(t *testing.T) {
	p := testParams(1, 16, 1_000_000)
	p.SearchesPerOp = 0
	// Small persistent region: setup fits, but rbtree inserts never free,
	// so the op loop's allocations exhaust it mid-run.
	p.PersistentRegion = memaddr.Range{Base: memaddr.NVMBase, Size: 1 << 14}
	out, err := NewStream(RBTree, p)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	rd := out.NewReader()
	for {
		if _, ok := rd.Next(); !ok {
			break
		}
	}
	if err := out.StreamErr(); err == nil {
		t.Fatal("stream exhausted the heap mid-run but StreamErr is nil")
	}
	// Materialized generation of the same params fails eagerly.
	if _, err := Generate(RBTree, p); err == nil {
		t.Fatal("Generate succeeded on params that exhaust the heap")
	}
}

// TestCalibration sanity-checks InstructionsPerOp: positive, finite, and
// stable for a fixed seed.
func TestCalibration(t *testing.T) {
	p := testParams(1, 200, 0)
	a, err := InstructionsPerOp(SPS, p)
	if err != nil {
		t.Fatalf("InstructionsPerOp: %v", err)
	}
	if a <= 1 {
		t.Errorf("instructions per op = %g, want > 1", a)
	}
	b, err := InstructionsPerOp(SPS, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("calibration not deterministic: %g vs %g", a, b)
	}
}
