package workload

import (
	"fmt"

	"pmemaccel/internal/pheap"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// btree is the B+tree search/insert benchmark. Nodes are 16-word
// persistent blocks:
//
//	word 0      header: count (low 32 bits) | leaf flag (bit 63)
//	words 1..7  keys[0..6]              (max 7 keys per node)
//	words 8..15 leaf:     values[0..6] + next-leaf pointer (word 15)
//	            internal: children[0..7]
//
// Keys within a node stay sorted, so inserts shift keys/values with traced
// loads and stores — the in-node write amplification characteristic of
// B+trees. Splits allocate a sibling, move the upper half, and push a
// separator into the parent (recursively), all inside the operation's one
// durable transaction.
type btree struct {
	rec  *trace.Recorder
	heap *pheap.Heap
	rng  *sim.RNG

	rootPtr  uint64
	size     int
	inserted []uint64
}

const (
	btNodeWords = 16
	btMaxKeys   = 7
	btLeafBit   = uint64(1) << 63
)

func newBTree(rec *trace.Recorder, hp *pheap.Heap, rng *sim.RNG) *btree {
	return &btree{rec: rec, heap: hp, rng: rng}
}

func (t *btree) header(n uint64) (count int, leaf bool) {
	h := t.rec.LoadDep(n)
	return int(h & 0xffffffff), h&btLeafBit != 0
}

func (t *btree) setHeader(n uint64, count int, leaf bool) {
	h := uint64(count)
	if leaf {
		h |= btLeafBit
	}
	t.rec.Store(n, h)
}

func (t *btree) keyAddr(n uint64, i int) uint64  { return n + uint64(1+i)*8 }
func (t *btree) slotAddr(n uint64, i int) uint64 { return n + uint64(8+i)*8 }
func (t *btree) nextLeafAddr(n uint64) uint64    { return n + 15*8 }

func (t *btree) newNode(leaf bool) (uint64, error) {
	n, err := t.heap.Alloc(btNodeWords)
	if err != nil {
		return 0, err
	}
	t.rec.Compute(CostAlloc)
	t.setHeader(n, 0, leaf)
	return n, nil
}

func (t *btree) setup(n int) error {
	rp, err := t.heap.Alloc(1)
	if err != nil {
		return err
	}
	t.rootPtr = rp
	root, err := t.newNode(true)
	if err != nil {
		return err
	}
	t.rec.Store(t.rootPtr, root)
	for i := 0; i < n; i++ {
		if err := t.insert(t.nextKey(), t.rng.Uint64()); err != nil {
			return err
		}
	}
	return nil
}

func (t *btree) nextKey() uint64 {
	return t.rng.Uint64()%1_000_000_007 + 1
}

// search descends to the leaf and scans it, read-only.
func (t *btree) search(key uint64) (value uint64, found bool) {
	n := t.rec.Load(t.rootPtr)
	for {
		count, leaf := t.header(n)
		t.rec.Compute(CostNodeVisit)
		if leaf {
			for i := 0; i < count; i++ {
				if t.rec.LoadDep(t.keyAddr(n, i)) == key {
					return t.rec.LoadDep(t.slotAddr(n, i)), true
				}
			}
			return 0, false
		}
		child := count // rightmost by default
		for i := 0; i < count; i++ {
			if key < t.rec.LoadDep(t.keyAddr(n, i)) {
				child = i
				break
			}
		}
		n = t.rec.LoadDep(t.slotAddr(n, child))
	}
}

// leafShiftIn inserts (key, value) at index pos of a leaf holding count
// entries, shifting the tail right with traced accesses.
func (t *btree) leafShiftIn(n uint64, pos, count int, key, value uint64) {
	for i := count; i > pos; i-- {
		t.rec.Store(t.keyAddr(n, i), t.rec.LoadDep(t.keyAddr(n, i-1)))
		t.rec.Store(t.slotAddr(n, i), t.rec.LoadDep(t.slotAddr(n, i-1)))
	}
	t.rec.Store(t.keyAddr(n, pos), key)
	t.rec.Store(t.slotAddr(n, pos), value)
}

// internalShiftIn inserts separator key at key-index pos of internal node
// n (count keys), placing the new right child at child-slot pos+1.
func (t *btree) internalShiftIn(n uint64, pos, count int, key, child uint64) {
	for i := count; i > pos; i-- {
		t.rec.Store(t.keyAddr(n, i), t.rec.LoadDep(t.keyAddr(n, i-1)))
	}
	for i := count + 1; i > pos+1; i-- {
		t.rec.Store(t.slotAddr(n, i), t.rec.LoadDep(t.slotAddr(n, i-1)))
	}
	t.rec.Store(t.keyAddr(n, pos), key)
	t.rec.Store(t.slotAddr(n, pos+1), child)
}

// insertRec inserts below node n. If n split, it returns the promoted
// separator and the new right sibling. added reports whether a fresh key
// was added (false on duplicate update).
func (t *btree) insertRec(n uint64, key, value uint64) (sep, right uint64, split, added bool, err error) {
	count, leaf := t.header(n)
	t.rec.Compute(CostNodeVisit)

	if leaf {
		pos := count
		for i := 0; i < count; i++ {
			k := t.rec.LoadDep(t.keyAddr(n, i))
			if k == key {
				t.rec.Store(t.slotAddr(n, i), value)
				return 0, 0, false, false, nil
			}
			if key < k {
				pos = i
				break
			}
		}
		if count < btMaxKeys {
			t.leafShiftIn(n, pos, count, key, value)
			t.setHeader(n, count+1, true)
			return 0, 0, false, true, nil
		}
		// Split the leaf: left keeps mid entries, sibling takes the
		// rest, then the pending entry lands in the proper half. The
		// separator is the sibling's first key (B+tree convention:
		// the separator stays in the right leaf).
		sib, err := t.newNode(true)
		if err != nil {
			return 0, 0, false, false, err
		}
		const mid = (btMaxKeys + 1) / 2 // 4
		moved := count - mid            // 3
		for i := 0; i < moved; i++ {
			t.rec.Store(t.keyAddr(sib, i), t.rec.LoadDep(t.keyAddr(n, mid+i)))
			t.rec.Store(t.slotAddr(sib, i), t.rec.LoadDep(t.slotAddr(n, mid+i)))
		}
		t.rec.Store(t.nextLeafAddr(sib), t.rec.LoadDep(t.nextLeafAddr(n)))
		t.rec.Store(t.nextLeafAddr(n), sib)
		if pos <= mid {
			t.leafShiftIn(n, pos, mid, key, value)
			t.setHeader(n, mid+1, true)
			t.setHeader(sib, moved, true)
		} else {
			t.leafShiftIn(sib, pos-mid, moved, key, value)
			t.setHeader(n, mid, true)
			t.setHeader(sib, moved+1, true)
		}
		return t.rec.LoadDep(t.keyAddr(sib, 0)), sib, true, true, nil
	}

	// Internal node: descend.
	c := count
	for i := 0; i < count; i++ {
		if key < t.rec.LoadDep(t.keyAddr(n, i)) {
			c = i
			break
		}
	}
	child := t.rec.LoadDep(t.slotAddr(n, c))
	csep, cright, csplit, added, err := t.insertRec(child, key, value)
	if err != nil || !csplit {
		return 0, 0, false, added, err
	}
	// Insert (csep, cright) at key index c.
	if count < btMaxKeys {
		t.internalShiftIn(n, c, count, csep, cright)
		t.setHeader(n, count+1, false)
		return 0, 0, false, added, nil
	}
	// Split this internal node: promote keys[mid]; left keeps keys
	// [0,mid) and children [0,mid]; the sibling takes keys (mid,count)
	// and children (mid,count].
	sib, err := t.newNode(false)
	if err != nil {
		return 0, 0, false, false, err
	}
	const mid = btMaxKeys / 2 // 3
	promoted := t.rec.LoadDep(t.keyAddr(n, mid))
	for i := 0; i < count-mid-1; i++ {
		t.rec.Store(t.keyAddr(sib, i), t.rec.LoadDep(t.keyAddr(n, mid+1+i)))
	}
	for i := 0; i < count-mid; i++ {
		t.rec.Store(t.slotAddr(sib, i), t.rec.LoadDep(t.slotAddr(n, mid+1+i)))
	}
	if c <= mid {
		t.internalShiftIn(n, c, mid, csep, cright)
		t.setHeader(n, mid+1, false)
		t.setHeader(sib, count-mid-1, false)
	} else {
		t.internalShiftIn(sib, c-mid-1, count-mid-1, csep, cright)
		t.setHeader(n, mid, false)
		t.setHeader(sib, count-mid, false)
	}
	return promoted, sib, true, added, nil
}

// insert adds key->value (update in place on duplicate) in one durable
// transaction.
func (t *btree) insert(key, value uint64) error {
	t.rec.TxBegin()
	defer t.rec.TxEnd()
	root := t.rec.Load(t.rootPtr)
	sep, right, split, added, err := t.insertRec(root, key, value)
	if err != nil {
		return err
	}
	if split {
		newRoot, err := t.newNode(false)
		if err != nil {
			return err
		}
		t.rec.Store(t.keyAddr(newRoot, 0), sep)
		t.rec.Store(t.slotAddr(newRoot, 0), root)
		t.rec.Store(t.slotAddr(newRoot, 1), right)
		t.setHeader(newRoot, 1, false)
		t.rec.Store(t.rootPtr, newRoot)
	}
	if added {
		t.size++
		t.inserted = append(t.inserted, key)
	}
	return nil
}

func (t *btree) op(searches int) error {
	t.rec.Compute(CostOpSetup)
	for s := 0; s < searches && len(t.inserted) > 0; s++ {
		t.search(t.inserted[t.rng.Intn(len(t.inserted))])
	}
	if len(t.inserted) > 0 && t.rng.Intn(8) == 0 {
		return t.insert(t.inserted[t.rng.Intn(len(t.inserted))], t.rng.Uint64())
	}
	return t.insert(t.nextKey(), t.rng.Uint64())
}

// check validates B+tree invariants against the program image: sorted
// keys, header bounds, uniform leaf depth, correct key count, and a
// sorted, complete leaf chain.
func (t *btree) check() error {
	img := t.rec.Image()
	root := img.ReadWord(t.rootPtr)
	if root == 0 {
		return fmt.Errorf("nil root")
	}
	header := func(n uint64) (int, bool) {
		h := img.ReadWord(n)
		return int(h & 0xffffffff), h&btLeafBit != 0
	}
	leafDepth := -1
	count := 0
	var leftmostLeaf uint64
	var walk func(n uint64, lo, hi uint64, depth int) error
	walk = func(n uint64, lo, hi uint64, depth int) error {
		c, leaf := header(n)
		if c < 1 || c > btMaxKeys {
			if !(n == root && leaf && c == 0) { // empty root leaf is legal
				return fmt.Errorf("node %#x count %d out of range", n, c)
			}
		}
		var prev uint64
		for i := 0; i < c; i++ {
			k := img.ReadWord(n + uint64(1+i)*8)
			if i > 0 && k <= prev {
				return fmt.Errorf("node %#x keys not sorted at %d", n, i)
			}
			if k < lo || (hi != 0 && k >= hi) {
				return fmt.Errorf("node %#x key %d outside [%d,%d)", n, k, lo, hi)
			}
			prev = k
		}
		if leaf {
			if leafDepth == -1 {
				leafDepth = depth
				leftmostLeaf = n
			} else if leafDepth != depth {
				return fmt.Errorf("leaf %#x at depth %d, expected %d", n, depth, leafDepth)
			}
			count += c
			return nil
		}
		for i := 0; i <= c; i++ {
			child := img.ReadWord(n + uint64(8+i)*8)
			if child == 0 {
				return fmt.Errorf("node %#x child %d is nil", n, i)
			}
			clo, chi := lo, hi
			if i > 0 {
				clo = img.ReadWord(n + uint64(1+i-1)*8)
			}
			if i < c {
				chi = img.ReadWord(n + uint64(1+i)*8)
			}
			if err := walk(child, clo, chi, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, 0, 0, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("tree holds %d keys, inserted %d distinct", count, t.size)
	}
	chainCount := 0
	var prevKey uint64
	for n := leftmostLeaf; n != 0; n = img.ReadWord(n + 15*8) {
		c, leaf := header(n)
		if !leaf {
			return fmt.Errorf("leaf chain reached internal node %#x", n)
		}
		for i := 0; i < c; i++ {
			k := img.ReadWord(n + uint64(1+i)*8)
			if k <= prevKey {
				return fmt.Errorf("leaf chain not sorted at key %d", k)
			}
			prevKey = k
			chainCount++
		}
		if chainCount > count {
			return fmt.Errorf("leaf chain cycle detected")
		}
	}
	if chainCount != count {
		return fmt.Errorf("leaf chain holds %d keys, tree holds %d", chainCount, count)
	}
	return nil
}

func (t *btree) describe() Meta {
	return Meta{RootPtr: t.rootPtr}
}
