// Package cache implements the processor cache hierarchy: a generic
// set-associative write-back tag array and the three-level (private L1 and
// L2, shared LLC) timing model the cores access memory through.
//
// The hierarchy is deliberately mechanism-agnostic — "leave the cache
// hierarchy operation as it is". The persistence schemes under evaluation
// plug in through a small Hooks struct: the transaction-cache design drops
// persistent LLC evictions and probes its side path on LLC misses; the
// Kiln baseline pins uncommitted lines in the (nonvolatile) LLC; software
// logging and the Optimal baseline leave every hook at its zero value.
package cache

import (
	"fmt"
	"math/bits"

	"pmemaccel/internal/memaddr"
)

// Line is one tag-array entry.
type Line struct {
	// Addr is the line address (tag + index bits). Meaningful only when
	// Valid.
	Addr  uint64
	Valid bool
	Dirty bool
	// Persistent is the P/V flag of §4.3: set by persistent stores so
	// the (unmodified) hierarchy can tell persistent lines apart at
	// eviction.
	Persistent bool
	// TxID is the owning transaction of an uncommitted dirty line
	// (Kiln bookkeeping; zero otherwise).
	TxID uint64
	// Uncommitted marks Kiln lines that may not leave the LLC until
	// their transaction commits.
	Uncommitted bool

	lastUse uint64
}

// SetAssoc is an LRU set-associative tag array. It carries no data values;
// the simulator's functional state lives in memory images.
type SetAssoc struct {
	name  string
	sets  int
	ways  int
	shift uint // log2(sets) for index extraction
	lines []Line
	clock uint64

	// Stats.
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// NewSetAssoc builds a cache of sizeBytes with the given associativity.
// sizeBytes must yield a power-of-two, nonzero set count.
func NewSetAssoc(name string, sizeBytes, ways int) *SetAssoc {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry %d bytes / %d ways", name, sizeBytes, ways))
	}
	sets := sizeBytes / memaddr.LineSize / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d bytes / %d ways gives %d sets (need nonzero power of two)",
			name, sizeBytes, ways, sets))
	}
	return &SetAssoc{
		name:  name,
		sets:  sets,
		ways:  ways,
		shift: uint(bits.TrailingZeros(uint(sets))),
		lines: make([]Line, sets*ways),
	}
}

// Name returns the label given at construction.
func (c *SetAssoc) Name() string { return c.name }

// Sets and Ways report the geometry.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// SizeBytes reports the capacity.
func (c *SetAssoc) SizeBytes() int { return c.sets * c.ways * memaddr.LineSize }

func (c *SetAssoc) setOf(lineAddr uint64) int {
	return int((lineAddr / memaddr.LineSize) & uint64(c.sets-1))
}

func (c *SetAssoc) set(lineAddr uint64) []Line {
	s := c.setOf(lineAddr)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup returns the line holding lineAddr, or nil. When touch is true the
// access updates LRU state and hit/miss counters; probes (touch=false)
// leave both untouched.
func (c *SetAssoc) Lookup(lineAddr uint64, touch bool) *Line {
	set := c.set(lineAddr)
	for i := range set {
		if set[i].Valid && set[i].Addr == lineAddr {
			if touch {
				c.clock++
				set[i].lastUse = c.clock
				c.Hits++
			}
			return &set[i]
		}
	}
	if touch {
		c.Misses++
	}
	return nil
}

// Insert installs lineAddr, evicting if needed. allowVictim (nil = allow
// all) filters which valid lines may be chosen as the LRU victim — the
// Kiln pinning hook. It returns the evicted line (valid only if evicted)
// and the installed line. ok is false when every candidate way is vetoed;
// the line is then NOT installed and the caller must resolve the pressure
// (Kiln's stall-and-drain path).
//
// Inserting an address that is already present is a programming error and
// panics: callers must Lookup first.
func (c *SetAssoc) Insert(lineAddr uint64, allowVictim func(*Line) bool) (evicted Line, installed *Line, ok bool) {
	set := c.set(lineAddr)
	victim := -1
	for i := range set {
		if !set[i].Valid {
			victim = i
			break
		}
		if set[i].Addr == lineAddr {
			panic(fmt.Sprintf("cache %s: double insert of line %#x", c.name, lineAddr))
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i := range set {
			if allowVictim != nil && !allowVictim(&set[i]) {
				continue
			}
			if set[i].lastUse < oldest {
				oldest = set[i].lastUse
				victim = i
			}
		}
		if victim < 0 {
			return Line{}, nil, false
		}
		evicted = set[victim]
		c.Evictions++
		if evicted.Dirty {
			c.DirtyEvictions++
		}
	}
	c.clock++
	set[victim] = Line{Addr: lineAddr, Valid: true, lastUse: c.clock}
	return evicted, &set[victim], true
}

// Invalidate removes lineAddr if present, returning the removed line.
func (c *SetAssoc) Invalidate(lineAddr uint64) (Line, bool) {
	if l := c.Lookup(lineAddr, false); l != nil {
		old := *l
		*l = Line{}
		return old, true
	}
	return Line{}, false
}

// ForEach visits every valid line. The callback may mutate the line but
// must not invalidate it.
func (c *SetAssoc) ForEach(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// ValidCount reports the number of valid lines.
func (c *SetAssoc) ValidCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// MissRate returns Misses / (Hits + Misses), or 0 before any access.
func (c *SetAssoc) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
