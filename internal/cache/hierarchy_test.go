package cache

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/sim"
)

// fakeMemory is a scriptable Memory with fixed latencies.
type fakeMemory struct {
	k        *sim.Kernel
	readLat  uint64
	writeLat uint64
	reads    []uint64
	writes   []uint64
}

func (m *fakeMemory) Read(lineAddr uint64, done func()) {
	m.reads = append(m.reads, lineAddr)
	m.k.Schedule(m.readLat, done)
}

func (m *fakeMemory) Write(lineAddr uint64, apply, onDurable func()) {
	m.writes = append(m.writes, lineAddr)
	m.k.Schedule(m.writeLat, func() {
		if apply != nil {
			apply()
		}
		if onDurable != nil {
			onDurable()
		}
	})
}

func smallConfig() Config {
	return Config{
		L1Size: 1 << 10, L1Ways: 2, L1Latency: 1,
		L2Size: 4 << 10, L2Ways: 4, L2Latency: 9,
		LLCSize: 16 << 10, LLCWays: 4, LLCLatency: 20,
		LLCPortsPerCycle: 1,
	}
}

func newTestHierarchy(t *testing.T, hooks Hooks) (*sim.Kernel, *Hierarchy, *fakeMemory) {
	t.Helper()
	k := sim.NewKernel()
	mem := &fakeMemory{k: k, readLat: 130, writeLat: 152}
	h := New(k, smallConfig(), mem, hooks, 2)
	return k, h, mem
}

func runAccess(t *testing.T, k *sim.Kernel, h *Hierarchy, core int, addr uint64, store bool) uint64 {
	t.Helper()
	start := k.Now()
	var end uint64
	done := false
	h.Access(core, addr, store, memaddr.IsPersistent(addr), 0, false, func() {
		end = k.Now()
		done = true
	})
	if _, ok := k.RunUntil(func() bool { return done }, start+100000); !ok {
		t.Fatal("access did not complete")
	}
	return end - start
}

func TestColdLoadGoesToMemory(t *testing.T) {
	k, h, mem := newTestHierarchy(t, Hooks{})
	lat := runAccess(t, k, h, 0, memaddr.NVMBase, false)
	if len(mem.reads) != 1 {
		t.Fatalf("memory saw %d reads, want 1", len(mem.reads))
	}
	// 1 (L1) + 9 (L2) + queue(>=1) + 20 (LLC) + 130 (mem) ~ 161+.
	if lat < 160 || lat > 175 {
		t.Fatalf("cold load latency %d, want ~161", lat)
	}
}

func TestSecondLoadHitsL1(t *testing.T) {
	k, h, mem := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, false)
	lat := runAccess(t, k, h, 0, memaddr.NVMBase, false)
	if lat != 1 {
		t.Fatalf("warm load latency %d, want 1 (L1 hit)", lat)
	}
	if len(mem.reads) != 1 {
		t.Fatal("warm load went to memory")
	}
}

func TestLoadWithinSameLineHits(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, false)
	if lat := runAccess(t, k, h, 0, memaddr.NVMBase+56, false); lat != 1 {
		t.Fatalf("same-line load latency %d, want 1", lat)
	}
}

func TestStoreMarksLineDirtyAndPersistent(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, true)
	_ = k
	l := h.L1(0).Lookup(memaddr.NVMBase, false)
	if l == nil || !l.Dirty || !l.Persistent {
		t.Fatalf("L1 line after persistent store = %+v", l)
	}
}

func TestVolatileStoreNotPersistent(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.DRAMBase, true)
	_ = k
	l := h.L1(0).Lookup(memaddr.DRAMBase, false)
	if l == nil || !l.Dirty || l.Persistent {
		t.Fatalf("L1 line after volatile store = %+v", l)
	}
}

func TestMergedMissesSingleMemoryRead(t *testing.T) {
	k, h, mem := newTestHierarchy(t, Hooks{})
	doneCount := 0
	for i := 0; i < 3; i++ {
		h.Access(0, memaddr.NVMBase+uint64(i)*8, false, true, 0, false, func() { doneCount++ })
	}
	k.RunUntil(func() bool { return doneCount == 3 }, 100000)
	if doneCount != 3 {
		t.Fatalf("%d/3 merged accesses completed", doneCount)
	}
	if len(mem.reads) != 1 {
		t.Fatalf("memory saw %d reads for one line, want 1 (MSHR merge)", len(mem.reads))
	}
}

func TestEvictionCascadesToMemory(t *testing.T) {
	k, h, mem := newTestHierarchy(t, Hooks{})
	// Dirty many distinct lines mapping beyond total capacity so dirty
	// victims eventually reach memory. Total capacity 21 KB = 336
	// lines; touch 1000 lines.
	done := 0
	for i := 0; i < 1000; i++ {
		h.Access(0, memaddr.DRAMBase+uint64(i)*64, true, false, 0, false, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 1000 && h.Pending() == 0 }, 5_000_000)
	if len(mem.writes) == 0 {
		t.Fatal("no dirty writebacks reached memory")
	}
	if h.Stats().MemWritebacks != uint64(len(mem.writes)) {
		t.Fatalf("stats MemWritebacks %d != memory writes %d", h.Stats().MemWritebacks, len(mem.writes))
	}
}

func TestDropHookDiscardsPersistentEvictions(t *testing.T) {
	k := sim.NewKernel()
	mem := &fakeMemory{k: k, readLat: 130, writeLat: 152}
	hooks := Hooks{
		DropLLCEviction: func(v *Line) bool { return v.Persistent },
	}
	h := New(k, smallConfig(), mem, hooks, 1)
	done := 0
	for i := 0; i < 1000; i++ {
		h.Access(0, memaddr.NVMBase+uint64(i)*64, true, true, 0, false, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 1000 && h.Pending() == 0 }, 5_000_000)
	if len(mem.writes) != 0 {
		t.Fatalf("%d persistent evictions reached memory despite drop hook", len(mem.writes))
	}
	if h.Stats().DroppedEvictions == 0 {
		t.Fatal("no evictions recorded as dropped")
	}
}

func TestSidePathProbeCalledOnPersistentLLCMiss(t *testing.T) {
	k := sim.NewKernel()
	mem := &fakeMemory{k: k, readLat: 130, writeLat: 152}
	probed := []uint64{}
	hooks := Hooks{
		SidePathProbe: func(lineAddr uint64) bool {
			probed = append(probed, lineAddr)
			return true
		},
	}
	h := New(k, smallConfig(), mem, hooks, 1)
	done := false
	h.Access(0, memaddr.NVMBase, false, true, 0, false, func() { done = true })
	k.RunUntil(func() bool { return done }, 100000)
	if len(probed) != 1 || probed[0] != memaddr.NVMBase {
		t.Fatalf("probes = %v, want one at NVMBase", probed)
	}
	s := h.Stats()
	if s.SidePathProbes != 1 || s.SidePathHits != 1 {
		t.Fatalf("probe stats = %d/%d, want 1/1", s.SidePathProbes, s.SidePathHits)
	}

	// Volatile misses never probe.
	done = false
	h.Access(0, memaddr.DRAMBase, false, false, 0, false, func() { done = true })
	k.RunUntil(func() bool { return done }, 100000)
	if len(probed) != 1 {
		t.Fatal("volatile miss probed the side path")
	}
}

func TestFlushCleansAndWritesBack(t *testing.T) {
	k, h, mem := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, true)
	applied := false
	h2 := h // silence linters about shadow
	_ = h2
	flushed := false
	hooksApplied := &applied
	_ = hooksApplied
	h.Flush(0, memaddr.NVMBase, func() { flushed = true })
	k.RunUntil(func() bool { return flushed }, 100000)
	if len(mem.writes) != 1 {
		t.Fatalf("flush produced %d memory writes, want 1", len(mem.writes))
	}
	if l := h.L1(0).Lookup(memaddr.NVMBase, false); l == nil || l.Dirty {
		t.Fatal("line not clean (or lost) after flush")
	}
}

func TestFlushAlwaysWritesEvenWhenClean(t *testing.T) {
	// clwb is modelled as an unconditional line write (its durable
	// effect comes from the live-image apply), so flushing a clean —
	// or still-filling — line still produces exactly one memory write.
	k, h, mem := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, false) // clean line
	var end uint64
	h.Flush(0, memaddr.NVMBase, func() { end = k.Now() })
	k.RunUntil(func() bool { return end != 0 }, 100000)
	if len(mem.writes) != 1 {
		t.Fatalf("clean-line flush produced %d writes, want 1", len(mem.writes))
	}
	if h.Stats().CleanedLines != 0 {
		t.Fatal("clean flush counted a cleaned line")
	}
}

func TestFlushTxMovesDirtyLinesToLLCAndUnpins(t *testing.T) {
	k := sim.NewKernel()
	mem := &fakeMemory{k: k, readLat: 130, writeLat: 152}
	installs := 0
	hooks := Hooks{
		OnLLCDirtyInstall: func(lineAddr uint64) { installs++ },
	}
	h := New(k, smallConfig(), mem, hooks, 1)
	// Store 3 lines under tx 7.
	done := 0
	for i := 0; i < 3; i++ {
		h.Access(0, memaddr.NVMBase+uint64(i)*64, true, true, 7, true, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 3 }, 100000)
	flushed := false
	h.FlushTx(0, 7, func() { flushed = true })
	k.RunUntil(func() bool { return flushed }, 100000)
	if h.Stats().FlushedLines != 3 {
		t.Fatalf("FlushedLines = %d, want 3", h.Stats().FlushedLines)
	}
	if installs != 3 {
		t.Fatalf("OnLLCDirtyInstall ran %d times, want 3", installs)
	}
	dirtyInLLC := 0
	h.LLC().ForEach(func(l *Line) {
		if l.Dirty {
			dirtyInLLC++
			if l.Uncommitted || l.TxID != 0 {
				t.Fatalf("flushed line still pinned: %+v", *l)
			}
		}
	})
	if dirtyInLLC != 3 {
		t.Fatalf("%d dirty lines in LLC, want 3", dirtyInLLC)
	}
	// Private copies are clean now.
	for i := 0; i < 3; i++ {
		if l := h.L1(0).Lookup(memaddr.NVMBase+uint64(i)*64, false); l != nil && l.Dirty {
			t.Fatal("L1 copy still dirty after FlushTx")
		}
	}
}

func TestFlushTxWithNoDirtyLinesCompletes(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	flushed := false
	h.FlushTx(0, 99, func() { flushed = true })
	k.RunUntil(func() bool { return flushed }, 1000)
	if !flushed {
		t.Fatal("empty FlushTx never completed")
	}
}

func TestPinnedLLCBypass(t *testing.T) {
	k := sim.NewKernel()
	mem := &fakeMemory{k: k, readLat: 10, writeLat: 10}
	hooks := Hooks{
		AllowLLCVictim: func(l *Line) bool { return !l.Uncommitted },
	}
	h := New(k, smallConfig(), mem, hooks, 1)
	// Fill one LLC set (4 ways) with pinned lines. LLC sets = 16KB/64/4
	// = 64, so stride 64 lines maps to the same set.
	setStride := uint64(64 * 64)
	done := 0
	for i := 0; i < 4; i++ {
		h.Access(0, memaddr.NVMBase+uint64(i)*setStride, true, true, 5, true, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 4 }, 100000)
	// Push them to the LLC via commit-less eviction: flush tx moves them.
	moved := false
	h.FlushTx(0, 5, func() { moved = true })
	k.RunUntil(func() bool { return moved }, 100000)
	// Re-pin them (FlushTx unpins; set manually for the bypass test).
	h.LLC().ForEach(func(l *Line) { l.Uncommitted = true })
	// A fifth same-set fill must bypass.
	done5 := false
	h.Access(0, memaddr.NVMBase+4*setStride, false, true, 0, false, func() { done5 = true })
	k.RunUntil(func() bool { return done5 }, 100000)
	if h.Stats().LLCBypasses == 0 {
		t.Fatal("full-pinned set did not bypass")
	}
	if h.LLC().Lookup(memaddr.NVMBase+4*setStride, false) != nil {
		t.Fatal("bypassed line installed in LLC")
	}
}

func TestCrossCoreIsolation(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	runAccess(t, k, h, 0, memaddr.NVMBase, true)
	if h.L1(1).Lookup(memaddr.NVMBase, false) != nil {
		t.Fatal("core 1's L1 contains core 0's line")
	}
}

func TestLLCQueueWaitAccumulates(t *testing.T) {
	k, h, _ := newTestHierarchy(t, Hooks{})
	done := 0
	for i := 0; i < 50; i++ {
		h.Access(0, memaddr.NVMBase+uint64(i)*64*8, false, true, 0, false, func() { done++ })
	}
	k.RunUntil(func() bool { return done == 50 }, 1_000_000)
	s := h.Stats()
	if s.LLCQueueServed == 0 {
		t.Fatal("no LLC queue activity recorded")
	}
	if s.LLCQueueWaitSum == 0 {
		t.Fatal("50 simultaneous misses produced zero queue wait")
	}
}

// Property: no dirty data is ever silently lost. After an arbitrary
// access stream, every line that received a store is either (a) dirty
// somewhere in the hierarchy, (b) written back to memory, or (c) was
// explicitly dropped by a drop hook (not installed here).
func TestQuickNoLostDirtyLines(t *testing.T) {
	f := func(ops []struct {
		Line  uint8
		Store bool
		Core  bool
	}) bool {
		k := sim.NewKernel()
		mem := &fakeMemory{k: k, readLat: 30, writeLat: 30}
		h := New(k, smallConfig(), mem, Hooks{}, 2)
		stored := map[uint64]bool{}
		pending := 0
		for _, op := range ops {
			addr := memaddr.DRAMBase + uint64(op.Line)*64
			core := 0
			if op.Core {
				core = 1
			}
			if op.Store {
				stored[addr] = true
			}
			pending++
			h.Access(core, addr, op.Store, false, 0, false, func() { pending-- })
		}
		k.RunUntil(func() bool { return pending == 0 && h.Pending() == 0 }, 10_000_000)
		if pending != 0 {
			return false
		}
		wrote := map[uint64]bool{}
		for _, w := range mem.writes {
			wrote[w] = true
		}
		for addr := range stored {
			if wrote[addr] {
				continue
			}
			dirtySomewhere := false
			for core := 0; core < 2; core++ {
				for _, c := range []*SetAssoc{h.L1(core), h.L2(core)} {
					if l := c.Lookup(addr, false); l != nil && l.Dirty {
						dirtySomewhere = true
					}
				}
			}
			if l := h.LLC().Lookup(addr, false); l != nil && l.Dirty {
				dirtySomewhere = true
			}
			if !dirtySomewhere {
				return false // dirty data vanished
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hierarchy always quiesces — no access stream can wedge
// the LLC queue or leak inflight entries.
func TestQuickHierarchyQuiesces(t *testing.T) {
	f := func(lines []uint16) bool {
		k := sim.NewKernel()
		mem := &fakeMemory{k: k, readLat: 130, writeLat: 152}
		h := New(k, smallConfig(), mem, Hooks{}, 1)
		pending := 0
		for i, ln := range lines {
			addr := memaddr.NVMBase + uint64(ln%512)*64
			pending++
			h.Access(0, addr, i%3 == 0, true, 0, false, func() { pending-- })
		}
		k.RunUntil(func() bool { return pending == 0 && h.Pending() == 0 }, 10_000_000)
		return pending == 0 && h.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
