package cache

import (
	"fmt"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/sim"
)

// Config sizes and times the three-level hierarchy. Latencies are in CPU
// cycles; sizes in bytes (per core for L1/L2, total for the shared LLC).
type Config struct {
	L1Size, L1Ways   int
	L1Latency        uint64
	L2Size, L2Ways   int
	L2Latency        uint64
	LLCSize, LLCWays int
	LLCLatency       uint64
	// LLCPortsPerCycle is how many queued LLC requests (demand misses
	// from L2 and writebacks into the LLC) are accepted per cycle.
	LLCPortsPerCycle int
	// LLCWriteOccupancy is how many cycles a write (writeback install)
	// occupies the LLC port. 1 for SRAM; Kiln's STT-RAM LLC uses a
	// multiple, so commit-flush bursts congest demand misses.
	LLCWriteOccupancy uint64
}

// WithDefaults fills zero fields with the Table 2 configuration (2 GHz:
// L1 0.5 ns, L2 4.5 ns, LLC 10 ns).
func (c Config) WithDefaults() Config {
	if c.L1Size == 0 {
		c.L1Size = 32 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = 4
	}
	if c.L1Latency == 0 {
		c.L1Latency = 1
	}
	if c.L2Size == 0 {
		c.L2Size = 256 << 10
	}
	if c.L2Ways == 0 {
		c.L2Ways = 8
	}
	if c.L2Latency == 0 {
		c.L2Latency = 9
	}
	if c.LLCSize == 0 {
		c.LLCSize = 64 << 20
	}
	if c.LLCWays == 0 {
		c.LLCWays = 16
	}
	if c.LLCLatency == 0 {
		c.LLCLatency = 20
	}
	if c.LLCPortsPerCycle == 0 {
		c.LLCPortsPerCycle = 1
	}
	if c.LLCWriteOccupancy == 0 {
		c.LLCWriteOccupancy = 1
	}
	return c
}

// Memory is the main-memory interface the LLC misses to (implemented by
// memctrl.Backend, which routes each line to its owning channel).
type Memory interface {
	// Read fetches a line; done fires when data returns.
	Read(lineAddr uint64, done func())
	// Write retires a line towards memory. apply runs at durability
	// time (durable-image update), then onDurable (both may be nil).
	Write(lineAddr uint64, apply, onDurable func())
}

// Hooks are the narrow points where persistence mechanisms observe or
// redirect hierarchy behaviour without changing its operation.
// Zero-valued hooks give the unmodified baseline hierarchy.
type Hooks struct {
	// DropLLCEviction, if non-nil, is consulted for every dirty LLC
	// victim; returning true discards the write-back (the transaction
	// cache design drops persistent evictions, §3).
	DropLLCEviction func(victim *Line) bool
	// SidePathProbe, if non-nil, is called for every LLC miss on a
	// persistent line (the LLC "issues miss requests toward not only
	// the NVM but also the transaction cache"). The return value
	// reports whether the side path held newer data (stats; the fill
	// still completes at NVM latency since the side path holds words,
	// not whole lines).
	SidePathProbe func(lineAddr uint64) bool
	// AllowLLCVictim, if non-nil, vetoes eviction candidates (Kiln pins
	// uncommitted transaction lines in the nonvolatile LLC). When every
	// way is vetoed the install is bypassed (counted in Stats).
	AllowLLCVictim func(l *Line) bool
	// BeforeLLCDirtyUpdate runs before a dirty install/update changes
	// an LLC line's flags, letting Kiln write back the old committed
	// version before an uncommitted overwrite.
	BeforeLLCDirtyUpdate func(old Line, newTxID uint64, newUncommitted bool)
	// OnLLCDirtyInstall runs after a line becomes dirty in the LLC
	// (Kiln snapshots the line's value into its nonvolatile-LLC image).
	OnLLCDirtyInstall func(lineAddr uint64)
	// WritebackApply builds the durable-image update closure for a
	// dirty line written back to main memory; nil (or a nil return)
	// means no functional effect (volatile DRAM lines).
	WritebackApply func(lineAddr uint64) func()
}

// Stats aggregates hierarchy-level counters that the per-level tag arrays
// do not track themselves.
type Stats struct {
	DroppedEvictions uint64 // dirty LLC victims discarded by the drop hook
	LLCBypasses      uint64 // installs skipped because every way was pinned
	MemWritebacks    uint64 // dirty lines actually written to main memory
	SidePathProbes   uint64
	SidePathHits     uint64
	LLCQueueWaitSum  uint64
	LLCQueueServed   uint64
	FlushedLines     uint64 // lines moved by FlushTx (Kiln commits)
	CleanedLines     uint64 // lines cleaned by CLWB flushes
	CommitLockStalls uint64 // cycles demand traffic waited on commits
}

// DebugLine, when nonzero, prints every LLC-side event touching that
// line (temporary diagnostic aid). Debug-only: nothing in the repo
// writes it, so concurrent pmemaccel.Run calls (the internal/sweep
// worker pool) only ever read the constant zero. Set it from a
// single-threaded debugging session only — it is deliberately not part
// of Config, and writing it during a parallel sweep is a data race.
var DebugLine uint64

type llcReqKind uint8

const (
	llcRead llcReqKind = iota
	llcWriteback
)

type llcReq struct {
	kind     llcReqKind
	lineAddr uint64
	// read fields
	persistent bool
	// writeback fields
	line Line
	// onDone fires when the request has been processed at the LLC (for
	// writebacks: installed; for reads: unused — the inflight table
	// owns read completion).
	onDone  func()
	enqueue uint64
}

type waiter struct {
	core       int
	store      bool
	persistent bool
	txID       uint64
	uncommit   bool
	done       func()
}

// Hierarchy is the three-level cache model shared by all four mechanisms.
type Hierarchy struct {
	k     *sim.Kernel
	cfg   Config
	mem   Memory
	hooks Hooks

	l1, l2 []*SetAssoc
	llc    *SetAssoc

	queue    []llcReq
	inflight map[uint64][]waiter
	portBusy uint64 // cycle until which the LLC port is occupied
	// commitLocks counts in-progress FlushTx commits. While nonzero,
	// demand reads stall at the LLC and only writebacks (the flush's
	// own traffic) are served — Kiln commits "block subsequent cache
	// and memory requests" (§5.2).
	commitLocks int

	// txWB counts queued/in-flight LLC writebacks per transaction;
	// txWBWait holds the commit continuation waiting for that count to
	// drain (Kiln: a commit may not complete while any of the
	// transaction's evicted lines is still in transit to the LLC).
	txWB     map[uint64]int
	txWBWait map[uint64]func()

	// probe is the observability recorder (nil when disabled).
	probe *obs.Probe

	// hSideHitLat streams the fill latency of LLC misses whose
	// side-path probe hit the transaction cache (nil when metrics are
	// disabled). The side path holds words, not lines, so the fill
	// still completes at memory latency — the histogram quantifies
	// exactly that: what a "TC hit" costs the loading core.
	hSideHitLat *metrics.Histogram

	stats Stats
}

// New builds the hierarchy for nCores cores and registers its LLC
// arbiter with the kernel.
func New(k *sim.Kernel, cfg Config, mem Memory, hooks Hooks, nCores int) *Hierarchy {
	cfg = cfg.WithDefaults()
	h := &Hierarchy{
		k: k, cfg: cfg, mem: mem, hooks: hooks,
		llc:      NewSetAssoc("LLC", cfg.LLCSize, cfg.LLCWays),
		inflight: make(map[uint64][]waiter),
		txWB:     make(map[uint64]int),
		txWBWait: make(map[uint64]func()),
	}
	for c := 0; c < nCores; c++ {
		h.l1 = append(h.l1, NewSetAssoc(fmt.Sprintf("L1-%d", c), cfg.L1Size, cfg.L1Ways))
		h.l2 = append(h.l2, NewSetAssoc(fmt.Sprintf("L2-%d", c), cfg.L2Size, cfg.L2Ways))
	}
	k.Register(h)
	return h
}

// L1, L2 and LLC expose the tag arrays (stats, tests, Kiln walks).
func (h *Hierarchy) L1(core int) *SetAssoc { return h.l1[core] }

// L2 returns core's private second-level cache.
func (h *Hierarchy) L2(core int) *SetAssoc { return h.l2[core] }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *SetAssoc { return h.llc }

// Stats returns a copy of the hierarchy counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Config returns the (defaulted) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// SetProbe attaches the observability recorder (nil disables probing).
func (h *Hierarchy) SetProbe(p *obs.Probe) { h.probe = p }

// SetMetrics attaches the side-probe hit-latency histogram (nil
// disables the observation).
func (h *Hierarchy) SetMetrics(sideHitLat *metrics.Histogram) { h.hSideHitLat = sideHitLat }

// Pending reports outstanding LLC-queue entries plus in-flight memory
// fills, for quiescence checks.
func (h *Hierarchy) Pending() int { return len(h.queue) + len(h.inflight) }

// QueueDepths reports the LLC request queue split by kind: demand reads
// (misses beyond the private levels) and writeback installs. Sampled by
// the observability layer.
func (h *Hierarchy) QueueDepths() (reads, writebacks int) {
	for i := range h.queue {
		if h.queue[i].kind == llcRead {
			reads++
		} else {
			writebacks++
		}
	}
	return reads, writebacks
}

// InflightFills reports lines with an outstanding fill (the MSHR
// population). Sampled by the observability layer.
func (h *Hierarchy) InflightFills() int { return len(h.inflight) }

// Access performs one 64-bit load or store for core. done fires when the
// access completes (data returned for loads; line owned and written in L1
// for stores). txID/uncommitted tag store-touched lines for Kiln; other
// mechanisms pass 0/false.
func (h *Hierarchy) Access(core int, addr uint64, store, persistent bool, txID uint64, uncommitted bool, done func()) {
	lineAddr := memaddr.LineAddr(addr)
	// L1.
	if l := h.l1[core].Lookup(lineAddr, true); l != nil {
		if store {
			h.markStore(l, persistent, txID, uncommitted)
		}
		h.k.Schedule(h.cfg.L1Latency, done)
		return
	}
	// L2 (tag check costs L1 latency first).
	if l := h.l2[core].Lookup(lineAddr, true); l != nil {
		moved := *l
		if store {
			h.markStore(l, persistent, txID, uncommitted)
			moved = *l
		}
		// Promote into L1 (non-inclusive: move, keeping L2 copy is
		// also fine; we keep L2's copy clean and let L1 own dirt).
		l.Dirty = false
		h.installL1(core, moved)
		h.k.Schedule(h.cfg.L1Latency+h.cfg.L2Latency, done)
		return
	}
	// Miss beyond the private levels: merge into an in-flight fill if
	// one exists, else enqueue an LLC request.
	w := waiter{core: core, store: store, persistent: persistent, txID: txID, uncommit: uncommitted, done: done}
	if ws, ok := h.inflight[lineAddr]; ok {
		h.inflight[lineAddr] = append(ws, w)
		return
	}
	h.inflight[lineAddr] = []waiter{w}
	delay := h.cfg.L1Latency + h.cfg.L2Latency
	h.k.Schedule(delay, func() {
		h.queue = append(h.queue, llcReq{
			kind: llcRead, lineAddr: lineAddr, persistent: persistent, enqueue: h.k.Now(),
		})
	})
}

func (h *Hierarchy) markStore(l *Line, persistent bool, txID uint64, uncommitted bool) {
	l.Dirty = true
	if persistent {
		l.Persistent = true
	}
	if txID != 0 {
		l.TxID = txID
		l.Uncommitted = uncommitted
	}
}

// installL1 places a line into core's L1, cascading the victim.
func (h *Hierarchy) installL1(core int, line Line) {
	evicted, installed, _ := h.l1[core].Insert(line.Addr, nil)
	*installed = line
	installed.Valid = true
	if evicted.Valid && evicted.Dirty {
		h.installL2(core, evicted)
	}
}

// installL2 merges an evicted (or filled) line into core's L2, cascading
// dirty victims to the LLC queue.
func (h *Hierarchy) installL2(core int, line Line) {
	if l := h.l2[core].Lookup(line.Addr, false); l != nil {
		h.mergeFlags(l, line)
		return
	}
	evicted, installed, _ := h.l2[core].Insert(line.Addr, nil)
	*installed = line
	installed.Valid = true
	if evicted.Valid && evicted.Dirty {
		h.queueWriteback(evicted, nil)
	}
}

func (h *Hierarchy) mergeFlags(dst *Line, src Line) {
	if src.Dirty {
		dst.Dirty = true
	}
	if src.Persistent {
		dst.Persistent = true
	}
	if src.TxID != 0 {
		dst.TxID = src.TxID
		dst.Uncommitted = src.Uncommitted
	}
}

// queueWriteback enqueues a dirty line for installation into the LLC.
func (h *Hierarchy) queueWriteback(line Line, onDone func()) {
	if DebugLine != 0 && line.Addr == DebugLine {
		fmt.Printf("[%d] queueWriteback line %#x tx=%d uncommit=%v dirty=%v\n",
			h.k.Now(), line.Addr, line.TxID, line.Uncommitted, line.Dirty)
	}
	if line.TxID != 0 {
		h.txWB[line.TxID]++
	}
	h.queue = append(h.queue, llcReq{
		kind: llcWriteback, lineAddr: line.Addr, line: line, onDone: onDone, enqueue: h.k.Now(),
	})
}

// wbLanded retires one in-transit writeback for a transaction, waking a
// waiting commit when the count drains.
func (h *Hierarchy) wbLanded(txID uint64) {
	if txID == 0 {
		return
	}
	h.txWB[txID]--
	if h.txWB[txID] <= 0 {
		delete(h.txWB, txID)
		if wake := h.txWBWait[txID]; wake != nil {
			delete(h.txWBWait, txID)
			wake()
		}
	}
}

// Idle implements sim.Quiescer: with an empty request queue Tick is a
// pure no-op regardless of portBusy or commitLocks (the serve loop never
// iterates, and CommitLockStalls only accrues against queued demand
// reads). Queue entries are only ever appended from ticks and fired
// events, so an empty queue stays empty across a fast-forward. In-flight
// fills complete through kernel events and do not require ticking.
func (h *Hierarchy) Idle() bool { return len(h.queue) == 0 }

// Tick implements sim.Tickable: serve up to LLCPortsPerCycle queued LLC
// requests, honouring write-port occupancy (slow STT-RAM writes keep the
// port busy for several cycles).
func (h *Hierarchy) Tick(now uint64) {
	if now < h.portBusy {
		return
	}
	for n := 0; n < h.cfg.LLCPortsPerCycle && len(h.queue) > 0; n++ {
		idx := 0
		if h.commitLocks > 0 {
			// Commit in progress: only writebacks proceed.
			idx = -1
			for i := range h.queue {
				if h.queue[i].kind == llcWriteback {
					idx = i
					break
				}
			}
			if idx < 0 {
				h.stats.CommitLockStalls++
				return
			}
		}
		req := h.queue[idx]
		h.queue = append(h.queue[:idx], h.queue[idx+1:]...)
		h.stats.LLCQueueServed++
		h.stats.LLCQueueWaitSum += now - req.enqueue
		switch req.kind {
		case llcRead:
			h.serveLLCRead(req)
		case llcWriteback:
			h.serveLLCWriteback(req)
			if h.cfg.LLCWriteOccupancy > 1 {
				h.portBusy = now + h.cfg.LLCWriteOccupancy
				return
			}
		}
	}
}

func (h *Hierarchy) serveLLCRead(req llcReq) {
	if l := h.llc.Lookup(req.lineAddr, true); l != nil {
		line := *l
		h.k.Schedule(h.cfg.LLCLatency, func() { h.completeFill(req.lineAddr, line, false) })
		return
	}
	if req.persistent && h.hooks.SidePathProbe != nil {
		h.stats.SidePathProbes++
		hit := uint64(0)
		if h.hooks.SidePathProbe(req.lineAddr) {
			h.stats.SidePathHits++
			hit = 1
		}
		if h.probe != nil { // guard: this site is per-LLC-miss hot
			h.probe.Instant(obs.KSideProbe, -1, req.lineAddr, h.k.Now(), hit)
		}
		if h.hSideHitLat != nil && hit == 1 {
			// Metrics-enabled side-hit fill: identical timing to the
			// plain path below, plus a latency observation when the
			// data returns.
			start := h.k.Now()
			h.k.Schedule(h.cfg.LLCLatency, func() {
				h.mem.Read(req.lineAddr, func() {
					h.hSideHitLat.Observe(h.k.Now() - start)
					h.completeFill(req.lineAddr, Line{Addr: req.lineAddr, Valid: true}, true)
				})
			})
			return
		}
	}
	h.k.Schedule(h.cfg.LLCLatency, func() {
		h.mem.Read(req.lineAddr, func() {
			h.completeFill(req.lineAddr, Line{Addr: req.lineAddr, Valid: true}, true)
		})
	})
}

// completeFill distributes a returned line to every merged waiter and,
// for memory fills, installs it in the LLC.
func (h *Hierarchy) completeFill(lineAddr uint64, line Line, fromMemory bool) {
	if fromMemory {
		h.insertLLC(line)
	}
	waiters := h.inflight[lineAddr]
	delete(h.inflight, lineAddr)
	for _, w := range waiters {
		filled := Line{Addr: lineAddr, Valid: true, Persistent: line.Persistent}
		if w.store {
			filled.Dirty = true
			if w.persistent {
				filled.Persistent = true
			}
			if w.txID != 0 {
				filled.TxID = w.txID
				filled.Uncommitted = w.uncommit
			}
		}
		// A second waiter for the same line on the same core would
		// re-insert an existing line; merge through L1 lookup first.
		if l := h.l1[w.core].Lookup(lineAddr, false); l != nil {
			h.mergeFlags(l, filled)
		} else {
			h.installL1(w.core, filled)
		}
		if w.done != nil {
			w.done()
		}
	}
}

// serveLLCWriteback installs a dirty line arriving from a private L2 (or
// a Kiln commit flush) into the LLC.
func (h *Hierarchy) serveLLCWriteback(req llcReq) {
	h.k.Schedule(h.cfg.LLCLatency, func() {
		line := req.line
		if DebugLine != 0 && line.Addr == DebugLine {
			ex := h.llc.Lookup(line.Addr, false)
			fmt.Printf("[%d] serveWB line %#x tx=%d uncommit=%v existing=%+v\n",
				h.k.Now(), line.Addr, line.TxID, line.Uncommitted, ex)
		}
		// Probe, not demand lookup: writeback installs must not skew
		// the demand miss-rate statistics.
		if l := h.llc.Lookup(line.Addr, false); l != nil {
			if h.hooks.BeforeLLCDirtyUpdate != nil {
				h.hooks.BeforeLLCDirtyUpdate(*l, line.TxID, line.Uncommitted)
				// The hook may have reshaped the set (placeholder
				// installs): re-resolve the line pointer.
				l = h.llc.Lookup(line.Addr, false)
				if l == nil {
					if installed := h.insertLLC(line); installed != nil {
						if h.hooks.OnLLCDirtyInstall != nil {
							h.hooks.OnLLCDirtyInstall(line.Addr)
						}
					} else {
						h.writebackToMemory(line)
					}
					h.wbLanded(line.TxID)
					if req.onDone != nil {
						req.onDone()
					}
					return
				}
			}
			h.mergeFlags(l, line)
			l.Uncommitted = line.Uncommitted
			l.TxID = line.TxID
			if h.hooks.OnLLCDirtyInstall != nil {
				h.hooks.OnLLCDirtyInstall(line.Addr)
			}
		} else if installed := h.insertLLC(line); installed != nil {
			if h.hooks.OnLLCDirtyInstall != nil {
				h.hooks.OnLLCDirtyInstall(line.Addr)
			}
		} else {
			// Bypass under total pinning pressure: retire straight
			// to memory (counted; recovery strictness is checked by
			// the crash tests).
			h.writebackToMemory(line)
		}
		h.wbLanded(line.TxID)
		if req.onDone != nil {
			req.onDone()
		}
	})
}

// insertLLC installs a line, handling victim policy and eviction routing.
// It returns the installed line, or nil when the install was bypassed.
// A line already present (a writeback install racing a demand fill within
// the LLC latency window) is merged in place.
func (h *Hierarchy) insertLLC(line Line) *Line {
	if l := h.llc.Lookup(line.Addr, false); l != nil {
		h.mergeFlags(l, line)
		return l
	}
	evicted, installed, ok := h.llc.Insert(line.Addr, h.hooks.AllowLLCVictim)
	if !ok {
		h.stats.LLCBypasses++
		return nil
	}
	*installed = line
	installed.Valid = true
	if evicted.Valid && evicted.Dirty {
		if h.hooks.DropLLCEviction != nil && h.hooks.DropLLCEviction(&evicted) {
			h.stats.DroppedEvictions++
			h.probe.Instant(obs.KLLCPDrop, -1, evicted.Addr, h.k.Now(), 0)
		} else {
			h.writebackToMemory(evicted)
		}
	}
	return installed
}

// InstallPlaceholder installs a clean line at a synthetic address —
// capacity pressure from mechanisms that keep multiple versions of a line
// in the LLC (Kiln retains the old committed version beside the new
// uncommitted one). Victims are handled through the normal eviction path,
// except that the protected address (the live sibling version) is never
// chosen; the placeholder itself ages out by LRU.
func (h *Hierarchy) InstallPlaceholder(lineAddr, protect uint64) {
	if h.llc.Lookup(lineAddr, false) != nil {
		return
	}
	allow := func(l *Line) bool {
		if l.Addr == protect {
			return false
		}
		return h.hooks.AllowLLCVictim == nil || h.hooks.AllowLLCVictim(l)
	}
	evicted, installed, ok := h.llc.Insert(lineAddr, allow)
	if !ok {
		h.stats.LLCBypasses++
		return
	}
	installed.Valid = true
	if evicted.Valid && evicted.Dirty {
		if h.hooks.DropLLCEviction != nil && h.hooks.DropLLCEviction(&evicted) {
			h.stats.DroppedEvictions++
			h.probe.Instant(obs.KLLCPDrop, -1, evicted.Addr, h.k.Now(), 0)
		} else {
			h.writebackToMemory(evicted)
		}
	}
}

func (h *Hierarchy) writebackToMemory(line Line) {
	h.stats.MemWritebacks++
	var apply func()
	if h.hooks.WritebackApply != nil {
		apply = h.hooks.WritebackApply(line.Addr)
	}
	h.mem.Write(line.Addr, apply, nil)
}

// Flush implements clwb for core: cached copies of the line containing
// addr are cleaned and the line's current (live-image) contents are
// written towards memory; done fires when the write is durable. The write
// is unconditional — clwb is posted through the memory pipeline, and its
// functional effect comes from the durable-image apply, so it is safe
// even if the covered store's fill is still in flight.
func (h *Hierarchy) Flush(core int, addr uint64, done func()) {
	h.flushLine(core, addr, false, done)
}

// FlushInv implements clflush: like Flush, but the line is also
// invalidated everywhere, so the next access misses.
func (h *Hierarchy) FlushInv(core int, addr uint64, done func()) {
	h.flushLine(core, addr, true, done)
}

func (h *Hierarchy) flushLine(core int, addr uint64, invalidate bool, done func()) {
	lineAddr := memaddr.LineAddr(addr)
	for _, c := range []*SetAssoc{h.l1[core], h.l2[core], h.llc} {
		if l := c.Lookup(lineAddr, false); l != nil {
			if l.Dirty {
				l.Dirty = false
				h.stats.CleanedLines++
			}
			if invalidate {
				c.Invalidate(lineAddr)
			}
		}
	}
	h.stats.MemWritebacks++
	var apply func()
	if h.hooks.WritebackApply != nil {
		apply = h.hooks.WritebackApply(lineAddr)
	}
	h.k.Schedule(h.cfg.L1Latency, func() {
		h.mem.Write(lineAddr, apply, done)
	})
}

// FlushTx moves every dirty line of txID out of core's private caches
// into the LLC (Kiln's commit flush) and, once all are installed, clears
// the Uncommitted pin on the transaction's LLC lines. done fires at that
// point.
func (h *Hierarchy) FlushTx(core int, txID uint64, done func()) {
	// Flushed lines remain tagged uncommitted while in transit; the
	// commit becomes visible atomically in the unpin walk below, so a
	// crash mid-flush never exposes a partially committed transaction.
	var lines []Line
	for _, c := range []*SetAssoc{h.l1[core], h.l2[core]} {
		c.ForEach(func(l *Line) {
			if DebugLine != 0 && l.Addr == DebugLine {
				fmt.Printf("[%d] FlushTx(%d) sees %s line %#x dirty=%v tx=%d\n",
					h.k.Now(), txID, c.Name(), l.Addr, l.Dirty, l.TxID)
			}
			if l.Dirty && l.TxID == txID {
				lines = append(lines, Line{
					Addr: l.Addr, Valid: true, Dirty: true,
					Persistent: l.Persistent, TxID: txID, Uncommitted: true,
				})
				l.Dirty = false
				l.TxID = 0
				l.Uncommitted = false
			}
		})
	}
	h.stats.FlushedLines += uint64(len(lines))
	h.commitLocks++
	flushStart := h.k.Now()
	nLines := uint64(len(lines))
	finish := func() {
		h.probe.Span(obs.KTxFlush, core, txID, flushStart, h.k.Now(), nLines)
		h.commitLocks--
		h.llc.ForEach(func(l *Line) {
			if l.TxID == txID {
				if DebugLine != 0 && l.Addr == DebugLine {
					fmt.Printf("[%d] unpin line %#x tx=%d\n", h.k.Now(), l.Addr, txID)
				}
				l.Uncommitted = false
				l.TxID = 0
			}
		})
		done()
	}
	for _, line := range lines {
		h.queueWriteback(line, nil)
	}
	// The commit completes when every writeback of this transaction has
	// landed in the LLC — both the flush's own lines and any mid-
	// transaction evictions still in transit.
	if h.txWB[txID] == 0 {
		h.k.Schedule(1, finish)
		return
	}
	if h.txWBWait[txID] != nil {
		panic("cache: concurrent FlushTx for one transaction")
	}
	h.txWBWait[txID] = finish
}
