package cache

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
)

func lineN(i int) uint64 { return memaddr.NVMBase + uint64(i)*memaddr.LineSize }

func TestGeometry(t *testing.T) {
	c := NewSetAssoc("t", 32<<10, 4)
	if c.Sets() != 128 || c.Ways() != 4 || c.SizeBytes() != 32<<10 {
		t.Fatalf("geometry = %d sets x %d ways", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range []struct{ size, ways int }{{0, 4}, {100, 4}, {64, 0}, {6 * 64, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d,%d) did not panic", g.size, g.ways)
				}
			}()
			NewSetAssoc("bad", g.size, g.ways)
		}()
	}
}

func TestLookupMissThenInsertThenHit(t *testing.T) {
	c := NewSetAssoc("t", 4<<10, 4)
	if c.Lookup(lineN(1), true) != nil {
		t.Fatal("hit in empty cache")
	}
	if _, l, ok := c.Insert(lineN(1), nil); !ok || l == nil {
		t.Fatal("insert failed")
	}
	if c.Lookup(lineN(1), true) == nil {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestProbeDoesNotCountOrTouch(t *testing.T) {
	c := NewSetAssoc("t", 4<<10, 4)
	c.Insert(lineN(1), nil)
	c.Lookup(lineN(1), false)
	c.Lookup(lineN(99), false)
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("probe counted: hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set via size=ways*64.
	c := NewSetAssoc("t", 4*64, 4)
	for i := 0; i < 4; i++ {
		c.Insert(lineN(i), nil)
	}
	// Touch 0 so 1 becomes LRU.
	c.Lookup(lineN(0), true)
	evicted, _, ok := c.Insert(lineN(10), nil)
	if !ok || !evicted.Valid || evicted.Addr != lineN(1) {
		t.Fatalf("evicted %#x, want %#x (LRU)", evicted.Addr, lineN(1))
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	c := NewSetAssoc("t", 4<<10, 4)
	c.Insert(lineN(1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(lineN(1), nil)
}

func TestVictimFilterPinsLines(t *testing.T) {
	c := NewSetAssoc("t", 4*64, 4)
	for i := 0; i < 4; i++ {
		_, l, _ := c.Insert(lineN(i), nil)
		l.Uncommitted = i != 2 // pin all but line 2
	}
	allow := func(l *Line) bool { return !l.Uncommitted }
	evicted, _, ok := c.Insert(lineN(10), allow)
	if !ok || evicted.Addr != lineN(2) {
		t.Fatalf("evicted %#x, want unpinned line %#x", evicted.Addr, lineN(2))
	}
}

func TestVictimFilterAllPinnedFailsInsert(t *testing.T) {
	c := NewSetAssoc("t", 4*64, 4)
	for i := 0; i < 4; i++ {
		_, l, _ := c.Insert(lineN(i), nil)
		l.Uncommitted = true
	}
	before := c.ValidCount()
	_, _, ok := c.Insert(lineN(10), func(l *Line) bool { return !l.Uncommitted })
	if ok {
		t.Fatal("insert succeeded with every way pinned")
	}
	if c.ValidCount() != before {
		t.Fatal("failed insert changed occupancy")
	}
	if c.Lookup(lineN(10), false) != nil {
		t.Fatal("bypassed line present in cache")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewSetAssoc("t", 4<<10, 4)
	_, l, _ := c.Insert(lineN(5), nil)
	l.Dirty = true
	old, ok := c.Invalidate(lineN(5))
	if !ok || !old.Dirty {
		t.Fatal("Invalidate lost line state")
	}
	if c.Lookup(lineN(5), false) != nil {
		t.Fatal("line present after Invalidate")
	}
	if _, ok := c.Invalidate(lineN(5)); ok {
		t.Fatal("second Invalidate reported success")
	}
}

func TestDirtyEvictionCounting(t *testing.T) {
	c := NewSetAssoc("t", 2*64, 2)
	_, l, _ := c.Insert(lineN(0), nil)
	l.Dirty = true
	c.Insert(lineN(1), nil)
	c.Insert(lineN(2), nil) // evicts line 0 (dirty)
	if c.Evictions != 1 || c.DirtyEvictions != 1 {
		t.Fatalf("evictions = %d/%d dirty, want 1/1", c.Evictions, c.DirtyEvictions)
	}
}

func TestForEachAndValidCount(t *testing.T) {
	c := NewSetAssoc("t", 8<<10, 4)
	for i := 0; i < 10; i++ {
		c.Insert(lineN(i), nil)
	}
	if c.ValidCount() != 10 {
		t.Fatalf("ValidCount = %d, want 10", c.ValidCount())
	}
	n := 0
	c.ForEach(func(l *Line) { n++ })
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
}

func TestMissRate(t *testing.T) {
	c := NewSetAssoc("t", 4<<10, 4)
	if c.MissRate() != 0 {
		t.Fatal("fresh cache has nonzero miss rate")
	}
	c.Lookup(lineN(0), true) // miss
	c.Insert(lineN(0), nil)
	c.Lookup(lineN(0), true) // hit
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
}

// Property: after any sequence of inserts, every cached line is found by
// Lookup and the cache never exceeds capacity; set mapping is stable.
func TestQuickInsertLookupConsistency(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewSetAssoc("t", 2<<10, 4) // 32 lines
		present := map[uint64]bool{}
		for _, a := range addrs {
			la := lineN(int(a % 256))
			if c.Lookup(la, true) != nil {
				if !present[la] {
					return false // phantom hit
				}
				continue
			}
			evicted, _, ok := c.Insert(la, nil)
			if !ok {
				return false
			}
			if evicted.Valid {
				delete(present, evicted.Addr)
			}
			present[la] = true
			if c.ValidCount() > 32 {
				return false
			}
		}
		for la := range present {
			if c.Lookup(la, false) == nil {
				return false // lost a line we think is present
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
