// Package hwcost reproduces Table 1 — the hardware-overhead summary of
// the persistent memory accelerator — as a function of the configuration,
// following the derivation of §4.4: a 4 KB transaction cache with one
// 64-byte line per entry holds 64 in-flight transactions, so transaction
// ids need ceil(log2(64)) = 6 bits, the per-line additions in the TC data
// array are TxID + a 2-state... (state fits in 2 bits; the paper counts
// 1 bit by folding available into the pointer arithmetic — we report the
// paper's accounting and note the delta) and the only change to the
// existing hierarchy is the 1-bit P/V flag per line.
package hwcost

import (
	"fmt"
	"math/bits"
	"strings"
)

// Config is the subset of the machine that determines hardware cost.
type Config struct {
	Cores        int
	TCBytes      int // per-core transaction cache capacity
	TCEntryBytes int // line size per entry (64)
	LineBytes    int // cache line size in the hierarchy
	L1Bytes      int // per core
	L2Bytes      int // per core
	LLCBytes     int // shared
}

// Row is one Table 1 line.
type Row struct {
	Component string
	Type      string
	Bits      int    // per-instance bits (0 when the size is free-form)
	Size      string // human-readable size expression
}

// TxIDBits returns the transaction-id width: enough to name every
// possible in-flight transaction in one core's TC (§4.4: one line per
// transaction).
func (c Config) TxIDBits() int {
	entries := c.TCBytes / c.TCEntryBytes
	if entries <= 1 {
		return 1
	}
	return bits.Len(uint(entries - 1))
}

// Entries returns the TC data-array entry count per core.
func (c Config) Entries() int { return c.TCBytes / c.TCEntryBytes }

// PointerBits returns head/tail pointer width.
func (c Config) PointerBits() int {
	if c.Entries() <= 1 {
		return 1
	}
	return bits.Len(uint(c.Entries() - 1))
}

// HierarchyLines returns the total line count of the existing hierarchy
// (per-core L1+L2 plus the shared LLC) that must carry the P/V flag.
func (c Config) HierarchyLines() int {
	return (c.L1Bytes+c.L2Bytes)*c.Cores/c.LineBytes + c.LLCBytes/c.LineBytes
}

// Rows produces the Table 1 summary.
func (c Config) Rows() []Row {
	tx := c.TxIDBits()
	return []Row{
		{"CPU TxID/Mode register", "flip-flops", tx, fmt.Sprintf("%d bits", tx)},
		{"CPU Next TxID register", "flip-flops", tx, fmt.Sprintf("%d bits", tx)},
		{"Cache P/V flag", "SRAM", 1, "1 bit/line"},
		{"TxID in TC data array", "STT-RAM", tx, fmt.Sprintf("%d bits/entry", tx)},
		{"State in TC data array", "STT-RAM", 1, "1 bit/entry"},
		{"head/tail pointer", "flip-flops", 2 * c.PointerBits(), fmt.Sprintf("2 x %d bits", c.PointerBits())},
		{"TC data array", "STT-RAM", c.TCBytes * 8, fmt.Sprintf("%d KB/core", c.TCBytes>>10)},
	}
}

// Totals summarizes the aggregate overheads the paper quotes in §4.4.
type Totals struct {
	// PerTCLineBits is the metadata added per TC data-array line
	// (TxID + state).
	PerTCLineBits int
	// PerHierarchyLineBits is the metadata added per existing cache
	// line (P/V).
	PerHierarchyLineBits int
	// HierarchyOverheadBits is the total P/V bits across L1/L2/LLC.
	HierarchyOverheadBits int
	// TCTotalBytes is the added nonvolatile storage across all cores.
	TCTotalBytes int
	// TCvsLLCPercent is the TC storage as a percentage of the LLC.
	TCvsLLCPercent float64
}

// Summarize computes the totals.
func (c Config) Summarize() Totals {
	return Totals{
		PerTCLineBits:         c.TxIDBits() + 1,
		PerHierarchyLineBits:  1,
		HierarchyOverheadBits: c.HierarchyLines(),
		TCTotalBytes:          c.TCBytes * c.Cores,
		TCvsLLCPercent:        float64(c.TCBytes*c.Cores) / float64(c.LLCBytes) * 100,
	}
}

// Render prints the table and totals in the paper's layout.
func (c Config) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Summary of major hardware overhead\n")
	fmt.Fprintf(&b, "%-26s %-12s %s\n", "Component", "Type", "Size")
	for _, r := range c.Rows() {
		fmt.Fprintf(&b, "%-26s %-12s %s\n", r.Component, r.Type, r.Size)
	}
	t := c.Summarize()
	fmt.Fprintf(&b, "\nPer TC line metadata: %d bits (TxID + state)\n", t.PerTCLineBits)
	fmt.Fprintf(&b, "Existing hierarchy:   +%d bit/line (P/V), %d bits total\n",
		t.PerHierarchyLineBits, t.HierarchyOverheadBits)
	fmt.Fprintf(&b, "TC storage:           %d KB across %d cores (%.2f%% of the %d MB LLC)\n",
		t.TCTotalBytes>>10, c.Cores, t.TCvsLLCPercent, c.LLCBytes>>20)
	return b.String()
}
