package hwcost

import (
	"strings"
	"testing"
)

// paperConfig reproduces the §4.4 numbers: 4 KB TC per core, 64 B
// entries, 4 cores, 64 MB LLC.
func paperConfig() Config {
	return Config{
		Cores: 4, TCBytes: 4 << 10, TCEntryBytes: 64, LineBytes: 64,
		L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 64 << 20,
	}
}

func TestPaperTxIDBits(t *testing.T) {
	c := paperConfig()
	// 4*1024/64 = 64 transactions -> 6 bits (§4.4).
	if c.Entries() != 64 {
		t.Fatalf("entries = %d, want 64", c.Entries())
	}
	if c.TxIDBits() != 6 {
		t.Fatalf("TxID bits = %d, want 6", c.TxIDBits())
	}
	if c.PointerBits() != 6 {
		t.Fatalf("pointer bits = %d, want 6", c.PointerBits())
	}
}

func TestPaperTotals(t *testing.T) {
	tot := paperConfig().Summarize()
	// 7 bits per TC line (6-bit TxID + state), 1 bit per existing line,
	// 16 KB of TC across 4 cores — tiny against the 64 MB LLC.
	if tot.PerTCLineBits != 7 {
		t.Fatalf("per-TC-line bits = %d, want 7", tot.PerTCLineBits)
	}
	if tot.PerHierarchyLineBits != 1 {
		t.Fatalf("per-hierarchy-line bits = %d, want 1", tot.PerHierarchyLineBits)
	}
	if tot.TCTotalBytes != 16<<10 {
		t.Fatalf("TC total = %d bytes, want 16 KB", tot.TCTotalBytes)
	}
	if tot.TCvsLLCPercent > 0.03 || tot.TCvsLLCPercent <= 0 {
		t.Fatalf("TC vs LLC = %v%%, want ~0.024%%", tot.TCvsLLCPercent)
	}
}

func TestHierarchyLines(t *testing.T) {
	c := paperConfig()
	// (32K+256K)*4/64 + 64M/64 = 18432 + 1048576.
	want := (32<<10+256<<10)*4/64 + (64<<20)/64
	if got := c.HierarchyLines(); got != want {
		t.Fatalf("hierarchy lines = %d, want %d", got, want)
	}
}

func TestRowsCoverTable1Components(t *testing.T) {
	rows := paperConfig().Rows()
	wantComponents := []string{
		"CPU TxID/Mode register", "CPU Next TxID register", "Cache P/V flag",
		"TxID in TC data array", "State in TC data array", "head/tail pointer",
		"TC data array",
	}
	if len(rows) != len(wantComponents) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantComponents))
	}
	for i, w := range wantComponents {
		if rows[i].Component != w {
			t.Errorf("row %d = %q, want %q", i, rows[i].Component, w)
		}
	}
}

func TestRenderIncludesHeadlineNumbers(t *testing.T) {
	out := paperConfig().Render()
	for _, want := range []string{"Table 1", "6 bits", "1 bit/line", "4 KB/core", "16 KB", "flip-flops", "STT-RAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScalingTCChangesTxIDBits(t *testing.T) {
	c := paperConfig()
	c.TCBytes = 32 << 10 // 512 entries -> 9 bits
	if c.TxIDBits() != 9 {
		t.Fatalf("TxID bits = %d, want 9", c.TxIDBits())
	}
	c.TCBytes = 64 // 1 entry
	if c.TxIDBits() != 1 {
		t.Fatalf("degenerate TxID bits = %d, want 1", c.TxIDBits())
	}
}
