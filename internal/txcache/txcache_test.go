package txcache

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/sim"
)

// fakeNVM is a scriptable Port that can hold acknowledgments.
type fakeNVM struct {
	k      *sim.Kernel
	lat    uint64
	hold   bool
	held   []func()
	writes []uint64
}

func (m *fakeNVM) Write(lineAddr uint64, apply, onDurable func()) {
	m.writes = append(m.writes, lineAddr)
	fire := func() {
		if apply != nil {
			apply()
		}
		if onDurable != nil {
			onDurable()
		}
	}
	if m.hold {
		m.held = append(m.held, fire)
		return
	}
	m.k.Schedule(m.lat, fire)
}

func (m *fakeNVM) release() {
	for _, f := range m.held {
		f()
	}
	m.held = nil
}

func newTC(t *testing.T, entries int) (*sim.Kernel, *TxCache, *fakeNVM, *memimage.Image) {
	t.Helper()
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 152}
	img := memimage.New()
	cfg := Config{SizeBytes: entries * 64, EntryBytes: 64}
	tc := New(k.NewCtx(), cfg, nvm, func(addr, value uint64) { img.WriteWord(addr, value) })
	return k, tc, nvm, img
}

func nvmAddr(i int) uint64 { return memaddr.NVMBase + uint64(i)*8 }

func TestConfigDefaultsMatchTable2(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.SizeBytes != 4<<10 || c.EntryBytes != 64 || c.Latency != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Entries() != 64 {
		t.Fatalf("Entries = %d, want 64 (4KB / 64B, §4.4)", c.Entries())
	}
}

func TestTinyConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-entry TC did not panic")
		}
	}()
	New(sim.NewKernel().NewCtx(), Config{SizeBytes: 64, EntryBytes: 64}, &fakeNVM{}, nil)
}

func TestWriteBuffersWithoutDraining(t *testing.T) {
	k, tc, nvm, _ := newTC(t, 8)
	if r := tc.Write(1, nvmAddr(0), 10); r != Accepted {
		t.Fatalf("Write = %v, want Accepted", r)
	}
	for i := 0; i < 20; i++ {
		k.Step()
	}
	if len(nvm.writes) != 0 {
		t.Fatal("active (uncommitted) entry drained to NVM")
	}
	if tc.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", tc.Occupancy())
	}
}

func TestCommitDrainsFIFOAndAcksFree(t *testing.T) {
	k, tc, nvm, img := newTC(t, 8)
	tc.Write(1, nvmAddr(0), 10)
	tc.Write(1, nvmAddr(1), 11)
	tc.Write(1, nvmAddr(2), 12)
	tc.Commit(1)
	k.RunUntil(func() bool { return tc.Drained() }, 10000)
	if !tc.Drained() {
		t.Fatal("TC did not drain after commit")
	}
	if len(nvm.writes) != 3 {
		t.Fatalf("NVM saw %d writes, want 3", len(nvm.writes))
	}
	// FIFO issue order.
	for i, w := range nvm.writes {
		if w != memaddr.LineAddr(nvmAddr(i)) {
			t.Fatalf("write %d to %#x, want FIFO order", i, w)
		}
	}
	for i, want := range []uint64{10, 11, 12} {
		if got := img.ReadWord(nvmAddr(i)); got != want {
			t.Fatalf("durable word %d = %d, want %d", i, got, want)
		}
	}
	s := tc.Stats()
	if s.Writes != 3 || s.Commits != 1 || s.Issued != 3 || s.Acked != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestActiveEntryBlocksYoungerCommitted(t *testing.T) {
	// FIFO semantics: entries drain strictly in insertion order, so a
	// younger committed transaction cannot pass an older active one.
	// (With one transaction in flight per core this situation needs a
	// manufactured interleave.)
	k, tc, nvm, _ := newTC(t, 8)
	tc.Write(1, nvmAddr(0), 10) // stays active
	tc.Write(2, nvmAddr(1), 20)
	tc.Commit(2)
	for i := 0; i < 400; i++ {
		k.Step()
	}
	if len(nvm.writes) != 0 {
		t.Fatal("younger committed entry drained past an older active entry")
	}
	tc.Commit(1)
	k.RunUntil(func() bool { return tc.Drained() }, 10000)
	if len(nvm.writes) != 2 || nvm.writes[0] != memaddr.LineAddr(nvmAddr(0)) {
		t.Fatalf("drain order %v violates FIFO", nvm.writes)
	}
}

func TestFullRejectsAtCapacity(t *testing.T) {
	_, tc, _, _ := newTC(t, 4)
	// High water = 3 (0.9*4 = 3.6 -> 3). Capacity rejects come first
	// via Fallback at 3; disable fallback to reach Full.
	tc2 := tc
	_ = tc2
	for i := 0; i < 3; i++ {
		if r := tc.Write(1, nvmAddr(i), 1); r != Accepted {
			t.Fatalf("write %d = %v, want Accepted", i, r)
		}
	}
	if r := tc.Write(1, nvmAddr(3), 1); r != Fallback {
		t.Fatalf("write at high water = %v, want Fallback", r)
	}
	if tc.Stats().FallbackWrites != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestFullWhenEveryEntryLive(t *testing.T) {
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 100}
	// HighWaterFrac 1.0 disables the fallback so Full is reachable.
	tc := New(k.NewCtx(), Config{SizeBytes: 4 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm, nil)
	for i := 0; i < 4; i++ {
		if r := tc.Write(1, nvmAddr(i), 1); r != Accepted {
			t.Fatalf("write %d = %v", i, r)
		}
	}
	if r := tc.Write(1, nvmAddr(4), 1); r != Full {
		t.Fatalf("write into full TC = %v, want Full", r)
	}
	if tc.Stats().FullRejects != 1 {
		t.Fatal("full reject not counted")
	}
}

func TestProbeFindsNewestFirst(t *testing.T) {
	_, tc, _, _ := newTC(t, 8)
	if tc.Probe(nvmAddr(0)) {
		t.Fatal("probe hit in empty TC")
	}
	tc.Write(1, nvmAddr(0), 10)
	if !tc.Probe(nvmAddr(0)) {
		t.Fatal("probe missed a live entry")
	}
	// Probe is line-granular: a different word in the same line hits.
	if !tc.Probe(nvmAddr(3)) {
		t.Fatal("probe missed same-line word")
	}
	if tc.Probe(memaddr.NVMBase + 4096) {
		t.Fatal("probe hit an absent line")
	}
	s := tc.Stats()
	if s.Probes != 4 || s.ProbeHits != 2 {
		t.Fatalf("probe stats %d/%d, want 4/2", s.Probes, s.ProbeHits)
	}
}

func TestHeadHoleStallsDespiteFreeSpace(t *testing.T) {
	// Out-of-order acks leave holes the FIFO cannot reuse: if the head
	// slot is still live, writes stall even though count < capacity.
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 1, hold: true}
	tc := New(k.NewCtx(), Config{SizeBytes: 4 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm, nil)
	for i := 0; i < 4; i++ {
		tc.Write(1, nvmAddr(i), uint64(i))
	}
	tc.Commit(1)
	for i := 0; i < 10; i++ {
		k.Step() // issue all four writes (1/cycle), held unacked
	}
	if tc.Stats().Issued != 4 {
		t.Fatalf("issued %d, want 4", tc.Stats().Issued)
	}
	// Ack only the SECOND entry: a hole at index 1; head still points
	// at index 0's slot which remains live.
	tc.Ack(nvmAddr(1))
	if tc.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", tc.Occupancy())
	}
	if r := tc.Write(2, nvmAddr(9), 9); r != Full {
		t.Fatalf("write into holey ring = %v, want Full (head not available)", r)
	}
	// Acking the head entry frees the slot.
	tc.Ack(nvmAddr(0))
	if r := tc.Write(2, nvmAddr(9), 9); r != Accepted {
		t.Fatalf("write after head freed = %v, want Accepted", r)
	}
}

func TestAckMatchesNearestTailForDuplicateAddresses(t *testing.T) {
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 1, hold: true}
	tc := New(k.NewCtx(), Config{SizeBytes: 8 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm, nil)
	tc.Write(1, nvmAddr(0), 1)
	tc.Write(1, nvmAddr(0), 2) // same word, younger value
	tc.Commit(1)
	for i := 0; i < 5; i++ {
		k.Step()
	}
	tc.Ack(nvmAddr(0))
	// The older entry (nearest tail) must have been freed; the younger
	// must survive.
	contents := tc.Contents()
	if len(contents) != 1 || contents[0].Value != 2 {
		t.Fatalf("contents after first ack = %+v, want the younger entry", contents)
	}
}

func TestContentsInFIFOOrder(t *testing.T) {
	_, tc, _, _ := newTC(t, 8)
	for i := 0; i < 4; i++ {
		tc.Write(1, nvmAddr(i), uint64(100+i))
	}
	c := tc.Contents()
	if len(c) != 4 {
		t.Fatalf("contents = %d entries, want 4", len(c))
	}
	for i, e := range c {
		if e.Value != uint64(100+i) {
			t.Fatalf("contents[%d].Value = %d, want %d (FIFO order)", i, e.Value, 100+i)
		}
		if e.State != Active {
			t.Fatalf("contents[%d].State = %v, want active", i, e.State)
		}
	}
}

func TestDurableValuesAreWordPrecise(t *testing.T) {
	// Two stores to different words of the same line both reach the
	// durable image with their own values.
	k, tc, _, img := newTC(t, 8)
	tc.Write(1, nvmAddr(0), 111)
	tc.Write(1, nvmAddr(1), 222)
	tc.Commit(1)
	k.RunUntil(func() bool { return tc.Drained() }, 10000)
	if img.ReadWord(nvmAddr(0)) != 111 || img.ReadWord(nvmAddr(1)) != 222 {
		t.Fatalf("durable words = %d,%d, want 111,222",
			img.ReadWord(nvmAddr(0)), img.ReadWord(nvmAddr(1)))
	}
}

func TestStateStrings(t *testing.T) {
	if Available.String() != "available" || Active.String() != "active" || Committed.String() != "committed" {
		t.Fatal("state names wrong")
	}
}

func TestWrapAroundReuse(t *testing.T) {
	// Fill, drain, and refill several times over to exercise ring
	// wrap-around.
	k, tc, _, img := newTC(t, 4)
	for round := 0; round < 10; round++ {
		id := uint64(round + 1)
		for i := 0; i < 2; i++ {
			if r := tc.Write(id, nvmAddr(round*2+i), id*100+uint64(i)); r != Accepted {
				t.Fatalf("round %d write %d = %v", round, i, r)
			}
		}
		tc.Commit(id)
		k.RunUntil(func() bool { return tc.Drained() }, 10000)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 2; i++ {
			want := uint64(round+1)*100 + uint64(i)
			if got := img.ReadWord(nvmAddr(round*2 + i)); got != want {
				t.Fatalf("durable word %d = %d, want %d", round*2+i, got, want)
			}
		}
	}
}

// Property: for arbitrary accepted write/commit sequences followed by a
// full drain, the durable image equals the last committed value per word,
// and the TC always drains completely.
func TestQuickDrainMatchesLastCommittedValue(t *testing.T) {
	type op struct {
		Word  uint8
		Value uint64
	}
	f := func(txs [][]op) bool {
		if len(txs) > 20 {
			txs = txs[:20]
		}
		k := sim.NewKernel()
		nvm := &fakeNVM{k: k, lat: 7}
		img := memimage.New()
		tc := New(k.NewCtx(), Config{SizeBytes: 64 * 64, EntryBytes: 64}, nvm,
			func(a, v uint64) { img.WriteWord(a, v) })
		want := map[uint64]uint64{}
		id := uint64(1)
		for _, tx := range txs {
			if len(tx) > 8 {
				tx = tx[:8]
			}
			wrote := false
			for _, o := range tx {
				addr := nvmAddr(int(o.Word % 32))
				if tc.Write(id, addr, o.Value) == Accepted {
					want[addr] = o.Value
					wrote = true
				}
			}
			if wrote {
				tc.Commit(id)
			}
			id++
			// Let the ring drain between transactions sometimes.
			if id%3 == 0 {
				k.RunUntil(func() bool { return tc.Drained() }, 100000)
			}
		}
		k.RunUntil(func() bool { return tc.Drained() }, 1000000)
		if !tc.Drained() {
			return false
		}
		for a, v := range want {
			if img.ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictTxRemovesOnlyThatTransaction(t *testing.T) {
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 1, hold: true}
	tc := New(k.NewCtx(), Config{SizeBytes: 8 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm, nil)
	tc.Write(1, nvmAddr(0), 10)
	tc.Write(1, nvmAddr(1), 11)
	tc.Commit(1) // older committed tx stays
	tc.Write(2, nvmAddr(2), 20)
	tc.Write(2, nvmAddr(3), 21)

	evicted := tc.EvictTx(2)
	if len(evicted) != 2 {
		t.Fatalf("evicted %d entries, want 2", len(evicted))
	}
	for i, e := range evicted {
		if e.TxID != 2 || e.Value != uint64(20+i) {
			t.Fatalf("evicted[%d] = %+v, want tx 2 in FIFO order", i, e)
		}
	}
	if tc.Occupancy() != 2 {
		t.Fatalf("occupancy = %d after evict, want 2 (tx 1 remains)", tc.Occupancy())
	}
	for _, e := range tc.Contents() {
		if e.TxID != 1 {
			t.Fatalf("entry of tx %d survived EvictTx(2)", e.TxID)
		}
	}
	// The freed space is writable again once at the head.
	if r := tc.Write(3, nvmAddr(9), 9); r != Accepted {
		t.Fatalf("write after evict = %v, want Accepted", r)
	}
}

func TestEvictTxEmptiesRingCompletely(t *testing.T) {
	k := sim.NewKernel()
	tc := New(k.NewCtx(), Config{SizeBytes: 4 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, &fakeNVM{k: k, lat: 1}, nil)
	for i := 0; i < 3; i++ {
		tc.Write(7, nvmAddr(i), uint64(i))
	}
	if got := len(tc.EvictTx(7)); got != 3 {
		t.Fatalf("evicted %d, want 3", got)
	}
	if !tc.Drained() {
		t.Fatal("ring not drained after evicting its only transaction")
	}
	// Full capacity is available again.
	for i := 0; i < 3; i++ {
		if r := tc.Write(8, nvmAddr(10+i), 1); r != Accepted {
			t.Fatalf("post-evict write %d = %v", i, r)
		}
	}
}

func TestEvictTxDoesNotTouchCommittedEntries(t *testing.T) {
	// EvictTx moves only ACTIVE entries: committed ones are already
	// queued for the NVM and must drain normally.
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 3}
	img := memimage.New()
	tc := New(k.NewCtx(), Config{SizeBytes: 8 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm,
		func(a, v uint64) { img.WriteWord(a, v) })
	tc.Write(1, nvmAddr(0), 10)
	tc.Commit(1)
	if got := len(tc.EvictTx(1)); got != 0 {
		t.Fatalf("EvictTx removed %d committed entries", got)
	}
	k.RunUntil(tc.Drained, 10000)
	if img.ReadWord(nvmAddr(0)) != 10 {
		t.Fatal("committed entry lost after EvictTx of same id")
	}
}

// TestNilProbePathAllocatesNothing is the zero-overhead-when-disabled
// regression guard at the component level: with no probe attached (the
// default), the hot Write/Probe/Commit sequence performs no heap
// allocations — every probe site is an untaken nil check.
func TestNilProbePathAllocatesNothing(t *testing.T) {
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 1, hold: true} // hold acks: no drain closures
	tc := New(k.NewCtx(), Config{SizeBytes: 64 * 64, EntryBytes: 64, HighWaterFrac: 1.0}, nvm, nil)
	var tx uint64
	allocs := testing.AllocsPerRun(100, func() {
		tx++
		tc.Write(tx, nvmAddr(0), tx)
		tc.Write(tx, nvmAddr(1), tx)
		tc.Probe(memaddr.LineAddr(nvmAddr(0)))
		tc.Probe(memaddr.LineAddr(nvmAddr(7)))
		tc.Commit(tx)
		// Reclaim without draining so the ring never fills: evict is
		// the test hook; the measured path is Write/Probe/Commit.
		tc.head, tc.tail, tc.count, tc.issue, tc.unissued = 0, 0, 0, 0, 0
		tc.entries[0] = Entry{}
		tc.entries[1] = Entry{}
	})
	if allocs != 0 {
		t.Fatalf("nil-probe Write/Probe/Commit allocated %.1f times per run, want 0", allocs)
	}
}

// TestOpenDrainBurstFlushedAtCollection: a drain burst still in progress
// when the probe is collected must surface as a KTCDrainOpen span ending
// at the collection cycle (previously it silently vanished).
func TestOpenDrainBurstFlushedAtCollection(t *testing.T) {
	k := sim.NewKernel()
	nvm := &fakeNVM{k: k, lat: 152}
	p := obs.NewProbe(64)
	tc := New(k.NewCtx(), Config{SizeBytes: 8 * 64, EntryBytes: 64}, nvm, nil)
	tc.SetProbe(p, 3)
	tc.Write(1, nvmAddr(0), 10)
	tc.Write(1, nvmAddr(1), 11)
	tc.Write(1, nvmAddr(2), 12)
	tc.Commit(1)
	// One tick issues one entry (IssuePerCycle default 1): the burst is
	// open with two entries still unissued.
	k.Step()
	if tc.Idle() {
		t.Fatal("TC mid-burst reports idle")
	}
	p.FlushOpenSpans(k.Now())
	if n := p.CountKind(obs.KTCDrainOpen); n != 1 {
		t.Fatalf("flushed %d open-burst spans, want 1", n)
	}
	if p.OpenSpansFlushed() != 1 {
		t.Fatalf("OpenSpansFlushed = %d, want 1", p.OpenSpansFlushed())
	}
	ev := findKind(t, p, obs.KTCDrainOpen)
	if ev.End != k.Now() || ev.Arg != 1 || ev.Core != 3 {
		t.Fatalf("open span = %+v, want End=%d Arg=1 Core=3", ev, k.Now())
	}
	// A completed burst, by contrast, closes as a normal KTCDrain span
	// and must not re-flush.
	k.RunUntil(tc.Drained, 10000)
	k.Step() // one more tick for the burst-close check
	p.FlushOpenSpans(k.Now())
	if p.OpenSpansFlushed() != 1 {
		t.Fatalf("closed burst re-flushed: OpenSpansFlushed = %d, want 1", p.OpenSpansFlushed())
	}
	if p.CountKind(obs.KTCDrain) != 1 {
		t.Fatalf("completed burst spans = %d, want 1", p.CountKind(obs.KTCDrain))
	}
}

func findKind(t *testing.T, p *obs.Probe, k obs.Kind) obs.Event {
	t.Helper()
	for _, e := range p.Events() {
		if e.Kind == k {
			return e
		}
	}
	t.Fatalf("no %v event recorded", k)
	return obs.Event{}
}

// TestConfigValidate covers the misconfigurations Validate must reject
// and the shapes it must accept.
func TestConfigValidate(t *testing.T) {
	if err := (Config{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("defaulted zero config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: -64, EntryBytes: 64, HighWaterFrac: 0.9, IssuePerCycle: 1},
		{SizeBytes: 4 << 10, EntryBytes: 100, HighWaterFrac: 0.9, IssuePerCycle: 1}, // 100 does not divide 4096
		{SizeBytes: 64, EntryBytes: 64, HighWaterFrac: 0.9, IssuePerCycle: 1},       // 1 entry
		{SizeBytes: 4 << 10, EntryBytes: 64, HighWaterFrac: 1.5, IssuePerCycle: 1},
		{SizeBytes: 4 << 10, EntryBytes: 64, HighWaterFrac: -0.1, IssuePerCycle: 1},
		{SizeBytes: 4 << 10, EntryBytes: 64, HighWaterFrac: 0.9, IssuePerCycle: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
}
