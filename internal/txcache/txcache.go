// Package txcache implements the paper's contribution: the nonvolatile
// transaction cache (TC), a per-core content-addressable FIFO (CAM FIFO,
// §4.1) deployed beside the cache hierarchy.
//
// The data array is a ring of cache-line-sized entries, each carrying the
// transaction id, entry state (available / active / committed), the store
// address and the 64-bit store value. CPU write requests insert at the
// head; a commit request CAM-matches every active entry of the committing
// transaction into the committed state; committed entries issue toward the
// NVM controller in FIFO order from the tail; and the controller's
// acknowledgment messages CAM-match the entry nearest the tail back to
// available, letting the tail advance. LLC miss requests CAM-match the
// entry nearest the head (the newest version) — the side-path probe.
//
// Because the TC is nonvolatile, a transaction is durably committed the
// moment its commit request is inserted: every mechanism guarantee
// (multi-versioning and write-order control, §3) follows from this
// structure and is exercised directly by the crash-recovery tests.
package txcache

import (
	"fmt"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
)

// State is a data-array entry state (§4.1, Figure 4).
type State uint8

const (
	// Available entries hold no live data and can accept a write.
	Available State = iota
	// Active entries belong to an in-flight (uncommitted) transaction.
	Active
	// Committed entries await issue to, and acknowledgment from, the
	// NVM controller.
	Committed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Available:
		return "available"
	case Active:
		return "active"
	case Committed:
		return "committed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Entry is one data-array line.
type Entry struct {
	State  State
	TxID   uint64
	Addr   uint64 // word address of the buffered store
	Value  uint64
	issued bool // sent to the NVM controller, awaiting ack
}

// WriteResult reports how the TC handled a CPU write request.
type WriteResult int

const (
	// Accepted: the write was buffered normally.
	Accepted WriteResult = iota
	// Fallback: occupancy is at or above the high-water mark; the
	// caller must route this update through the hardware
	// copy-on-write fall-back path (§4.1, "Transaction Cache
	// Overflow").
	Fallback
	// Full: every entry is live; the CPU must stall and retry.
	Full
)

// Port is the TC's private write port into the memory backend. Drained
// entries target whichever NVM channel owns their line; the TC itself is
// topology-blind — per-channel FIFO completion of same-line writes is all
// its address-matched acknowledgments require.
type Port interface {
	Write(lineAddr uint64, apply, onDurable func())
}

// TrackedPort is the optional port capability the flight recorder
// rides on: a write that additionally marks the flight-recorder write w
// with its service-start cycle and owning global channel id.
// memctrl.Backend implements it; timing-only fake ports need not.
type TrackedPort interface {
	Port
	WriteTracked(lineAddr uint64, apply, onDurable func(), w *txflight.Write)
}

// Config sizes one per-core transaction cache.
type Config struct {
	// SizeBytes is the data-array capacity (Table 2: 4 KB per core).
	SizeBytes int
	// EntryBytes is the line size per entry (64).
	EntryBytes int
	// Latency is the access latency in cycles (0.5 ns -> 1 cycle).
	Latency uint64
	// HighWaterFrac triggers the overflow fall-back (0.9).
	HighWaterFrac float64
	// IssuePerCycle bounds committed-entry drain bandwidth.
	IssuePerCycle int
}

// WithDefaults fills zero fields with the Table 2 values.
func (c Config) WithDefaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 4 << 10
	}
	if c.EntryBytes == 0 {
		c.EntryBytes = 64
	}
	if c.Latency == 0 {
		c.Latency = 1
	}
	if c.HighWaterFrac == 0 {
		c.HighWaterFrac = 0.9
	}
	if c.IssuePerCycle == 0 {
		c.IssuePerCycle = 1
	}
	return c
}

// Entries returns the data-array entry count.
func (c Config) Entries() int { return c.SizeBytes / c.EntryBytes }

// Validate rejects configurations WithDefaults would silently accept but
// that misbehave downstream (a high-water mark above 1, an entry size
// that does not divide the capacity). Call it on the defaulted
// configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.EntryBytes <= 0 {
		return fmt.Errorf("txcache: SizeBytes %d and EntryBytes %d must be positive",
			c.SizeBytes, c.EntryBytes)
	}
	if c.SizeBytes%c.EntryBytes != 0 {
		return fmt.Errorf("txcache: EntryBytes %d does not divide SizeBytes %d — %d bytes would be silently lost",
			c.EntryBytes, c.SizeBytes, c.SizeBytes%c.EntryBytes)
	}
	if c.Entries() < 2 {
		return fmt.Errorf("txcache: %d bytes / %d-byte entries leaves %d entries, need at least 2",
			c.SizeBytes, c.EntryBytes, c.Entries())
	}
	if c.HighWaterFrac <= 0 || c.HighWaterFrac > 1 {
		return fmt.Errorf("txcache: HighWaterFrac %g must be in (0, 1]", c.HighWaterFrac)
	}
	if c.IssuePerCycle <= 0 {
		return fmt.Errorf("txcache: IssuePerCycle %d must be positive", c.IssuePerCycle)
	}
	return nil
}

// Stats counts TC activity.
type Stats struct {
	Writes         uint64
	Commits        uint64
	Issued         uint64 // writes sent toward NVM
	Acked          uint64
	Probes         uint64
	ProbeHits      uint64
	FallbackWrites uint64
	FullRejects    uint64
	OccupancyPeak  int
}

// TxCache is one core's transaction cache. Register with the kernel so
// the drain state machine ticks.
type TxCache struct {
	k   *sim.Ctx
	cfg Config
	mem Port
	// durableApply writes one word into the durable NVM image; the
	// system provides it so the TC stays image-agnostic.
	durableApply func(addr, value uint64)
	// onAck, when set, observes every drain acknowledgment (word
	// address) after the entry clears — the conflict layer's release
	// point for shared-line ownership. Acks fire in coordinator
	// contexts (memory-completion events), so the hook may touch
	// coordinator-owned state directly.
	onAck func(addr uint64)

	entries []Entry
	head    int // next insert slot
	tail    int // oldest live entry
	count   int
	issue   int // next entry to consider issuing (ring index)
	// issuable counts committed, unissued entries between issue and
	// head.
	unissued int

	// probe is the observability recorder (nil when disabled); coreID
	// labels this TC's events. burst* track the current drain burst:
	// first committed-entry issue until nothing is left unissued.
	probe       *obs.Probe
	coreID      int
	burstActive bool
	burstStart  uint64
	burstIssued uint64

	// hBurstEntries/hBurstCycles stream each closed drain burst's size
	// and duration into the metrics registry (nil when disabled).
	hBurstEntries *metrics.Histogram
	hBurstCycles  *metrics.Histogram

	// fr is the transaction flight recorder (nil when sampling is off);
	// frPort is the tracked write port it observes drain writes
	// through. Both are set together by SetFlight.
	fr     *txflight.Recorder
	frPort TrackedPort

	stats Stats
}

// New builds a TC draining into mem. The context carries the TC's
// parallel-kernel group binding (a plain kernel passthrough in serial
// runs); drained writes into the shared memory backend are journaled
// through it when the TC ticks on a worker. durableApply may be nil
// (timing-only use).
func New(k *sim.Ctx, cfg Config, mem Port, durableApply func(addr, value uint64)) *TxCache {
	cfg = cfg.WithDefaults()
	if cfg.Entries() < 2 {
		panic(fmt.Sprintf("txcache: %d bytes / %d-byte entries leaves %d entries",
			cfg.SizeBytes, cfg.EntryBytes, cfg.Entries()))
	}
	tc := &TxCache{
		k: k, cfg: cfg, mem: mem, durableApply: durableApply,
		entries: make([]Entry, cfg.Entries()),
	}
	k.Register(tc)
	return tc
}

// SetAckHook installs fn to observe every drain acknowledgment's word
// address. Wire-up time only (before the run starts).
func (tc *TxCache) SetAckHook(fn func(addr uint64)) { tc.onAck = fn }

// SetProbe attaches the observability recorder (nil disables probing);
// core labels this TC's events in the trace. A drain burst still open
// when the probe is collected is flushed as a KTCDrainOpen span ending
// at the collection cycle, so truncated bursts appear in the trace
// instead of vanishing.
func (tc *TxCache) SetProbe(p *obs.Probe, core int) {
	tc.probe = p
	tc.coreID = core
	p.AddOpenSpanFlusher(func(now uint64) {
		if tc.burstActive {
			p.Span(obs.KTCDrainOpen, tc.coreID, 0, tc.burstStart, now, tc.burstIssued)
		}
	})
}

// SetFlight attaches the transaction flight recorder. The tracked
// write checkpoints (TC issue, service start, durable) need the memory
// port to support WriteTracked, so the hooks engage only when it does;
// with a plain Port the recorder still sees commits and the flight
// simply ends at commit with zero tracked writes.
func (tc *TxCache) SetFlight(fr *txflight.Recorder) {
	if fr == nil {
		return
	}
	if tp, ok := tc.mem.(TrackedPort); ok {
		tc.fr = fr
		tc.frPort = tp
	}
}

// SetMetrics attaches the drain-burst histograms: entries issued per
// burst and burst duration in cycles. Nil histograms disable the
// observations; only bursts that close naturally are observed (a burst
// still open at collection is visible through the probe's open-span
// flush, not the histograms).
func (tc *TxCache) SetMetrics(burstEntries, burstCycles *metrics.Histogram) {
	tc.hBurstEntries = burstEntries
	tc.hBurstCycles = burstCycles
}

// Config returns the (defaulted) configuration.
func (tc *TxCache) Config() Config { return tc.cfg }

// Stats returns a copy of the counters.
func (tc *TxCache) Stats() Stats { return tc.stats }

// Occupancy reports live (non-available) entries.
func (tc *TxCache) Occupancy() int { return tc.count }

// highWater is the occupancy that triggers the fall-back path.
func (tc *TxCache) highWater() int {
	return int(float64(len(tc.entries)) * tc.cfg.HighWaterFrac)
}

func (tc *TxCache) next(i int) int {
	if i == len(tc.entries)-1 {
		return 0
	}
	return i + 1
}

// recordInstant records a probe instant at the current cycle. Write and
// Commit run inside core ticks, which land on worker goroutines under
// the parallel kernel — there the record is journaled through the
// shared core/TC context and replayed on the coordinator in
// registration order, reproducing the serial record sequence exactly.
func (tc *TxCache) recordInstant(k obs.Kind, txID, arg uint64) {
	if tc.probe == nil {
		return
	}
	now := tc.k.Now()
	if tc.k.Deferring() {
		tc.k.Defer(func() { tc.probe.Instant(k, tc.coreID, txID, now, arg) })
	} else {
		tc.probe.Instant(k, tc.coreID, txID, now, arg)
	}
}

// Write inserts a buffered store for txID at the head. The result tells
// the caller whether to proceed normally, take the fall-back path, or
// stall.
func (tc *TxCache) Write(txID, addr, value uint64) WriteResult {
	if tc.count >= len(tc.entries) {
		tc.stats.FullRejects++
		tc.recordInstant(obs.KTCFull, txID, addr)
		return Full
	}
	if tc.count >= tc.highWater() {
		tc.stats.FallbackWrites++
		tc.recordInstant(obs.KTCFallback, txID, addr)
		return Fallback
	}
	e := &tc.entries[tc.head]
	if e.State != Available {
		// Acknowledgments can complete out of order, leaving holes
		// behind a still-live entry at the head slot. The FIFO cannot
		// use holes ("we have to wait for data being written back",
		// §4.1), so the writer stalls exactly as on a full ring.
		tc.stats.FullRejects++
		tc.recordInstant(obs.KTCFull, txID, addr)
		return Full
	}
	*e = Entry{State: Active, TxID: txID, Addr: memaddr.WordAddr(addr), Value: value}
	tc.head = tc.next(tc.head)
	tc.count++
	tc.unissued++
	if tc.count > tc.stats.OccupancyPeak {
		tc.stats.OccupancyPeak = tc.count
	}
	tc.stats.Writes++
	return Accepted
}

// Commit CAM-matches every active entry of txID into the committed state.
// Being nonvolatile, the TC makes the transaction durable at this instant.
func (tc *TxCache) Commit(txID uint64) {
	tc.stats.Commits++
	var matched uint64
	for i := range tc.entries {
		if tc.entries[i].State == Active && tc.entries[i].TxID == txID {
			tc.entries[i].State = Committed
			matched++
		}
	}
	if tc.probe == nil && tc.fr == nil {
		return
	}
	now := tc.k.Now()
	if tc.k.Deferring() {
		// Journaled before the core's own flight-commit record (same
		// journal, program order), matching the serial call sequence.
		tc.k.Defer(func() {
			tc.probe.Instant(obs.KTCCommit, tc.coreID, txID, now, matched)
			tc.commitMatched(txID, matched)
		})
	} else {
		tc.probe.Instant(obs.KTCCommit, tc.coreID, txID, now, matched)
		tc.commitMatched(txID, matched)
	}
}

// commitMatched tells the flight recorder how many tracked writes the
// commit must wait out before the flight can finalize.
func (tc *TxCache) commitMatched(txID, matched uint64) {
	if tc.fr != nil {
		tc.fr.CommitMatched(tc.coreID, txID, int(matched))
	}
}

// Probe serves an LLC miss request: CAM-match live entries for the cache
// line, nearest the head first (newest version wins). It reports whether
// the TC holds data for that line.
func (tc *TxCache) Probe(lineAddr uint64) bool {
	tc.stats.Probes++
	if tc.count == 0 {
		return false // an empty CAM cannot hit
	}
	lineAddr = memaddr.LineAddr(lineAddr)
	// Out-of-order acknowledgments leave available holes between tail
	// and head, so the scan walks slots newest first — but only until it
	// has seen every live entry: the remaining slots are all available
	// and cannot match.
	for n, live, i := 0, 0, tc.prev(tc.head); n < len(tc.entries) && live < tc.count; n, i = n+1, tc.prev(i) {
		e := &tc.entries[i]
		if e.State == Available {
			continue
		}
		live++
		if memaddr.LineAddr(e.Addr) == lineAddr {
			tc.stats.ProbeHits++
			return true
		}
	}
	return false
}

func (tc *TxCache) prev(i int) int {
	if i == 0 {
		return len(tc.entries) - 1
	}
	return i - 1
}

// Idle implements sim.Quiescer: Tick is a pure no-op exactly when
// either nothing is left to issue and no drain burst is waiting to close
// (the burst-end check emits a probe span and clears burstActive, a
// state change), or the issue pointer is parked on an active entry — in
// FIFO order an uncommitted entry blocks everything younger, so issueOne
// returns without advancing the pointer or touching the burst. The
// blocking entry can only commit through its core's activity, and a core
// that could run reports busy itself.
func (tc *TxCache) Idle() bool {
	if tc.unissued == 0 {
		return !tc.burstActive
	}
	return tc.entries[tc.issue].State == Active
}

// Tick implements sim.Tickable: issue committed entries toward the NVM in
// FIFO order, up to IssuePerCycle. A drain burst (the off-critical-path
// write stream of §4.3) spans from the first issue until nothing is left
// unissued.
func (tc *TxCache) Tick(now uint64) {
	for n := 0; n < tc.cfg.IssuePerCycle; n++ {
		if !tc.issueOne() {
			break
		}
	}
	if tc.burstActive && tc.unissued == 0 {
		if tc.k.Deferring() {
			// Metrics are rejected under the parallel kernel, so only
			// the probe span needs journaling here.
			if tc.probe != nil {
				start, issued := tc.burstStart, tc.burstIssued
				tc.k.Defer(func() { tc.probe.Span(obs.KTCDrain, tc.coreID, 0, start, now, issued) })
			}
		} else {
			tc.probe.Span(obs.KTCDrain, tc.coreID, 0, tc.burstStart, now, tc.burstIssued)
			tc.hBurstEntries.Observe(tc.burstIssued)
			tc.hBurstCycles.Observe(now - tc.burstStart)
		}
		tc.burstActive = false
	}
}

// issueOne sends the oldest committed, unissued entry. It returns false
// when nothing is issuable (the next candidate is active or the ring is
// drained).
func (tc *TxCache) issueOne() bool {
	if tc.unissued == 0 {
		return false
	}
	// Advance the issue pointer over already-issued or available
	// entries to the oldest unissued one. Bounded by the ring size;
	// unissued > 0 guarantees a stop.
	for steps := 0; tc.entries[tc.issue].State != Active &&
		!(tc.entries[tc.issue].State == Committed && !tc.entries[tc.issue].issued); steps++ {
		if steps > len(tc.entries) {
			panic("txcache: issue pointer found no candidate despite unissued > 0")
		}
		tc.issue = tc.next(tc.issue)
	}
	e := &tc.entries[tc.issue]
	if e.State == Active {
		// FIFO order: an active (uncommitted) entry blocks everything
		// younger than it.
		return false
	}
	e.issued = true
	tc.unissued--
	tc.stats.Issued++
	if (tc.probe != nil || tc.hBurstCycles != nil) && !tc.burstActive {
		tc.burstActive = true
		tc.burstStart = tc.k.Now()
		tc.burstIssued = 0
	}
	tc.burstIssued++
	addr, value := e.Addr, e.Value
	var apply func()
	if tc.durableApply != nil {
		apply = func() { tc.durableApply(addr, value) }
	}
	if tc.fr != nil && tc.fr.Sampled(e.TxID) {
		// Sampled transaction: route through the tracked port so the
		// flight recorder sees TC issue, WPQ service start (with the
		// channel) and durable completion for this write.
		txID, issueAt := e.TxID, tc.k.Now()
		if tc.k.Deferring() {
			tc.k.Defer(func() { tc.issueTracked(addr, apply, txID, issueAt) })
		} else {
			tc.issueTracked(addr, apply, txID, issueAt)
		}
	} else if tc.k.Deferring() {
		tc.k.Defer(func() { tc.mem.Write(memaddr.LineAddr(addr), apply, func() { tc.Ack(addr) }) })
	} else {
		tc.mem.Write(memaddr.LineAddr(addr), apply, func() { tc.Ack(addr) })
	}
	tc.issue = tc.next(tc.issue)
	return true
}

// issueTracked is issueOne's drain write for a sampled transaction: it
// opens the flight-recorder write and routes through the tracked port so
// the recorder sees TC issue, WPQ service start and durable completion.
// Kept out of line so the serial hot path builds no extra closures.
func (tc *TxCache) issueTracked(addr uint64, apply func(), txID, issueAt uint64) {
	w := tc.fr.TCIssue(tc.coreID, txID, issueAt)
	tc.frPort.WriteTracked(memaddr.LineAddr(addr), apply, func() {
		tc.Ack(addr)
		tc.fr.WriteDurable(w, tc.k.Now())
	}, w)
}

// Ack handles the NVM controller's acknowledgment for a written-back
// entry: CAM-match the issued entry with this address nearest the tail to
// the available state, then advance the tail over available entries.
func (tc *TxCache) Ack(addr uint64) {
	addr = memaddr.WordAddr(addr)
	// Walk every slot oldest-first: holes may separate live entries.
	for n, i := 0, tc.tail; n < len(tc.entries); n, i = n+1, tc.next(i) {
		e := &tc.entries[i]
		if e.State == Committed && e.issued && e.Addr == addr {
			*e = Entry{}
			tc.count--
			tc.stats.Acked++
			for tc.count > 0 && tc.entries[tc.tail].State == Available {
				tc.tail = tc.next(tc.tail)
			}
			if tc.count == 0 {
				tc.tail = tc.head
				tc.issue = tc.head
			}
			if tc.onAck != nil {
				tc.onAck(addr)
			}
			return
		}
	}
	panic(fmt.Sprintf("txcache: ack for %#x matches no issued entry", addr))
}

// EvictTx removes every active entry of txID from the ring, returning
// them in FIFO (program) order. The overflow fall-back uses it to move an
// overflowed transaction's buffered updates to the copy-on-write shadow,
// so one transaction never has updates split across the two paths (which
// could apply to NVM out of order).
func (tc *TxCache) EvictTx(txID uint64) []Entry {
	var out []Entry
	for n, i := 0, tc.tail; n < len(tc.entries); n, i = n+1, tc.next(i) {
		e := &tc.entries[i]
		if e.State == Active && e.TxID == txID {
			out = append(out, *e)
			*e = Entry{}
			tc.count--
			tc.unissued--
		}
	}
	for tc.count > 0 && tc.entries[tc.tail].State == Available {
		tc.tail = tc.next(tc.tail)
	}
	if tc.count == 0 {
		tc.tail = tc.head
		tc.issue = tc.head
	}
	return out
}

// Drained reports whether no live entries remain.
func (tc *TxCache) Drained() bool { return tc.count == 0 }

// UnackedCommitted reports committed entries not yet acknowledged.
func (tc *TxCache) UnackedCommitted() int {
	n := 0
	for i := range tc.entries {
		if tc.entries[i].State == Committed {
			n++
		}
	}
	return n
}

// Contents returns the live entries in FIFO order (oldest first) — the
// nonvolatile state a crash preserves, consumed by recovery.
func (tc *TxCache) Contents() []Entry {
	out := make([]Entry, 0, tc.count)
	for n, i := 0, tc.tail; n < tc.count; {
		e := tc.entries[i]
		if e.State != Available {
			out = append(out, e)
			n++
		}
		i = tc.next(i)
	}
	return out
}
