package txcache

// LineArbiter is the machine-wide ownership directory for cache lines in
// the cross-core shared persistent region: the conflict-detection half of
// contended transactions. A core must own a shared line before a
// transactional store to it may proceed; ownership is granted
// first-come-first-served at the coordinator and held until the owning
// transaction's writes to the line are durable (the release point is
// mechanism-specific — TC drain ack, commit-record apply, flush
// completion). A denied request makes the requester the loser: it aborts
// its transaction and retries after a bounded backoff. The owner never
// aborts, so arbitration is deterministic and livelock-free.
//
// Concurrency contract (mirrors the TC/memctrl pattern under the
// parallel kernel): the owner map and request queue mutate only in
// coordinator contexts — events, journal replay, or serial ticks. Cores
// running on tick workers never touch them directly; they post an
// Acquire through their sim.Ctx guarded-defer path and read only their
// own per-core verdict slot, which the coordinator wrote in a previous
// cycle. Because a core stalls its store until the verdict lands, each
// core has at most one request in flight, and replay order equals
// registration order, so serial and parallel kernels arbitrate
// identically.
type LineArbiter struct {
	owner   map[uint64]int // line -> owning core
	verdict []ArbVerdict   // per-core single verdict slot
	stats   ArbStats
}

// ArbVerdict is a core's private view of its last arbitration request.
type ArbVerdict struct {
	Line  uint64
	State ArbState
}

// ArbState is the lifecycle of one acquire request.
type ArbState int

const (
	// ArbNone: no request outstanding.
	ArbNone ArbState = iota
	// ArbPending: the acquire is posted but the coordinator has not
	// decided yet (the store stalls this cycle).
	ArbPending
	// ArbGranted: the core owns the line; the store may proceed.
	ArbGranted
	// ArbDenied: another core owns the line; the requester must abort.
	ArbDenied
)

// ArbStats counts arbitration outcomes machine-wide.
type ArbStats struct {
	// Acquires is the number of ownership requests decided.
	Acquires uint64
	// Conflicts is the number of requests denied because another core
	// held the line.
	Conflicts uint64
	// Releases is the number of ownership drops.
	Releases uint64
}

// NewLineArbiter returns an arbiter for an nCores-wide machine.
func NewLineArbiter(nCores int) *LineArbiter {
	return &LineArbiter{
		owner:   make(map[uint64]int),
		verdict: make([]ArbVerdict, nCores),
	}
}

// Acquire decides ownership of line for core and writes the core's
// verdict slot. Coordinator contexts only.
func (a *LineArbiter) Acquire(line uint64, core int) {
	a.stats.Acquires++
	if own, held := a.owner[line]; held && own != core {
		a.stats.Conflicts++
		a.verdict[core] = ArbVerdict{Line: line, State: ArbDenied}
		return
	}
	a.owner[line] = core
	a.verdict[core] = ArbVerdict{Line: line, State: ArbGranted}
}

// Release drops core's ownership of line. Releasing a line the core does
// not own is a protocol bug and panics. Coordinator contexts only.
func (a *LineArbiter) Release(line uint64, core int) {
	if own, held := a.owner[line]; !held || own != core {
		panic("txcache: LineArbiter.Release of a line the core does not own")
	}
	delete(a.owner, line)
	a.stats.Releases++
}

// Verdict returns core's verdict slot. Safe from the core's own tick:
// the slot is written by the coordinator between cycles.
func (a *LineArbiter) Verdict(core int) ArbVerdict { return a.verdict[core] }

// SetPending marks core's request for line as in flight, so the stalled
// store does not re-post the acquire on every retried cycle. Called from
// the core's own tick in the same cycle the acquire is deferred; the
// coordinator overwrites the slot with the decision. Core-private slot,
// so this cannot race.
func (a *LineArbiter) SetPending(core int, line uint64) {
	a.verdict[core] = ArbVerdict{Line: line, State: ArbPending}
}

// ClearVerdict resets core's verdict slot after the core consumed it.
// Called from the core's own tick; the slot is core-private until the
// next Acquire the same core posts, so this cannot race.
func (a *LineArbiter) ClearVerdict(core int) { a.verdict[core] = ArbVerdict{} }

// Owner reports the current owner of line, if any.
func (a *LineArbiter) Owner(line uint64) (int, bool) {
	c, ok := a.owner[line]
	return c, ok
}

// Held reports how many lines are currently owned.
func (a *LineArbiter) Held() int { return len(a.owner) }

// Stats returns the machine-wide arbitration counters.
func (a *LineArbiter) Stats() ArbStats { return a.stats }
