// Package trace defines the memory-reference trace format that connects the
// workload layer to the timing simulator, together with a Recorder that
// workloads use to emit well-formed traces and a Validator used by tests.
//
// A trace is the program as the memory system sees it: interleaved compute
// batches, 64-bit loads and stores, transaction boundaries, and (for the
// software-persistence mechanism only) explicit cache-line write-backs and
// store fences. Workloads emit plain traces; the mechanism layer rewrites
// them (e.g. injecting log writes) before they reach the core model.
package trace

import "fmt"

// Kind enumerates trace record types.
type Kind uint8

const (
	// KindCompute is a batch of N non-memory instructions.
	KindCompute Kind = iota
	// KindLoad is a 64-bit load from Addr.
	KindLoad
	// KindStore is a 64-bit store of Value to Addr.
	KindStore
	// KindTxBegin marks the start of durable transaction TxID
	// (compiled from TX_BEGIN in the paper's software interface).
	KindTxBegin
	// KindTxEnd marks the commit of transaction TxID (TX_END).
	KindTxEnd
	// KindCLWB writes back the cache line containing Addr towards
	// memory without invalidating it. Only the software-persistence
	// mechanism emits these.
	KindCLWB
	// KindCLFlush writes back and invalidates the line (the pre-clwb
	// x86 clflush): the next access to the line misses again.
	KindCLFlush
	// KindSFence orders stores: the core may not proceed until all
	// earlier stores and write-backs are globally visible (durable, for
	// persistent addresses). Only the software mechanism emits these.
	KindSFence
)

// String returns the mnemonic for the record kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindTxBegin:
		return "tx_begin"
	case KindTxEnd:
		return "tx_end"
	case KindCLWB:
		return "clwb"
	case KindCLFlush:
		return "clflush"
	case KindSFence:
		return "sfence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one trace entry. Field use depends on Kind:
//
//	Compute:        N = instruction count
//	Load:           Addr
//	Store:          Addr, Value
//	TxBegin, TxEnd: TxID
//	CLWB:           Addr (any address within the line)
//	SFence:         no operands
type Record struct {
	Kind  Kind
	Addr  uint64
	Value uint64
	TxID  uint64
	N     int
	// Dep marks a load whose address depends on an earlier load's data
	// (pointer chasing): it cannot issue while any load is outstanding.
	// Independent loads overlap up to the core's MLP window — the
	// trace-level approximation of out-of-order execution.
	Dep bool
}

// Instructions returns how many dynamic instructions the record represents
// in the IPC accounting: Compute counts N, every other record counts 1
// (a load, store, flush, fence or transaction primitive is one
// instruction).
func (r Record) Instructions() uint64 {
	if r.Kind == KindCompute {
		return uint64(r.N)
	}
	return 1
}

// Convenience constructors keep workload code readable.

// Compute returns a compute batch record of n instructions.
func Compute(n int) Record { return Record{Kind: KindCompute, N: n} }

// Load returns an independent load record.
func Load(addr uint64) Record { return Record{Kind: KindLoad, Addr: addr} }

// LoadDep returns a dependent (pointer-chase) load record.
func LoadDep(addr uint64) Record { return Record{Kind: KindLoad, Addr: addr, Dep: true} }

// Store returns a store record.
func Store(addr, value uint64) Record {
	return Record{Kind: KindStore, Addr: addr, Value: value}
}

// TxBegin returns a transaction-begin record.
func TxBegin(id uint64) Record { return Record{Kind: KindTxBegin, TxID: id} }

// TxEnd returns a transaction-commit record.
func TxEnd(id uint64) Record { return Record{Kind: KindTxEnd, TxID: id} }

// CLWB returns a cache-line write-back record.
func CLWB(addr uint64) Record { return Record{Kind: KindCLWB, Addr: addr} }

// CLFlush returns a cache-line flush-and-invalidate record.
func CLFlush(addr uint64) Record { return Record{Kind: KindCLFlush, Addr: addr} }

// SFence returns a store-fence record.
func SFence() Record { return Record{Kind: KindSFence} }
