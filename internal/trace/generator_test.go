package trace

import (
	"errors"
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
)

// TestGeneratorDrainsBatches pins the refill discipline: each step call
// emits one batch, the consumer sees every record in order, and the
// stream ends cleanly when step reports no more.
func TestGeneratorDrainsBatches(t *testing.T) {
	batch := 0
	g := NewGenerator(func(emit func(Record)) (bool, error) {
		if batch == 3 {
			return false, nil
		}
		for i := 0; i < 2; i++ {
			emit(Compute(batch*2 + i + 1))
		}
		batch++
		return true, nil
	})
	var got []int
	for {
		rec, ok := g.Next()
		if !ok {
			break
		}
		got = append(got, rec.N)
	}
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("drained %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %d, want %d", i, got[i], want[i])
		}
	}
	if g.Err() != nil {
		t.Errorf("clean stream has Err = %v", g.Err())
	}
	if g.Produced() != 6 {
		t.Errorf("Produced = %d, want 6", g.Produced())
	}
	// Exhausted streams stay exhausted.
	if _, ok := g.Next(); ok {
		t.Error("Next returned a record after exhaustion")
	}
}

// TestGeneratorEmptyBatchesSkipped: a step call may emit zero records
// (e.g. a quiet phase); the generator keeps refilling rather than ending
// the stream.
func TestGeneratorEmptyBatchesSkipped(t *testing.T) {
	calls := 0
	g := NewGenerator(func(emit func(Record)) (bool, error) {
		calls++
		switch calls {
		case 1, 2:
			return true, nil // nothing emitted
		case 3:
			emit(Compute(7))
			return true, nil
		default:
			return false, nil
		}
	})
	rec, ok := g.Next()
	if !ok || rec.N != 7 {
		t.Fatalf("Next = %+v, %v; want the batch-3 record", rec, ok)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("stream did not end after final batch")
	}
}

// TestGeneratorStickyStepError: a step failure ends the stream, discards
// the partial batch, and surfaces through Err on every later call.
func TestGeneratorStickyStepError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	g := NewGenerator(func(emit func(Record)) (bool, error) {
		calls++
		if calls == 2 {
			emit(Compute(99)) // partial batch must not leak out
			return false, boom
		}
		emit(Compute(1))
		return true, nil
	})
	if _, ok := g.Next(); !ok {
		t.Fatal("first record missing")
	}
	if _, ok := g.Next(); ok {
		t.Fatal("record delivered from a failed batch")
	}
	if !errors.Is(g.Err(), boom) {
		t.Fatalf("Err = %v, want %v", g.Err(), boom)
	}
	if _, ok := g.Next(); ok || !errors.Is(g.Err(), boom) {
		t.Fatal("failure is not sticky")
	}
	if calls != 2 {
		t.Errorf("step called %d times after failure, want 2", calls)
	}
}

// TestGeneratorCheckFailure: a per-record validator rejection ends the
// stream with the check's error.
func TestGeneratorCheckFailure(t *testing.T) {
	g := NewGenerator(func(emit func(Record)) (bool, error) {
		emit(Compute(1))
		emit(Compute(-1)) // invalid
		emit(Compute(2))
		return false, nil
	})
	var sv StreamValidator
	g.SetCheck(sv.Check)
	if rec, ok := g.Next(); !ok || rec.N != 1 {
		t.Fatalf("first record = %+v, %v", rec, ok)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("invalid record passed the check")
	}
	if g.Err() == nil {
		t.Fatal("check violation did not surface through Err")
	}
}

// TestStreamValidatorMatchesValidate: the incremental validator and the
// materialized Validate agree on both a well-formed and a malformed
// trace.
func TestStreamValidatorMatchesValidate(t *testing.T) {
	good := &Trace{Records: []Record{
		TxBegin(1), Store(memaddr.NVMBase, 5), TxEnd(1), Load(memaddr.DRAMBase),
	}}
	if err := Validate(good); err != nil {
		t.Fatalf("good trace rejected: %v", err)
	}
	bad := &Trace{Records: []Record{
		Store(memaddr.NVMBase, 5), // persistent store outside tx
	}}
	if err := Validate(bad); err == nil {
		t.Fatal("bad trace accepted")
	}
	open := &Trace{Records: []Record{TxBegin(1)}}
	var v StreamValidator
	for _, r := range open.Records {
		if err := v.Check(r); err != nil {
			t.Fatalf("Check: %v", err)
		}
	}
	if err := v.Finish(); err == nil {
		t.Fatal("open transaction not caught at Finish")
	}
}

// TestRecorderRunningCounters pins the incremental oracle: the running
// instruction/transaction counters match the materialized trace's
// aggregates, and the incremental final image matches the full
// committed-prefix fold.
func TestRecorderRunningCounters(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.SetQuiet(true)
	r.Store(memaddr.NVMBase, 1) // warmup write
	r.SetQuiet(false)
	base := r.Image().Snapshot()
	r.SetFinalBase(base)

	for i := 0; i < 5; i++ {
		r.TxBegin()
		r.Store(memaddr.NVMBase+uint64(8*i), uint64(100+i))
		r.Compute(3)
		r.TxEnd()
		r.Load(memaddr.DRAMBase)
	}
	if got, want := r.Instructions(), r.Trace.Instructions(); got != want {
		t.Errorf("Instructions counter = %d, trace says %d", got, want)
	}
	if got, want := r.Transactions(), r.Trace.Transactions(); got != want {
		t.Errorf("Transactions counter = %d, trace says %d", got, want)
	}
	if got := r.CommittedCount(); got != 5 {
		t.Errorf("CommittedCount = %d, want 5", got)
	}
	want := r.CommittedPrefixImage(base, len(r.Committed()))
	if !r.FinalImage().Equal(want) {
		t.Error("incremental final image differs from committed-prefix fold")
	}
}

// TestRecorderSinkAndRetention: with a sink installed nothing
// materializes, and with retention off the history stays empty while the
// counters and final image keep working.
func TestRecorderSinkAndRetention(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.SetFinalBase(memimage.New())
	r.SetRetainTxHistory(false)
	if r.RetainsTxHistory() {
		t.Fatal("RetainsTxHistory true after disabling")
	}
	var sunk []Record
	r.SetSink(func(rec Record) { sunk = append(sunk, rec) })

	r.TxBegin()
	r.Store(memaddr.NVMBase, 42)
	r.TxEnd()

	if r.Trace.Len() != 0 {
		t.Errorf("trace materialized %d records despite sink", r.Trace.Len())
	}
	if len(sunk) != 3 {
		t.Errorf("sink received %d records, want 3 (begin, store, end)", len(sunk))
	}
	if len(r.Committed()) != 0 {
		t.Errorf("history retained %d txs with retention off", len(r.Committed()))
	}
	if r.CommittedCount() != 1 {
		t.Errorf("CommittedCount = %d, want 1", r.CommittedCount())
	}
	if got := r.FinalImage().ReadWord(memaddr.NVMBase); got != 42 {
		t.Errorf("final image word = %d, want 42", got)
	}
}
