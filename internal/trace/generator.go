package trace

// Generator is a pull-based Reader that produces records on demand
// instead of replaying a materialized trace: when its bounded buffer
// runs dry, it invokes a step function that emits the next batch (one
// workload operation's records). Memory is O(largest single batch), not
// O(trace length) — the streaming pipeline's core primitive.
//
// A Generator is single-use and core-private: the step function runs on
// whichever goroutine calls Next (under the parallel kernel, a tick
// worker), so it must touch only per-core state.
type Generator struct {
	// step emits the next batch of records through emit and reports
	// whether more batches remain. Returning an error (or more=false)
	// ends the stream; the error is sticky and surfaced by Err.
	step func(emit func(Record)) (more bool, err error)
	// check, when set, validates each record as it flows to the
	// consumer (the streaming equivalent of trace.Validate). A check
	// failure ends the stream with a sticky error.
	check func(Record) error

	buf  []Record
	pos  int
	done bool
	err  error

	produced uint64
}

// NewGenerator returns a generator over step. step is called each time
// the buffer empties; it may emit any number of records (including
// zero) per call.
func NewGenerator(step func(emit func(Record)) (more bool, err error)) *Generator {
	return &Generator{step: step}
}

// SetCheck installs a per-record validator applied to each record as it
// is pulled. The first failure ends the stream and is reported by Err.
func (g *Generator) SetCheck(fn func(Record) error) { g.check = fn }

// Next implements Reader: it drains the buffer and refills it from the
// step function as needed.
func (g *Generator) Next() (Record, bool) {
	for g.pos >= len(g.buf) {
		if g.done {
			return Record{}, false
		}
		g.buf = g.buf[:0]
		g.pos = 0
		more, err := g.step(g.emit)
		if err != nil {
			g.fail(err)
			return Record{}, false
		}
		if !more {
			g.done = true
		}
	}
	rec := g.buf[g.pos]
	g.pos++
	if g.check != nil {
		if err := g.check(rec); err != nil {
			g.fail(err)
			return Record{}, false
		}
	}
	g.produced++
	return rec, true
}

// emit appends one record to the bounded buffer; the step function
// receives it as its output channel.
func (g *Generator) emit(rec Record) { g.buf = append(g.buf, rec) }

// fail records the first error and terminates the stream, discarding
// any buffered records (a failed stream must not keep feeding the
// consumer).
func (g *Generator) fail(err error) {
	if g.err == nil {
		g.err = err
	}
	g.done = true
	g.buf = g.buf[:0]
	g.pos = 0
}

// Err returns the sticky stream error: a step failure or a per-record
// check violation. Consumers see an exhausted stream either way, so the
// driver must surface Err after the run.
func (g *Generator) Err() error { return g.err }

// Produced reports how many records the generator has handed out.
func (g *Generator) Produced() uint64 { return g.produced }
