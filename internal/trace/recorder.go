package trace

import (
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
)

// Write is one durable word update, the unit of the recovery oracle.
type Write struct {
	Addr  uint64
	Value uint64
}

// TxRecord is the oracle entry for one transaction: its id and its
// persistent write set in program order.
type TxRecord struct {
	ID     uint64
	Writes []Write
}

// Recorder is the memory interface the workloads program against. It plays
// the role of the compiler plus persistent-heap runtime: every Load/Store
// both updates the architectural program image (so the data structures
// actually work) and appends a trace record. It also assigns transaction
// ids (the CPU's "next TxID register" of §4.2) and maintains the oracle of
// committed transactions used by crash-recovery checking.
type Recorder struct {
	Trace Trace

	img    *memimage.Image
	nextTx uint64
	inTx   bool
	curTx  uint64
	quiet  bool

	pending   []Write
	committed []TxRecord
}

// NewRecorder returns a recorder writing through to img.
func NewRecorder(img *memimage.Image) *Recorder {
	return &Recorder{img: img, nextTx: 1}
}

// Image returns the architectural program image.
func (r *Recorder) Image() *memimage.Image { return r.img }

// SetQuiet toggles warmup mode. While quiet, accesses update the program
// image but emit no trace records and publish nothing to the oracle —
// this models prepopulation whose effects are already durable before the
// measured window starts.
func (r *Recorder) SetQuiet(quiet bool) { r.quiet = quiet }

// Quiet reports whether warmup mode is active.
func (r *Recorder) Quiet() bool { return r.quiet }

// Load reads a 64-bit word, recording an independent access.
func (r *Recorder) Load(addr uint64) uint64 {
	if !r.quiet {
		r.Trace.Append(Load(addr))
	}
	return r.img.ReadWord(addr)
}

// LoadDep reads a 64-bit word whose address was derived from an earlier
// load (pointer chasing); the core serializes it behind outstanding
// loads.
func (r *Recorder) LoadDep(addr uint64) uint64 {
	if !r.quiet {
		r.Trace.Append(LoadDep(addr))
	}
	return r.img.ReadWord(addr)
}

// Store writes a 64-bit word, recording the access. Persistent stores
// inside a transaction join the transaction's oracle write set.
func (r *Recorder) Store(addr, value uint64) {
	r.img.WriteWord(addr, value)
	if r.quiet {
		return
	}
	r.Trace.Append(Store(addr, value))
	if r.inTx && memaddr.IsPersistent(addr) {
		r.pending = append(r.pending, Write{Addr: memaddr.WordAddr(addr), Value: value})
	}
}

// Compute records n non-memory instructions of work.
func (r *Recorder) Compute(n int) {
	if n <= 0 || r.quiet {
		return
	}
	r.Trace.Append(Compute(n))
}

// TxBegin opens a durable transaction and returns its id. Transactions do
// not nest; nesting panics because it is a workload programming error, not
// a runtime condition.
func (r *Recorder) TxBegin() uint64 {
	if r.inTx {
		panic("trace: nested TxBegin")
	}
	id := r.nextTx
	r.nextTx++
	r.inTx, r.curTx = true, id
	r.pending = r.pending[:0]
	if !r.quiet {
		r.Trace.Append(TxBegin(id))
	}
	return id
}

// TxEnd commits the open transaction, adding its write set to the oracle.
func (r *Recorder) TxEnd() {
	if !r.inTx {
		panic("trace: TxEnd outside transaction")
	}
	if !r.quiet {
		r.Trace.Append(TxEnd(r.curTx))
		ws := make([]Write, len(r.pending))
		copy(ws, r.pending)
		r.committed = append(r.committed, TxRecord{ID: r.curTx, Writes: ws})
	}
	r.inTx = false
	r.pending = r.pending[:0]
}

// InTx reports whether a transaction is open.
func (r *Recorder) InTx() bool { return r.inTx }

// Committed returns the oracle: every committed transaction with its
// persistent write set, in commit order.
func (r *Recorder) Committed() []TxRecord { return r.committed }

// CommittedPrefixImage builds the durable NVM image that results from
// applying the first n committed transactions to base (nil base means an
// empty image). Recovery checking compares a post-crash recovered image
// against one of these prefixes.
func (r *Recorder) CommittedPrefixImage(base *memimage.Image, n int) *memimage.Image {
	var img *memimage.Image
	if base != nil {
		img = base.Snapshot()
	} else {
		img = memimage.New()
	}
	if n > len(r.committed) {
		n = len(r.committed)
	}
	for _, tx := range r.committed[:n] {
		for _, w := range tx.Writes {
			img.WriteWord(w.Addr, w.Value)
		}
	}
	return img
}
