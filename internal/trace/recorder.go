package trace

import (
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
)

// Write is one durable word update, the unit of the recovery oracle.
type Write struct {
	Addr  uint64
	Value uint64
}

// TxRecord is the oracle entry for one transaction: its id and its
// persistent write set in program order.
type TxRecord struct {
	ID     uint64
	Writes []Write
}

// Recorder is the memory interface the workloads program against. It plays
// the role of the compiler plus persistent-heap runtime: every Load/Store
// both updates the architectural program image (so the data structures
// actually work) and emits a trace record. It also assigns transaction
// ids (the CPU's "next TxID register" of §4.2) and maintains the oracle of
// committed transactions used by crash-recovery checking.
//
// Records flow either into the materialized Trace (the default) or into a
// caller-provided sink (SetSink) — the streaming pipeline's hook, which
// keeps memory O(1) in the number of records. The oracle likewise has two
// forms: the full per-transaction history (Committed), retained by
// default, and the incremental final image plus running counters, which
// are always maintained and are all a streaming run needs.
type Recorder struct {
	Trace Trace

	img    *memimage.Image
	nextTx uint64
	inTx   bool
	curTx  uint64
	quiet  bool

	// sink, when non-nil, receives every emitted record instead of the
	// materialized Trace.
	sink func(Record)

	// retain keeps the full committed-transaction history. Streaming
	// runs switch it off: the history is O(ops) memory and only crash-
	// prefix checking (CommittedPrefixImage) needs it.
	retain bool

	// Running counters over the measured (non-quiet) window, maintained
	// identically in materialized and streaming modes so consumers need
	// no slice scans.
	instructions uint64
	transactions uint64

	// final is the incremental oracle image: the post-warmup base plus
	// every committed write set folded in at TxEnd. Nil until
	// SetFinalBase.
	final *memimage.Image

	pending   []Write
	committed []TxRecord
}

// NewRecorder returns a recorder writing through to img.
func NewRecorder(img *memimage.Image) *Recorder {
	return &Recorder{img: img, nextTx: 1, retain: true}
}

// Image returns the architectural program image.
func (r *Recorder) Image() *memimage.Image { return r.img }

// SetQuiet toggles warmup mode. While quiet, accesses update the program
// image but emit no trace records and publish nothing to the oracle —
// this models prepopulation whose effects are already durable before the
// measured window starts.
func (r *Recorder) SetQuiet(quiet bool) { r.quiet = quiet }

// Quiet reports whether warmup mode is active.
func (r *Recorder) Quiet() bool { return r.quiet }

// SetSink redirects emitted records to fn instead of the materialized
// Trace. The streaming generator points fn at its bounded per-core
// buffer; nil restores materialization.
func (r *Recorder) SetSink(fn func(Record)) { r.sink = fn }

// SetRetainTxHistory controls whether the full committed-transaction
// history accumulates (the default). Streaming runs disable it; the
// incremental final image and the committed counter remain available.
func (r *Recorder) SetRetainTxHistory(retain bool) { r.retain = retain }

// RetainsTxHistory reports whether Committed holds the full history.
func (r *Recorder) RetainsTxHistory() bool { return r.retain }

// SetFinalBase starts the incremental oracle image from a snapshot of
// base (the post-warmup durable state). Committed write sets fold into
// it at every TxEnd from then on.
func (r *Recorder) SetFinalBase(base *memimage.Image) { r.final = base.Snapshot() }

// FinalImage returns the incremental oracle image: base plus every
// committed transaction so far. In a streaming run it is complete only
// once the generator is exhausted. Nil before SetFinalBase.
func (r *Recorder) FinalImage() *memimage.Image { return r.final }

// Instructions returns the dynamic instruction count of the measured
// window emitted so far (the streaming equivalent of Trace.Instructions).
func (r *Recorder) Instructions() uint64 { return r.instructions }

// Transactions returns the number of committed (TxEnd) transactions
// emitted so far (the streaming equivalent of Trace.Transactions).
func (r *Recorder) Transactions() uint64 { return r.transactions }

// CommittedCount returns how many transactions have committed in the
// measured window, independent of whether their history was retained.
func (r *Recorder) CommittedCount() uint64 { return r.transactions }

// emit routes one record to the sink or the materialized trace,
// maintaining the running counters either way.
func (r *Recorder) emit(rec Record) {
	r.instructions += rec.Instructions()
	if rec.Kind == KindTxEnd {
		r.transactions++
	}
	if r.sink != nil {
		r.sink(rec)
		return
	}
	r.Trace.Append(rec)
}

// Load reads a 64-bit word, recording an independent access.
func (r *Recorder) Load(addr uint64) uint64 {
	if !r.quiet {
		r.emit(Load(addr))
	}
	return r.img.ReadWord(addr)
}

// LoadDep reads a 64-bit word whose address was derived from an earlier
// load (pointer chasing); the core serializes it behind outstanding
// loads.
func (r *Recorder) LoadDep(addr uint64) uint64 {
	if !r.quiet {
		r.emit(LoadDep(addr))
	}
	return r.img.ReadWord(addr)
}

// Store writes a 64-bit word, recording the access. Persistent stores
// inside a transaction join the transaction's oracle write set.
func (r *Recorder) Store(addr, value uint64) {
	r.img.WriteWord(addr, value)
	if r.quiet {
		return
	}
	r.emit(Store(addr, value))
	if r.inTx && memaddr.IsPersistent(addr) {
		r.pending = append(r.pending, Write{Addr: memaddr.WordAddr(addr), Value: value})
	}
}

// Compute records n non-memory instructions of work.
func (r *Recorder) Compute(n int) {
	if n <= 0 || r.quiet {
		return
	}
	r.emit(Compute(n))
}

// TxBegin opens a durable transaction and returns its id. Transactions do
// not nest; nesting panics because it is a workload programming error, not
// a runtime condition.
func (r *Recorder) TxBegin() uint64 {
	if r.inTx {
		panic("trace: nested TxBegin")
	}
	id := r.nextTx
	r.nextTx++
	r.inTx, r.curTx = true, id
	r.pending = r.pending[:0]
	if !r.quiet {
		r.emit(TxBegin(id))
	}
	return id
}

// TxEnd commits the open transaction, adding its write set to the oracle
// (the retained history when enabled, and the incremental final image
// always).
func (r *Recorder) TxEnd() {
	if !r.inTx {
		panic("trace: TxEnd outside transaction")
	}
	if !r.quiet {
		r.emit(TxEnd(r.curTx))
		if r.retain {
			ws := make([]Write, len(r.pending))
			copy(ws, r.pending)
			r.committed = append(r.committed, TxRecord{ID: r.curTx, Writes: ws})
		}
		if r.final != nil {
			for _, w := range r.pending {
				r.final.WriteWord(w.Addr, w.Value)
			}
		}
	}
	r.inTx = false
	r.pending = r.pending[:0]
}

// InTx reports whether a transaction is open.
func (r *Recorder) InTx() bool { return r.inTx }

// Committed returns the oracle: every committed transaction with its
// persistent write set, in commit order. Empty when history retention is
// off (use CommittedCount and FinalImage instead).
func (r *Recorder) Committed() []TxRecord { return r.committed }

// CommittedPrefixImage builds the durable NVM image that results from
// applying the first n committed transactions to base (nil base means an
// empty image). Recovery checking compares a post-crash recovered image
// against one of these prefixes. Requires the retained history.
func (r *Recorder) CommittedPrefixImage(base *memimage.Image, n int) *memimage.Image {
	var img *memimage.Image
	if base != nil {
		img = base.Snapshot()
	} else {
		img = memimage.New()
	}
	if n > len(r.committed) {
		n = len(r.committed)
	}
	for _, tx := range r.committed[:n] {
		for _, w := range tx.Writes {
			img.WriteWord(w.Addr, w.Value)
		}
	}
	return img
}
