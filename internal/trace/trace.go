package trace

import (
	"fmt"

	"pmemaccel/internal/memaddr"
)

// Trace is an in-memory sequence of records.
type Trace struct {
	Records []Record
}

// Append adds records to the trace.
func (t *Trace) Append(recs ...Record) {
	t.Records = append(t.Records, recs...)
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// Instructions returns the total dynamic instruction count of the trace.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, r := range t.Records {
		n += r.Instructions()
	}
	return n
}

// Transactions returns the number of committed (TxEnd) transactions.
func (t *Trace) Transactions() uint64 {
	var n uint64
	for _, r := range t.Records {
		if r.Kind == KindTxEnd {
			n++
		}
	}
	return n
}

// Reader yields trace records one at a time. The core model consumes a
// Reader so that mechanisms can interpose rewriting readers without
// materializing the transformed trace.
type Reader interface {
	// Next returns the next record. ok is false when the trace is
	// exhausted.
	Next() (rec Record, ok bool)
}

// SliceReader reads a materialized Trace.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewReader returns a Reader over t.
func NewReader(t *Trace) *SliceReader {
	return &SliceReader{recs: t.Records}
}

// Next implements Reader.
func (r *SliceReader) Next() (Record, bool) {
	if r.pos >= len(r.recs) {
		return Record{}, false
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, true
}

// Remaining reports how many records are left.
func (r *SliceReader) Remaining() int { return len(r.recs) - r.pos }

// Stats summarizes the static composition of a trace.
type Stats struct {
	Records          int
	Instructions     uint64
	Loads            uint64
	Stores           uint64
	PersistentLoads  uint64
	PersistentStores uint64
	Transactions     uint64
	CLWBs            uint64
	SFences          uint64
	// MaxTxStores is the largest number of persistent stores in any
	// single transaction — the quantity that determines transaction
	// cache pressure.
	MaxTxStores int
}

// Summarize computes Stats for a trace.
func Summarize(t *Trace) Stats {
	var s Stats
	s.Records = len(t.Records)
	inTx := false
	txStores := 0
	for _, r := range t.Records {
		s.Instructions += r.Instructions()
		switch r.Kind {
		case KindLoad:
			s.Loads++
			if memaddr.IsPersistent(r.Addr) {
				s.PersistentLoads++
			}
		case KindStore:
			s.Stores++
			if memaddr.IsPersistent(r.Addr) {
				s.PersistentStores++
				if inTx {
					txStores++
				}
			}
		case KindTxBegin:
			inTx, txStores = true, 0
		case KindTxEnd:
			s.Transactions++
			if txStores > s.MaxTxStores {
				s.MaxTxStores = txStores
			}
			inTx = false
		case KindCLWB:
			s.CLWBs++
		case KindSFence:
			s.SFences++
		}
	}
	return s
}

// StreamValidator checks trace well-formedness one record at a time, so
// a streaming run validates records as they flow by instead of scanning
// a materialized trace:
//   - transactions do not nest and every begin has a matching end with the
//     same id;
//   - transaction ids strictly increase;
//   - persistent stores appear only inside transactions (the workloads'
//     contract: every durable update is transactional);
//   - compute batches are positive;
//   - load/store addresses are word aligned and in a mapped region.
//
// Feed every record to Check in order, then call Finish once the stream
// ends. The zero value is ready to use.
type StreamValidator struct {
	idx    int64
	inTx   bool
	curID  uint64
	lastID uint64
}

// Check validates the next record of the stream, returning the first
// violation found.
func (v *StreamValidator) Check(r Record) error {
	i := v.idx
	v.idx++
	switch r.Kind {
	case KindTxBegin:
		if v.inTx {
			return fmt.Errorf("record %d: nested tx_begin(%d) inside tx %d", i, r.TxID, v.curID)
		}
		if r.TxID <= v.lastID && v.lastID != 0 {
			return fmt.Errorf("record %d: tx id %d not increasing (last %d)", i, r.TxID, v.lastID)
		}
		v.inTx, v.curID, v.lastID = true, r.TxID, r.TxID
	case KindTxEnd:
		if !v.inTx {
			return fmt.Errorf("record %d: tx_end(%d) outside transaction", i, r.TxID)
		}
		if r.TxID != v.curID {
			return fmt.Errorf("record %d: tx_end(%d) does not match open tx %d", i, r.TxID, v.curID)
		}
		v.inTx = false
	case KindStore:
		if memaddr.IsPersistent(r.Addr) && !v.inTx {
			return fmt.Errorf("record %d: persistent store to %#x outside transaction", i, r.Addr)
		}
		fallthrough
	case KindLoad:
		if !memaddr.IsWordAligned(r.Addr) {
			return fmt.Errorf("record %d: %s address %#x not word aligned", i, r.Kind, r.Addr)
		}
		if memaddr.Classify(r.Addr) == memaddr.SpaceInvalid {
			return fmt.Errorf("record %d: %s address %#x outside every region", i, r.Kind, r.Addr)
		}
	case KindCompute:
		if r.N <= 0 {
			return fmt.Errorf("record %d: compute batch of %d instructions", i, r.N)
		}
	}
	return nil
}

// Finish validates end-of-stream conditions (no transaction left open).
func (v *StreamValidator) Finish() error {
	if v.inTx {
		return fmt.Errorf("trace ends inside open transaction %d", v.curID)
	}
	return nil
}

// Validate checks a materialized trace's well-formedness (the
// StreamValidator conditions applied to every record), returning the
// first violation found.
func Validate(t *Trace) error {
	var v StreamValidator
	for _, r := range t.Records {
		if err := v.Check(r); err != nil {
			return err
		}
	}
	return v.Finish()
}
