package trace

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
)

func TestRecorderLoadStoreThroughImage(t *testing.T) {
	r := NewRecorder(memimage.New())
	a := memaddr.DRAMBase + 64
	r.Store(a, 99)
	if got := r.Load(a); got != 99 {
		t.Fatalf("Load = %d, want 99", got)
	}
	if r.Trace.Len() != 2 {
		t.Fatalf("trace has %d records, want 2", r.Trace.Len())
	}
	if r.Trace.Records[0].Kind != KindStore || r.Trace.Records[1].Kind != KindLoad {
		t.Fatalf("record kinds = %v,%v", r.Trace.Records[0].Kind, r.Trace.Records[1].Kind)
	}
}

func TestRecorderTransactionIDsIncrease(t *testing.T) {
	r := NewRecorder(memimage.New())
	id1 := r.TxBegin()
	r.TxEnd()
	id2 := r.TxBegin()
	r.TxEnd()
	if id2 <= id1 {
		t.Fatalf("tx ids %d then %d, want strictly increasing", id1, id2)
	}
}

func TestRecorderOracleTracksPersistentWritesOnly(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.TxBegin()
	r.Store(memaddr.NVMBase+8, 1)
	r.Store(memaddr.DRAMBase+8, 2) // volatile, not in oracle
	r.Store(memaddr.NVMBase+16, 3)
	r.TxEnd()
	c := r.Committed()
	if len(c) != 1 {
		t.Fatalf("committed %d txs, want 1", len(c))
	}
	if len(c[0].Writes) != 2 {
		t.Fatalf("oracle has %d writes, want 2 (persistent only)", len(c[0].Writes))
	}
	if c[0].Writes[0] != (Write{memaddr.NVMBase + 8, 1}) ||
		c[0].Writes[1] != (Write{memaddr.NVMBase + 16, 3}) {
		t.Fatalf("oracle writes = %+v", c[0].Writes)
	}
}

func TestRecorderAbortsNotInOracle(t *testing.T) {
	// A transaction never ended does not commit: the pending set is not
	// published.
	r := NewRecorder(memimage.New())
	r.TxBegin()
	r.Store(memaddr.NVMBase+8, 1)
	if len(r.Committed()) != 0 {
		t.Fatal("open transaction appeared in oracle")
	}
}

func TestRecorderNestedTxPanics(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.TxBegin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested TxBegin did not panic")
		}
	}()
	r.TxBegin()
}

func TestRecorderTxEndOutsidePanics(t *testing.T) {
	r := NewRecorder(memimage.New())
	defer func() {
		if recover() == nil {
			t.Fatal("TxEnd outside tx did not panic")
		}
	}()
	r.TxEnd()
}

func TestComputeZeroIsDropped(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.Compute(0)
	r.Compute(-3)
	if r.Trace.Len() != 0 {
		t.Fatal("non-positive compute batches were recorded")
	}
}

func TestCommittedPrefixImage(t *testing.T) {
	r := NewRecorder(memimage.New())
	a, b := memaddr.NVMBase+8, memaddr.NVMBase+16
	r.TxBegin()
	r.Store(a, 1)
	r.TxEnd()
	r.TxBegin()
	r.Store(a, 2)
	r.Store(b, 5)
	r.TxEnd()

	img0 := r.CommittedPrefixImage(nil, 0)
	if img0.ReadWord(a) != 0 {
		t.Fatal("prefix 0 should be empty")
	}
	img1 := r.CommittedPrefixImage(nil, 1)
	if img1.ReadWord(a) != 1 || img1.ReadWord(b) != 0 {
		t.Fatalf("prefix 1: a=%d b=%d, want 1,0", img1.ReadWord(a), img1.ReadWord(b))
	}
	img2 := r.CommittedPrefixImage(nil, 2)
	if img2.ReadWord(a) != 2 || img2.ReadWord(b) != 5 {
		t.Fatalf("prefix 2: a=%d b=%d, want 2,5", img2.ReadWord(a), img2.ReadWord(b))
	}
	// Overshooting n clamps.
	img9 := r.CommittedPrefixImage(nil, 9)
	if !img9.Equal(img2) {
		t.Fatal("overshot prefix differs from full prefix")
	}
}

func TestCommittedPrefixImageWithBase(t *testing.T) {
	base := memimage.New()
	base.WriteWord(memaddr.NVMBase+64, 42)
	r := NewRecorder(memimage.New())
	r.TxBegin()
	r.Store(memaddr.NVMBase+8, 1)
	r.TxEnd()
	img := r.CommittedPrefixImage(base, 1)
	if img.ReadWord(memaddr.NVMBase+64) != 42 {
		t.Fatal("base contents lost")
	}
	if base.ReadWord(memaddr.NVMBase+8) != 0 {
		t.Fatal("base image mutated")
	}
}

// Property: a recorder-produced trace always validates, and the final
// committed-prefix image agrees with the architectural image on every
// oracle address.
func TestQuickRecorderTracesValidate(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Val  uint64
		InTx bool
		Vol  bool
		Comp uint8
	}) bool {
		r := NewRecorder(memimage.New())
		for _, op := range ops {
			addr := memaddr.NVMBase + uint64(op.Off)*8
			if op.Vol {
				addr = memaddr.DRAMBase + uint64(op.Off)*8
			}
			if op.InTx && !op.Vol {
				r.TxBegin()
				r.Store(addr, op.Val)
				r.TxEnd()
			} else if op.Vol {
				r.Store(addr, op.Val)
			} else {
				r.Load(addr)
			}
			r.Compute(int(op.Comp%7) + 1)
		}
		if Validate(&r.Trace) != nil {
			return false
		}
		final := r.CommittedPrefixImage(nil, len(r.Committed()))
		ok := true
		final.ForEach(func(a, v uint64) {
			if r.Image().ReadWord(a) != v {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuietModeUpdatesImageOnly(t *testing.T) {
	r := NewRecorder(memimage.New())
	r.SetQuiet(true)
	if !r.Quiet() {
		t.Fatal("Quiet() false after SetQuiet(true)")
	}
	r.TxBegin()
	r.Store(memaddr.NVMBase+8, 7)
	r.TxEnd()
	r.Compute(10)
	if got := r.Load(memaddr.NVMBase + 8); got != 7 {
		t.Fatalf("quiet Load = %d, want 7", got)
	}
	r.SetQuiet(false)
	if r.Trace.Len() != 0 {
		t.Fatalf("quiet mode recorded %d records", r.Trace.Len())
	}
	if len(r.Committed()) != 0 {
		t.Fatal("quiet transaction reached the oracle")
	}
	// Tx ids keep advancing across quiet transactions so measured-window
	// ids never collide with warmup ids.
	id := r.TxBegin()
	r.TxEnd()
	if id < 2 {
		t.Fatalf("post-warmup tx id = %d, want >= 2", id)
	}
}
