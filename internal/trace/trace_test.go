package trace

import (
	"testing"

	"pmemaccel/internal/memaddr"
)

func nvm(off uint64) uint64  { return memaddr.NVMBase + off }
func dram(off uint64) uint64 { return memaddr.DRAMBase + off }

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindCompute: "compute", KindLoad: "load", KindStore: "store",
		KindTxBegin: "tx_begin", KindTxEnd: "tx_end",
		KindCLWB: "clwb", KindSFence: "sfence",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestInstructionsAccounting(t *testing.T) {
	if got := Compute(7).Instructions(); got != 7 {
		t.Errorf("Compute(7).Instructions() = %d, want 7", got)
	}
	for _, r := range []Record{Load(8), Store(8, 1), TxBegin(1), TxEnd(1), CLWB(8), SFence()} {
		if r.Instructions() != 1 {
			t.Errorf("%v.Instructions() = %d, want 1", r.Kind, r.Instructions())
		}
	}
}

func TestTraceInstructionsAndTransactions(t *testing.T) {
	var tr Trace
	tr.Append(TxBegin(1), Compute(10), Store(nvm(0), 5), TxEnd(1), Compute(3))
	if got := tr.Instructions(); got != 16 {
		t.Errorf("Instructions = %d, want 16", got)
	}
	if got := tr.Transactions(); got != 1 {
		t.Errorf("Transactions = %d, want 1", got)
	}
}

func TestReader(t *testing.T) {
	var tr Trace
	tr.Append(Compute(1), Load(dram(8)), Store(dram(16), 2))
	r := NewReader(&tr)
	if r.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", r.Remaining())
	}
	for i := 0; i < 3; i++ {
		rec, ok := r.Next()
		if !ok {
			t.Fatalf("Next() exhausted at %d", i)
		}
		if rec != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, tr.Records[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next() returned a record past the end")
	}
}

func TestSummarize(t *testing.T) {
	var tr Trace
	tr.Append(
		TxBegin(1),
		Compute(4),
		Load(nvm(0)),
		Store(nvm(8), 1),
		Store(nvm(16), 2),
		TxEnd(1),
		Load(dram(8)),
		Store(dram(16), 3),
		TxBegin(2),
		Store(nvm(24), 4),
		TxEnd(2),
		CLWB(nvm(8)),
		SFence(),
	)
	s := Summarize(&tr)
	if s.Loads != 2 || s.PersistentLoads != 1 {
		t.Errorf("loads = %d/%d persistent, want 2/1", s.Loads, s.PersistentLoads)
	}
	if s.Stores != 4 || s.PersistentStores != 3 {
		t.Errorf("stores = %d/%d persistent, want 4/3", s.Stores, s.PersistentStores)
	}
	if s.Transactions != 2 {
		t.Errorf("transactions = %d, want 2", s.Transactions)
	}
	if s.MaxTxStores != 2 {
		t.Errorf("MaxTxStores = %d, want 2", s.MaxTxStores)
	}
	if s.CLWBs != 1 || s.SFences != 1 {
		t.Errorf("clwb/sfence = %d/%d, want 1/1", s.CLWBs, s.SFences)
	}
	if s.Instructions != 4+12 {
		t.Errorf("Instructions = %d, want 16", s.Instructions)
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	var tr Trace
	tr.Append(
		Compute(2),
		Load(dram(8)),
		TxBegin(1), Store(nvm(8), 1), TxEnd(1),
		Store(dram(8), 9), // volatile store outside tx is fine
		TxBegin(2), Store(nvm(16), 2), TxEnd(2),
	)
	if err := Validate(&tr); err != nil {
		t.Fatalf("Validate rejected well-formed trace: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
	}{
		{"nested begin", []Record{TxBegin(1), TxBegin(2)}},
		{"end without begin", []Record{TxEnd(1)}},
		{"mismatched end", []Record{TxBegin(1), TxEnd(2)}},
		{"non-increasing ids", []Record{TxBegin(2), TxEnd(2), TxBegin(2), TxEnd(2)}},
		{"persistent store outside tx", []Record{Store(nvm(8), 1)}},
		{"unterminated tx", []Record{TxBegin(1), Store(nvm(8), 1)}},
		{"misaligned load", []Record{Load(dram(9))}},
		{"unmapped address", []Record{Load(4)}},
		{"empty compute", []Record{Compute(0)}},
	}
	for _, c := range cases {
		tr := &Trace{Records: c.recs}
		if err := Validate(tr); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", c.name)
		}
	}
}
