// Package cpu models the processor cores: a quantitative 4-wide core that
// consumes a memory-reference trace, with blocking loads, a store buffer,
// clwb/sfence semantics, and the TxID/Mode registers of §4.2. Persistence
// mechanisms observe transaction boundaries and persistent stores through
// the Persistence interface; everything else is mechanism-independent.
package cpu

import (
	"math"
	"math/bits"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// StoreAction tells the core how to treat one persistent store.
type StoreAction struct {
	// Retry stalls the core one cycle and asks again (transaction
	// cache full, or a shared-line ownership request in flight).
	Retry bool
	// Abort squashes the current transaction: the core lost a
	// shared-line conflict arbitration. It discards the in-flight
	// record, waits out a bounded exponential backoff, and replays the
	// transaction from TX_BEGIN out of its replay buffer.
	Abort bool
	// TxTag and Uncommitted tag the store's cache line for mechanisms
	// that track transaction ownership in the hierarchy (Kiln).
	TxTag       uint64
	Uncommitted bool
}

// Persistence is the mechanism-facing contract. The zero-value
// NullPersistence is the no-persistence baseline.
type Persistence interface {
	// TxBegin observes TX_BEGIN retirement.
	TxBegin(core int, txID uint64)
	// TxEnd observes TX_END retirement. Returning true stalls the core
	// until resume is called (commit flushes). The mechanism must call
	// resume exactly once iff it returns true.
	TxEnd(core int, txID uint64, resume func()) bool
	// Store observes a persistent store about to leave the core.
	Store(core int, txID uint64, addr, value uint64) StoreAction
}

// NullPersistence takes no action on any event.
type NullPersistence struct{}

// TxBegin implements Persistence.
func (NullPersistence) TxBegin(int, uint64) {}

// TxEnd implements Persistence.
func (NullPersistence) TxEnd(int, uint64, func()) bool { return false }

// Store implements Persistence.
func (NullPersistence) Store(int, uint64, uint64, uint64) StoreAction { return StoreAction{} }

// Config sizes one core.
type Config struct {
	// IssueWidth is instructions retired per cycle (Table 2: 4).
	IssueWidth int
	// StoreBuffer bounds outstanding stores.
	StoreBuffer int
	// MLP bounds outstanding independent loads — the out-of-order
	// window's memory-level parallelism. Dependent (pointer-chase)
	// loads always serialize behind outstanding loads.
	MLP int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.StoreBuffer == 0 {
		c.StoreBuffer = 16
	}
	if c.MLP == 0 {
		c.MLP = 8
	}
	return c
}

// CycleBreakdown attributes every cycle of a core's run to exactly one
// category: each Tick of an unfinished core increments one bucket, and
// Idle is filled at collection time to the end of the measurement
// window, so the buckets sum to the window (±1 cycle of rounding at the
// finish boundary). This decomposes an end-of-run figure like "98.5% of
// Optimal" into which stall category costs the missing fraction.
type CycleBreakdown struct {
	// Compute: the core retired instructions (or exhausted its issue
	// width) without hitting a stall.
	Compute uint64
	// LoadStall: a load blocked on dependence or the MLP window.
	LoadStall uint64
	// StoreBufStall: the store buffer was full.
	StoreBufStall uint64
	// TCFullStall: a persistent store was rejected by the mechanism
	// (transaction cache full) and retried.
	TCFullStall uint64
	// FenceStall: an sfence waited on outstanding stores/flushes.
	FenceStall uint64
	// CommitWait: TX_END waited on the persistence mechanism (or on its
	// own transaction's outstanding accesses).
	CommitWait uint64
	// DrainWait: the trace is exhausted but outstanding memory
	// operations are still completing.
	DrainWait uint64
	// AbortStall: the core sat out a conflict-abort backoff window
	// before replaying the squashed transaction.
	AbortStall uint64
	// Idle: cycles after this core finished, up to the end of the
	// measurement window (filled at collection time).
	Idle uint64
}

// Busy sums the non-idle buckets: the cycles the core was attributed
// while running.
func (b CycleBreakdown) Busy() uint64 {
	return b.Compute + b.LoadStall + b.StoreBufStall + b.TCFullStall +
		b.FenceStall + b.CommitWait + b.DrainWait + b.AbortStall
}

// Total sums every bucket including Idle.
func (b CycleBreakdown) Total() uint64 { return b.Busy() + b.Idle }

// BreakdownCategories names the buckets in presentation order, aligned
// with CycleBreakdown.Values.
var BreakdownCategories = []string{
	"compute", "load-stall", "storebuf-stall", "tc-full-stall",
	"fence-stall", "commit-wait", "drain-wait", "abort-stall", "idle",
}

// Values returns the buckets in BreakdownCategories order.
func (b CycleBreakdown) Values() []uint64 {
	return []uint64{b.Compute, b.LoadStall, b.StoreBufStall, b.TCFullStall,
		b.FenceStall, b.CommitWait, b.DrainWait, b.AbortStall, b.Idle}
}

// Stats accumulates one core's activity.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Transactions uint64

	PersistentLoads          uint64
	PersistentLoadLatencySum uint64
	// PloadHist buckets persistent-load latencies by log2: bucket i
	// counts loads with latency in [2^(i-1), 2^i) cycles (bucket 0 is
	// zero-latency; the last bucket is open-ended). Drives tail-latency
	// percentiles beyond Figure 10's mean.
	PloadHist [18]uint64

	// Stall cycles by cause.
	StallLoad       uint64
	StallStoreBuf   uint64
	StallStoreRetry uint64
	StallFence      uint64
	StallCommit     uint64
	StallAbort      uint64

	// Contention outcomes: transactions squashed by shared-line
	// conflict arbitration (TxAborts), replays started (TxRetries —
	// equal to TxAborts under abort-and-retry), and the instructions
	// the aborted attempts retired before being squashed
	// (WastedInstructions; these also remain in Instructions, so IPC
	// reflects the wasted work's cost).
	TxAborts           uint64
	TxRetries          uint64
	WastedInstructions uint64

	// Breakdown attributes each active cycle to exactly one category
	// (the stall counters above may coexist with partial issue; the
	// breakdown is the exhaustive per-cycle accounting).
	Breakdown CycleBreakdown

	// DoneAt is the cycle the core fully quiesced (0 while running).
	DoneAt uint64
}

// Core executes one trace stream. Register with the kernel to run.
type Core struct {
	k    *sim.Ctx
	id   int
	cfg  Config
	hier *cache.Hierarchy
	pers Persistence
	rd   trace.Reader
	// onStoreRetire applies a store's value to the live (volatile
	// shadow) image the moment it enters the memory system.
	onStoreRetire func(addr, value uint64)

	cur         trace.Record
	hasCur      bool
	computeLeft int
	exhausted   bool

	// Transaction replay buffer: every record fetched while inside a
	// transaction is retained until the TX_END retires, so a
	// conflict-aborted transaction can re-execute from TX_BEGIN without
	// re-pulling the (possibly streaming, non-rewindable) reader.
	// replayIdx tracks the consumed prefix; on abort it rewinds to 0.
	txBuf     []trace.Record
	replayIdx int
	inTx      bool

	// Conflict-abort state: while aborting, the core sits out an
	// exponential-backoff window (a scheduled wake event ends it, so
	// fast-forward skips the stall) before replaying from txBuf.
	aborting      bool
	abortAttempts int
	txInstrBase   uint64 // Instructions at TX_BEGIN, for wasted-work accounting

	mode uint64 // Mode/TxID register: nonzero inside a transaction

	outStores  int
	outFlushes int
	outLoads   int
	fenceWait  bool
	commitWait bool

	// probe is the observability recorder (nil when disabled — the
	// zero-overhead path). txStart remembers the cycle the current
	// transaction's TX_BEGIN retired, for the lifecycle span.
	probe   *obs.Probe
	txStart uint64

	// hTxLat and hCommitWait stream per-transaction latencies into the
	// metrics registry (nil when metrics are disabled — same
	// nil-pointer discipline as probe).
	hTxLat      *metrics.Histogram
	hCommitWait *metrics.Histogram

	// fr is the transaction flight recorder (nil when sampling is off):
	// the core marks flight begin and commit checkpoints.
	fr *txflight.Recorder

	stats Stats
}

// New builds a core and registers it with the kernel through its
// context. In parallel-kernel runs the context is the core's group
// binding: the core ticks on a worker and routes every shared-state
// interaction (hierarchy accesses, flushes, live-image writes) through
// the context's journal. In serial runs the context is a plain kernel
// passthrough. onStoreRetire may be nil.
func New(k *sim.Ctx, id int, cfg Config, hier *cache.Hierarchy, pers Persistence,
	rd trace.Reader, onStoreRetire func(addr, value uint64)) *Core {
	cfg = cfg.WithDefaults()
	if pers == nil {
		pers = NullPersistence{}
	}
	c := &Core{k: k, id: id, cfg: cfg, hier: hier, pers: pers, rd: rd, onStoreRetire: onStoreRetire}
	k.Register(c)
	return c
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// SetProbe attaches the observability recorder (nil disables probing).
func (c *Core) SetProbe(p *obs.Probe) { c.probe = p }

// SetFlight attaches the transaction flight recorder (nil disables
// flight sampling).
func (c *Core) SetFlight(fr *txflight.Recorder) { c.fr = fr }

// SetMetrics attaches the streaming histograms for transaction latency
// (TX_BEGIN retirement to commit completion) and commit-wait stalls
// (TX_END to mechanism resume). Nil histograms disable the observations.
func (c *Core) SetMetrics(txLat, commitWait *metrics.Histogram) {
	c.hTxLat = txLat
	c.hCommitWait = commitWait
}

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Mode returns the TxID/Mode register (0 = normal mode).
func (c *Core) Mode() uint64 { return c.mode }

// Finished reports whether the trace is exhausted and every outstanding
// access has completed.
func (c *Core) Finished() bool {
	return c.exhausted && !c.hasCur && !c.aborting && c.outStores == 0 &&
		c.outFlushes == 0 && c.outLoads == 0 && !c.commitWait
}

// fetch pulls the next record if none is current: first from the
// unconsumed tail of the transaction replay buffer (after an abort),
// then from the reader. Reader records fetched inside a transaction are
// appended to the buffer as they arrive, so the buffer always holds the
// full consumed prefix of the open transaction.
func (c *Core) fetch() bool {
	if c.hasCur {
		return true
	}
	if c.replayIdx < len(c.txBuf) {
		c.cur = c.txBuf[c.replayIdx]
		c.replayIdx++
		c.hasCur = true
		if c.cur.Kind == trace.KindCompute {
			c.computeLeft = c.cur.N
		}
		return true
	}
	rec, ok := c.rd.Next()
	if !ok {
		c.exhausted = true
		return false
	}
	if rec.Kind == trace.KindTxBegin {
		c.inTx = true
		c.txBuf = c.txBuf[:0]
		c.replayIdx = 0
	}
	if c.inTx {
		c.txBuf = append(c.txBuf, rec)
		c.replayIdx++
	}
	c.cur = rec
	c.hasCur = true
	if rec.Kind == trace.KindCompute {
		c.computeLeft = rec.N
	}
	return true
}

// abortTx squashes the open transaction after a lost conflict
// arbitration: the in-flight store is discarded (it stays in txBuf),
// the replay cursor rewinds to TX_BEGIN, and the core enters a bounded
// exponential backoff — 8·2^min(attempts-1,6) cycles plus a small
// deterministic per-core jitter so symmetric losers desynchronize. The
// wake is a scheduled kernel event, so quiescence fast-forward skips
// the stall window.
func (c *Core) abortTx() {
	c.stats.TxAborts++
	c.stats.TxRetries++
	c.stats.WastedInstructions += c.stats.Instructions - c.txInstrBase
	c.abortAttempts++
	c.mode = 0
	c.hasCur = false
	c.computeLeft = 0
	c.replayIdx = 0
	c.aborting = true
	attempts := c.abortAttempts - 1
	if attempts > 6 {
		attempts = 6
	}
	backoff := (uint64(8) << uint(attempts)) + uint64((c.id*7)%8)
	c.k.Schedule(backoff, func() {
		c.aborting = false
	})
}

func (c *Core) retire() { c.hasCur = false }

// finishCheck stamps DoneAt the moment the core quiesces. It runs at the
// end of every tick and after every completion callback, so DoneAt is
// exact regardless of which event finished last.
func (c *Core) finishCheck() {
	if c.stats.DoneAt == 0 && c.Finished() {
		c.stats.DoneAt = c.k.Now()
	}
}

// Tick implements sim.Tickable: retire up to IssueWidth instructions,
// honouring stall conditions. Each tick of an unfinished core attributes
// exactly one CycleBreakdown bucket — the condition that terminated the
// cycle (partial issue followed by a stall is attributed to the stall).
func (c *Core) Tick(now uint64) {
	defer func() {
		c.peekExhaustion()
		c.finishCheck()
	}()
	if c.Finished() {
		return
	}
	bd := &c.stats.Breakdown
	if c.aborting {
		c.stats.StallAbort++
		bd.AbortStall++
		return
	}
	if c.commitWait {
		c.stats.StallCommit++
		bd.CommitWait++
		return
	}
	if c.fenceWait {
		if c.outStores == 0 && c.outFlushes == 0 {
			c.fenceWait = false
		} else {
			c.stats.StallFence++
			bd.FenceStall++
			return
		}
	}
	budget := c.cfg.IssueWidth
	for budget > 0 {
		if !c.fetch() {
			if budget == c.cfg.IssueWidth {
				// Nothing retired this cycle: the core only waits for
				// its outstanding accesses to drain.
				bd.DrainWait++
			} else {
				bd.Compute++
			}
			return
		}
		switch c.cur.Kind {
		case trace.KindCompute:
			take := budget
			if take > c.computeLeft {
				take = c.computeLeft
			}
			c.computeLeft -= take
			budget -= take
			c.stats.Instructions += uint64(take)
			if c.computeLeft == 0 {
				c.retire()
			}

		case trace.KindLoad:
			// Dependent loads serialize behind every outstanding
			// load; independent loads overlap up to the MLP window.
			if c.cur.Dep && c.outLoads > 0 {
				c.stats.StallLoad++
				bd.LoadStall++
				return
			}
			if !c.cur.Dep && c.outLoads >= c.cfg.MLP {
				c.stats.StallLoad++
				bd.LoadStall++
				return
			}
			c.issueLoad(c.cur.Addr, now)
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindStore:
			if c.outStores >= c.cfg.StoreBuffer {
				c.stats.StallStoreBuf++
				bd.StoreBufStall++
				return
			}
			persistent := memaddr.IsPersistent(c.cur.Addr)
			act := StoreAction{}
			if persistent {
				act = c.pers.Store(c.id, c.mode, c.cur.Addr, c.cur.Value)
				if act.Abort {
					c.abortTx()
					c.stats.StallAbort++
					bd.AbortStall++
					return
				}
				if act.Retry {
					c.stats.StallStoreRetry++
					bd.TCFullStall++
					return
				}
			}
			c.outStores++
			// Capture the record fields: under the parallel kernel the
			// live-image write and hierarchy access are journaled and
			// replay after this Tick, when c.cur already holds a later
			// record.
			addr, value := c.cur.Addr, c.cur.Value
			tag, unc := act.TxTag, act.Uncommitted
			done := func() { c.outStores--; c.finishCheck() }
			if c.k.Deferring() {
				c.k.Defer(func() { c.retireStore(addr, value, persistent, tag, unc, done) })
			} else {
				c.retireStore(addr, value, persistent, tag, unc, done)
			}
			c.stats.Stores++
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindTxBegin:
			c.mode = c.cur.TxID
			c.txStart = now
			c.txInstrBase = c.stats.Instructions
			if c.fr.Sampled(c.cur.TxID) {
				txID := c.cur.TxID
				if c.k.Deferring() {
					c.k.Defer(func() { c.fr.Begin(c.id, txID, now) })
				} else {
					c.fr.Begin(c.id, txID, now)
				}
			}
			c.pers.TxBegin(c.id, c.cur.TxID)
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindTxEnd:
			// Commit retires in order: the transaction's loads and
			// stores must have completed first.
			if c.outStores > 0 || c.outLoads > 0 {
				c.stats.StallCommit++
				bd.CommitWait++
				return
			}
			id := c.cur.TxID
			c.stats.Instructions++
			c.retire()
			c.mode = 0
			// The transaction is past its conflict window: drop the
			// replay buffer and reset the backoff ladder.
			c.inTx = false
			c.txBuf = c.txBuf[:0]
			c.replayIdx = 0
			c.abortAttempts = 0
			txStart := c.txStart
			if c.pers.TxEnd(c.id, id, func() {
				c.commitWait = false
				c.stats.Transactions++
				end := c.k.Now()
				c.probe.Span(obs.KCommitWait, c.id, id, now, end, 0)
				c.probe.Span(obs.KTx, c.id, id, txStart, end, 0)
				c.hCommitWait.Observe(end - now)
				c.hTxLat.Observe(end - txStart)
				// Resume fires from a kernel event on the coordinator,
				// so the flight commit records directly.
				c.fr.Commit(c.id, id, now, end)
				c.finishCheck()
			}) {
				c.commitWait = true
				bd.CommitWait++
				return
			}
			c.stats.Transactions++
			if c.k.Deferring() {
				if c.probe != nil || c.fr != nil {
					c.k.Defer(func() {
						c.probe.Span(obs.KTx, c.id, id, txStart, now, 0)
						c.fr.Commit(c.id, id, now, now)
					})
				}
			} else {
				c.probe.Span(obs.KTx, c.id, id, txStart, now, 0)
				c.hCommitWait.Observe(0)
				c.hTxLat.Observe(now - txStart)
				c.fr.Commit(c.id, id, now, now)
			}
			budget--

		case trace.KindCLWB, trace.KindCLFlush:
			// Flushes are posted: they flow down the memory pipeline
			// without stalling retirement. Ordering against later
			// code is the job of sfence.
			c.outFlushes++
			flush := c.hier.Flush
			if c.cur.Kind == trace.KindCLFlush {
				flush = c.hier.FlushInv
			}
			addr := c.cur.Addr
			done := func() { c.outFlushes--; c.finishCheck() }
			if c.k.Deferring() {
				c.k.Defer(func() { flush(c.id, addr, done) })
			} else {
				flush(c.id, addr, done)
			}
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindSFence:
			c.stats.Instructions++
			c.retire()
			if c.outStores > 0 || c.outFlushes > 0 {
				c.fenceWait = true
				bd.FenceStall++
				return
			}
			budget--
		}
	}
	bd.Compute++
}

// Idle implements sim.Quiescer: report true only when Tick is provably a
// no-op at the current state, apart from the per-cycle stall accounting
// that SkipCycles applies in bulk. The conditions mirror Tick's early
// returns exactly, in Tick's precedence order:
//
//   - finished: Tick returns immediately;
//   - commit wait: the mechanism's resume callback (a kernel event) is
//     the only exit;
//   - fence wait with outstanding stores/flushes: their completion
//     callbacks (events) are the only exits;
//   - blocked load at the head of the trace: dependent behind an
//     outstanding load, or independent at the MLP limit;
//   - store at the head with a full store buffer (checked before the
//     mechanism sees the store, so Tick touches nothing else);
//   - trace exhausted, waiting for outstanding accesses to drain.
//
// A persistent store that would be presented to the mechanism reports
// busy: pers.Store may mutate mechanism state (TC full-reject counters,
// probe instants) every retry cycle, so it is not provably a no-op.
func (c *Core) Idle() bool {
	if c.Finished() {
		return true
	}
	if c.aborting {
		// The backoff wake is a scheduled event; until it fires, Tick
		// only accrues abort-stall cycles.
		return true
	}
	if c.commitWait {
		return true
	}
	if c.fenceWait && (c.outStores > 0 || c.outFlushes > 0) {
		return true
	}
	if !c.hasCur {
		// Exhausted with outstanding accesses: pure drain wait. A core
		// that could still fetch makes progress.
		return c.exhausted
	}
	switch c.cur.Kind {
	case trace.KindLoad:
		if c.cur.Dep {
			return c.outLoads > 0
		}
		return c.outLoads >= c.cfg.MLP
	case trace.KindStore:
		return c.outStores >= c.cfg.StoreBuffer
	}
	return false
}

// SkipCycles implements sim.CycleSkipper: bulk-charge n skipped cycles
// to exactly the stall bucket n idle Ticks would have accrued one cycle
// at a time (the cases, and their precedence, mirror Idle and Tick).
func (c *Core) SkipCycles(n uint64) {
	if c.Finished() {
		return
	}
	bd := &c.stats.Breakdown
	switch {
	case c.aborting:
		c.stats.StallAbort += n
		bd.AbortStall += n
	case c.commitWait:
		c.stats.StallCommit += n
		bd.CommitWait += n
	case c.fenceWait && (c.outStores > 0 || c.outFlushes > 0):
		// The guard mirrors Tick: a fence whose outstanding accesses
		// already completed is cleared on the next Tick and the cycle
		// is charged to whatever the head record stalls on instead.
		c.stats.StallFence += n
		bd.FenceStall += n
	case c.hasCur && c.cur.Kind == trace.KindLoad:
		c.stats.StallLoad += n
		bd.LoadStall += n
	case c.hasCur && c.cur.Kind == trace.KindStore:
		c.stats.StallStoreBuf += n
		bd.StoreBufStall += n
	default:
		bd.DrainWait += n
	}
}

// peekExhaustion discovers end-of-stream eagerly so Finished (and DoneAt)
// reflect the cycle the last instruction retired, not one cycle later.
func (c *Core) peekExhaustion() {
	if !c.hasCur && !c.exhausted {
		c.fetch()
	}
}

// retireStore pushes one retired store into the shared memory system:
// live-image write first, then the hierarchy access, the same order the
// serial sweep produces. Under the parallel kernel it runs at journal
// replay on the coordinator.
func (c *Core) retireStore(addr, value uint64, persistent bool, tag uint64, unc bool, done func()) {
	if c.onStoreRetire != nil {
		c.onStoreRetire(addr, value)
	}
	c.hier.Access(c.id, addr, true, persistent, tag, unc, done)
}

func (c *Core) issueLoad(addr uint64, now uint64) {
	c.stats.Loads++
	persistent := memaddr.IsPersistent(addr)
	c.outLoads++
	done := func() {
		c.outLoads--
		if persistent {
			lat := c.k.Now() - now
			c.stats.PersistentLoads++
			c.stats.PersistentLoadLatencySum += lat
			idx := bits.Len64(lat)
			if idx >= len(c.stats.PloadHist) {
				idx = len(c.stats.PloadHist) - 1
			}
			c.stats.PloadHist[idx]++
		}
		c.finishCheck()
	}
	if c.k.Deferring() {
		c.k.Defer(func() { c.hier.Access(c.id, addr, false, persistent, 0, false, done) })
	} else {
		c.hier.Access(c.id, addr, false, persistent, 0, false, done)
	}
}

// PloadPercentile returns an upper bound on the given percentile of the
// persistent-load latency distribution, using the log2 histogram
// buckets. The histogram population is authoritative: an empty (or
// all-zero) histogram yields 0 regardless of the PersistentLoads
// counter, p <= 0 (or NaN) yields 0, and p >= 1 is clamped to the
// maximum — so the function never walks off the end of the buckets.
func PloadPercentile(s Stats, p float64) uint64 {
	var total uint64
	for _, n := range s.PloadHist {
		total += n
	}
	if total == 0 || math.IsNaN(p) || p <= 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, n := range s.PloadHist {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return (uint64(1) << uint(i)) - 1
		}
	}
	// Unreachable: target <= total guarantees the loop returns.
	return ^uint64(0)
}

// MergeHist sums two histograms (cross-core aggregation).
func MergeHist(a, b [18]uint64) [18]uint64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}
