// Package cpu models the processor cores: a quantitative 4-wide core that
// consumes a memory-reference trace, with blocking loads, a store buffer,
// clwb/sfence semantics, and the TxID/Mode registers of §4.2. Persistence
// mechanisms observe transaction boundaries and persistent stores through
// the Persistence interface; everything else is mechanism-independent.
package cpu

import (
	"math"
	"math/bits"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

// StoreAction tells the core how to treat one persistent store.
type StoreAction struct {
	// Retry stalls the core one cycle and asks again (transaction
	// cache full).
	Retry bool
	// TxTag and Uncommitted tag the store's cache line for mechanisms
	// that track transaction ownership in the hierarchy (Kiln).
	TxTag       uint64
	Uncommitted bool
}

// Persistence is the mechanism-facing contract. The zero-value
// NullPersistence is the no-persistence baseline.
type Persistence interface {
	// TxBegin observes TX_BEGIN retirement.
	TxBegin(core int, txID uint64)
	// TxEnd observes TX_END retirement. Returning true stalls the core
	// until resume is called (commit flushes). The mechanism must call
	// resume exactly once iff it returns true.
	TxEnd(core int, txID uint64, resume func()) bool
	// Store observes a persistent store about to leave the core.
	Store(core int, txID uint64, addr, value uint64) StoreAction
}

// NullPersistence takes no action on any event.
type NullPersistence struct{}

// TxBegin implements Persistence.
func (NullPersistence) TxBegin(int, uint64) {}

// TxEnd implements Persistence.
func (NullPersistence) TxEnd(int, uint64, func()) bool { return false }

// Store implements Persistence.
func (NullPersistence) Store(int, uint64, uint64, uint64) StoreAction { return StoreAction{} }

// Config sizes one core.
type Config struct {
	// IssueWidth is instructions retired per cycle (Table 2: 4).
	IssueWidth int
	// StoreBuffer bounds outstanding stores.
	StoreBuffer int
	// MLP bounds outstanding independent loads — the out-of-order
	// window's memory-level parallelism. Dependent (pointer-chase)
	// loads always serialize behind outstanding loads.
	MLP int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.StoreBuffer == 0 {
		c.StoreBuffer = 16
	}
	if c.MLP == 0 {
		c.MLP = 8
	}
	return c
}

// Stats accumulates one core's activity.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Transactions uint64

	PersistentLoads          uint64
	PersistentLoadLatencySum uint64
	// PloadHist buckets persistent-load latencies by log2: bucket i
	// counts loads with latency in [2^(i-1), 2^i) cycles (bucket 0 is
	// zero-latency; the last bucket is open-ended). Drives tail-latency
	// percentiles beyond Figure 10's mean.
	PloadHist [18]uint64

	// Stall cycles by cause.
	StallLoad       uint64
	StallStoreBuf   uint64
	StallStoreRetry uint64
	StallFence      uint64
	StallCommit     uint64

	// DoneAt is the cycle the core fully quiesced (0 while running).
	DoneAt uint64
}

// Core executes one trace stream. Register with the kernel to run.
type Core struct {
	k    *sim.Kernel
	id   int
	cfg  Config
	hier *cache.Hierarchy
	pers Persistence
	rd   trace.Reader
	// onStoreRetire applies a store's value to the live (volatile
	// shadow) image the moment it enters the memory system.
	onStoreRetire func(addr, value uint64)

	cur         trace.Record
	hasCur      bool
	computeLeft int
	exhausted   bool

	mode uint64 // Mode/TxID register: nonzero inside a transaction

	outStores  int
	outFlushes int
	outLoads   int
	fenceWait  bool
	commitWait bool

	stats Stats
}

// New builds a core and registers it with the kernel. onStoreRetire may
// be nil.
func New(k *sim.Kernel, id int, cfg Config, hier *cache.Hierarchy, pers Persistence,
	rd trace.Reader, onStoreRetire func(addr, value uint64)) *Core {
	cfg = cfg.WithDefaults()
	if pers == nil {
		pers = NullPersistence{}
	}
	c := &Core{k: k, id: id, cfg: cfg, hier: hier, pers: pers, rd: rd, onStoreRetire: onStoreRetire}
	k.Register(c)
	return c
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Mode returns the TxID/Mode register (0 = normal mode).
func (c *Core) Mode() uint64 { return c.mode }

// Finished reports whether the trace is exhausted and every outstanding
// access has completed.
func (c *Core) Finished() bool {
	return c.exhausted && !c.hasCur && c.outStores == 0 && c.outFlushes == 0 &&
		c.outLoads == 0 && !c.commitWait
}

// fetch pulls the next record if none is current.
func (c *Core) fetch() bool {
	if c.hasCur {
		return true
	}
	rec, ok := c.rd.Next()
	if !ok {
		c.exhausted = true
		return false
	}
	c.cur = rec
	c.hasCur = true
	if rec.Kind == trace.KindCompute {
		c.computeLeft = rec.N
	}
	return true
}

func (c *Core) retire() { c.hasCur = false }

// finishCheck stamps DoneAt the moment the core quiesces. It runs at the
// end of every tick and after every completion callback, so DoneAt is
// exact regardless of which event finished last.
func (c *Core) finishCheck() {
	if c.stats.DoneAt == 0 && c.Finished() {
		c.stats.DoneAt = c.k.Now()
	}
}

// Tick implements sim.Tickable: retire up to IssueWidth instructions,
// honouring stall conditions.
func (c *Core) Tick(now uint64) {
	defer func() {
		c.peekExhaustion()
		c.finishCheck()
	}()
	if c.Finished() {
		return
	}
	if c.commitWait {
		c.stats.StallCommit++
		return
	}
	if c.fenceWait {
		if c.outStores == 0 && c.outFlushes == 0 {
			c.fenceWait = false
		} else {
			c.stats.StallFence++
			return
		}
	}
	budget := c.cfg.IssueWidth
	for budget > 0 {
		if !c.fetch() {
			return
		}
		switch c.cur.Kind {
		case trace.KindCompute:
			take := budget
			if take > c.computeLeft {
				take = c.computeLeft
			}
			c.computeLeft -= take
			budget -= take
			c.stats.Instructions += uint64(take)
			if c.computeLeft == 0 {
				c.retire()
			}

		case trace.KindLoad:
			// Dependent loads serialize behind every outstanding
			// load; independent loads overlap up to the MLP window.
			if c.cur.Dep && c.outLoads > 0 {
				c.stats.StallLoad++
				return
			}
			if !c.cur.Dep && c.outLoads >= c.cfg.MLP {
				c.stats.StallLoad++
				return
			}
			c.issueLoad(c.cur.Addr, now)
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindStore:
			if c.outStores >= c.cfg.StoreBuffer {
				c.stats.StallStoreBuf++
				return
			}
			persistent := memaddr.IsPersistent(c.cur.Addr)
			act := StoreAction{}
			if persistent {
				act = c.pers.Store(c.id, c.mode, c.cur.Addr, c.cur.Value)
				if act.Retry {
					c.stats.StallStoreRetry++
					return
				}
			}
			if c.onStoreRetire != nil {
				c.onStoreRetire(c.cur.Addr, c.cur.Value)
			}
			c.outStores++
			c.hier.Access(c.id, c.cur.Addr, true, persistent, act.TxTag, act.Uncommitted,
				func() { c.outStores--; c.finishCheck() })
			c.stats.Stores++
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindTxBegin:
			c.mode = c.cur.TxID
			c.pers.TxBegin(c.id, c.cur.TxID)
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindTxEnd:
			// Commit retires in order: the transaction's loads and
			// stores must have completed first.
			if c.outStores > 0 || c.outLoads > 0 {
				c.stats.StallCommit++
				return
			}
			id := c.cur.TxID
			c.stats.Instructions++
			c.retire()
			c.mode = 0
			if c.pers.TxEnd(c.id, id, func() {
				c.commitWait = false
				c.stats.Transactions++
				c.finishCheck()
			}) {
				c.commitWait = true
				return
			}
			c.stats.Transactions++
			budget--

		case trace.KindCLWB, trace.KindCLFlush:
			// Flushes are posted: they flow down the memory pipeline
			// without stalling retirement. Ordering against later
			// code is the job of sfence.
			c.outFlushes++
			flush := c.hier.Flush
			if c.cur.Kind == trace.KindCLFlush {
				flush = c.hier.FlushInv
			}
			flush(c.id, c.cur.Addr, func() { c.outFlushes--; c.finishCheck() })
			c.stats.Instructions++
			budget--
			c.retire()

		case trace.KindSFence:
			c.stats.Instructions++
			c.retire()
			if c.outStores > 0 || c.outFlushes > 0 {
				c.fenceWait = true
				return
			}
			budget--
		}
	}
}

// peekExhaustion discovers end-of-stream eagerly so Finished (and DoneAt)
// reflect the cycle the last instruction retired, not one cycle later.
func (c *Core) peekExhaustion() {
	if !c.hasCur && !c.exhausted {
		c.fetch()
	}
}

func (c *Core) issueLoad(addr uint64, now uint64) {
	c.stats.Loads++
	persistent := memaddr.IsPersistent(addr)
	c.outLoads++
	c.hier.Access(c.id, addr, false, persistent, 0, false, func() {
		c.outLoads--
		if persistent {
			lat := c.k.Now() - now
			c.stats.PersistentLoads++
			c.stats.PersistentLoadLatencySum += lat
			idx := bits.Len64(lat)
			if idx >= len(c.stats.PloadHist) {
				idx = len(c.stats.PloadHist) - 1
			}
			c.stats.PloadHist[idx]++
		}
		c.finishCheck()
	})
}

// PloadPercentile returns an upper bound on the given percentile of the
// persistent-load latency distribution (p in (0,1]), using the log2
// histogram buckets.
func PloadPercentile(s Stats, p float64) uint64 {
	if s.PersistentLoads == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(s.PersistentLoads)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.PloadHist {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return (uint64(1) << uint(i)) - 1
		}
	}
	return ^uint64(0)
}

// MergeHist sums two histograms (cross-core aggregation).
func MergeHist(a, b [18]uint64) [18]uint64 {
	for i := range a {
		a[i] += b[i]
	}
	return a
}
