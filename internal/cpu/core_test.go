package cpu

import (
	"math"
	"testing"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
)

type fakeMem struct {
	k      *sim.Kernel
	reads  int
	writes int
}

func (m *fakeMem) Read(lineAddr uint64, done func()) {
	m.reads++
	m.k.Schedule(130, done)
}

func (m *fakeMem) Write(lineAddr uint64, apply, onDurable func()) {
	m.writes++
	m.k.Schedule(152, func() {
		if apply != nil {
			apply()
		}
		if onDurable != nil {
			onDurable()
		}
	})
}

func testHier(k *sim.Kernel) (*cache.Hierarchy, *fakeMem) {
	mem := &fakeMem{k: k}
	h := cache.New(k, cache.Config{
		L1Size: 1 << 10, L1Ways: 2, L1Latency: 1,
		L2Size: 4 << 10, L2Ways: 4, L2Latency: 9,
		LLCSize: 16 << 10, LLCWays: 4, LLCLatency: 20,
	}, mem, cache.Hooks{}, 1)
	return h, mem
}

func runCore(t *testing.T, tr *trace.Trace, pers Persistence) (*sim.Kernel, *Core) {
	t.Helper()
	k := sim.NewKernel()
	h, _ := testHier(k)
	c := New(k.NewCtx(), 0, Config{}, h, pers, trace.NewReader(tr), nil)
	if _, ok := k.RunUntil(c.Finished, 10_000_000); !ok {
		t.Fatal("core did not finish")
	}
	return k, c
}

func TestComputeRetiresAtIssueWidth(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.Compute(40))
	k, c := runCore(t, &tr, nil)
	if c.Stats().Instructions != 40 {
		t.Fatalf("instructions = %d, want 40", c.Stats().Instructions)
	}
	// 40 instructions at width 4 = 10 cycles.
	if got := c.Stats().DoneAt; got != 10 {
		t.Fatalf("finished at cycle %d, want 10", got)
	}
	_ = k
}

func TestDependentLoadSerializes(t *testing.T) {
	// A dependent load may not issue while another load is outstanding:
	// two chained misses cost two full memory latencies.
	var chained, overlapped trace.Trace
	chained.Append(trace.Load(memaddr.DRAMBase), trace.LoadDep(memaddr.DRAMBase+4096))
	overlapped.Append(trace.Load(memaddr.DRAMBase), trace.Load(memaddr.DRAMBase+4096))
	_, a := runCore(t, &chained, nil)
	_, b := runCore(t, &overlapped, nil)
	if a.Stats().StallLoad < 100 {
		t.Fatalf("dependent load stalled %d cycles, want >= 100", a.Stats().StallLoad)
	}
	if a.Stats().DoneAt < b.Stats().DoneAt+100 {
		t.Fatalf("chained loads (%d) not ~one latency slower than overlapped (%d)",
			a.Stats().DoneAt, b.Stats().DoneAt)
	}
}

func TestIndependentLoadsOverlapUpToMLP(t *testing.T) {
	// 8 independent misses to distinct lines finish in far less than 8
	// serial latencies.
	var tr trace.Trace
	for i := 0; i < 8; i++ {
		tr.Append(trace.Load(memaddr.DRAMBase + uint64(i)*4096))
	}
	_, c := runCore(t, &tr, nil)
	if c.Stats().DoneAt > 600 {
		t.Fatalf("8 independent misses took %d cycles, want overlapped (< 600)", c.Stats().DoneAt)
	}
}

func TestMLPWindowLimitsOutstandingLoads(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 20; i++ {
		tr.Append(trace.Load(memaddr.DRAMBase + uint64(i)*4096))
	}
	k := sim.NewKernel()
	h, _ := testHier(k)
	c := New(k.NewCtx(), 0, Config{MLP: 2}, h, nil, trace.NewReader(&tr), nil)
	k.RunUntil(c.Finished, 10_000_000)
	if c.Stats().StallLoad == 0 {
		t.Fatal("MLP=2 window never stalled 20 parallel misses")
	}
}

func TestPersistentLoadLatencyMeasured(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.Load(memaddr.NVMBase), trace.LoadDep(memaddr.NVMBase))
	_, c := runCore(t, &tr, nil)
	s := c.Stats()
	if s.PersistentLoads != 2 {
		t.Fatalf("persistent loads = %d, want 2", s.PersistentLoads)
	}
	// First misses everywhere (~161), second hits L1 (1 cycle).
	if s.PersistentLoadLatencySum < 150 || s.PersistentLoadLatencySum > 200 {
		t.Fatalf("persistent load latency sum = %d, want ~162", s.PersistentLoadLatencySum)
	}
}

func TestStoresArePosted(t *testing.T) {
	// Stores don't block the core: 8 stores + compute should finish
	// far sooner than 8 serialized miss latencies.
	var tr trace.Trace
	tr.Append(trace.TxBegin(1))
	for i := 0; i < 8; i++ {
		tr.Append(trace.Store(memaddr.NVMBase+uint64(i)*64, uint64(i)))
	}
	tr.Append(trace.TxEnd(1), trace.Compute(8))
	_, c := runCore(t, &tr, nil)
	s := c.Stats()
	if s.Stores != 8 || s.Transactions != 1 {
		t.Fatalf("stores/tx = %d/%d, want 8/1", s.Stores, s.Transactions)
	}
	// TxEnd drains the store buffer (commit ordering), so the run costs
	// about one round of merged misses, not eight serialized ones.
	if s.DoneAt > 500 {
		t.Fatalf("finished at %d, want < 500", s.DoneAt)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.TxBegin(1))
	for i := 0; i < 64; i++ {
		tr.Append(trace.Store(memaddr.NVMBase+uint64(i)*64, uint64(i)))
	}
	tr.Append(trace.TxEnd(1))
	_, c := runCore(t, &tr, nil)
	if c.Stats().StallStoreBuf == 0 {
		t.Fatal("64 missing stores never filled the 16-entry store buffer")
	}
}

func TestModeRegisterTracksTransactions(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.TxBegin(5), trace.Store(memaddr.NVMBase, 1), trace.TxEnd(5))
	k := sim.NewKernel()
	h, _ := testHier(k)
	var modeAtStore uint64
	pers := &recordingPersistence{onStore: func(core int, txID uint64) { modeAtStore = txID }}
	c := New(k.NewCtx(), 0, Config{}, h, pers, trace.NewReader(&tr), nil)
	k.RunUntil(c.Finished, 1_000_000)
	if modeAtStore != 5 {
		t.Fatalf("mode at store = %d, want 5", modeAtStore)
	}
	if c.Mode() != 0 {
		t.Fatalf("mode after TxEnd = %d, want 0 (normal mode)", c.Mode())
	}
}

type recordingPersistence struct {
	NullPersistence
	onStore  func(core int, txID uint64)
	begins   []uint64
	ends     []uint64
	stallTx  bool
	resumeAt uint64
	k        *sim.Kernel
}

func (p *recordingPersistence) TxBegin(core int, txID uint64) { p.begins = append(p.begins, txID) }

func (p *recordingPersistence) TxEnd(core int, txID uint64, resume func()) bool {
	p.ends = append(p.ends, txID)
	if p.stallTx {
		p.k.Schedule(p.resumeAt, resume)
		return true
	}
	return false
}

func (p *recordingPersistence) Store(core int, txID uint64, addr, value uint64) StoreAction {
	if p.onStore != nil {
		p.onStore(core, txID)
	}
	return StoreAction{}
}

func TestTxEndStallWaitsForResume(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.TxBegin(1), trace.Store(memaddr.NVMBase, 1), trace.TxEnd(1), trace.Compute(4))
	k := sim.NewKernel()
	h, _ := testHier(k)
	pers := &recordingPersistence{stallTx: true, resumeAt: 300, k: k}
	c := New(k.NewCtx(), 0, Config{}, h, pers, trace.NewReader(&tr), nil)
	k.RunUntil(c.Finished, 1_000_000)
	s := c.Stats()
	if s.StallCommit < 250 {
		t.Fatalf("commit stall = %d cycles, want >= 250", s.StallCommit)
	}
	if s.Transactions != 1 {
		t.Fatalf("transactions = %d, want 1", s.Transactions)
	}
}

type retryOncePersistence struct {
	NullPersistence
	retries int
}

func (p *retryOncePersistence) Store(core int, txID uint64, addr, value uint64) StoreAction {
	if p.retries > 0 {
		p.retries--
		return StoreAction{Retry: true}
	}
	return StoreAction{}
}

func TestStoreRetryStalls(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.TxBegin(1), trace.Store(memaddr.NVMBase, 1), trace.TxEnd(1))
	k := sim.NewKernel()
	h, _ := testHier(k)
	pers := &retryOncePersistence{retries: 5}
	c := New(k.NewCtx(), 0, Config{}, h, pers, trace.NewReader(&tr), nil)
	k.RunUntil(c.Finished, 1_000_000)
	if c.Stats().StallStoreRetry != 5 {
		t.Fatalf("retry stalls = %d, want 5", c.Stats().StallStoreRetry)
	}
	if c.Stats().Stores != 1 {
		t.Fatalf("stores = %d, want 1 (eventually issued)", c.Stats().Stores)
	}
}

func TestVolatileStoreSkipsPersistence(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.Store(memaddr.DRAMBase, 7))
	k := sim.NewKernel()
	h, _ := testHier(k)
	called := false
	pers := &recordingPersistence{onStore: func(int, uint64) { called = true }}
	c := New(k.NewCtx(), 0, Config{}, h, pers, trace.NewReader(&tr), nil)
	k.RunUntil(c.Finished, 1_000_000)
	if called {
		t.Fatal("Persistence.Store called for a volatile store")
	}
}

func TestSFenceWaitsForFlushes(t *testing.T) {
	var tr trace.Trace
	tr.Append(
		trace.TxBegin(1),
		trace.Store(memaddr.NVMBase, 1),
		trace.CLWB(memaddr.NVMBase),
		trace.SFence(),
		trace.TxEnd(1),
	)
	_, c := runCore(t, &tr, nil)
	s := c.Stats()
	if s.StallFence < 100 {
		t.Fatalf("fence stall = %d, want >= 100 (NVM write latency)", s.StallFence)
	}
}

func TestCLWBIsPostedWithoutFence(t *testing.T) {
	// A clwb without a following sfence does not stall retirement: the
	// core accrues no fence-stall cycles even though the flush takes an
	// NVM write latency to drain.
	var noFence, withFence trace.Trace
	noFence.Append(trace.TxBegin(1), trace.Store(memaddr.NVMBase, 1), trace.CLWB(memaddr.NVMBase), trace.TxEnd(1), trace.Compute(40))
	withFence.Append(trace.TxBegin(1), trace.Store(memaddr.NVMBase, 1), trace.CLWB(memaddr.NVMBase), trace.SFence(), trace.TxEnd(1), trace.Compute(40))
	_, a := runCore(t, &noFence, nil)
	_, b := runCore(t, &withFence, nil)
	if a.Stats().StallFence != 0 {
		t.Fatalf("unfenced clwb accrued %d fence-stall cycles", a.Stats().StallFence)
	}
	if b.Stats().StallFence < 100 {
		t.Fatalf("fenced clwb accrued only %d fence-stall cycles", b.Stats().StallFence)
	}
}

func TestOnStoreRetireAppliesValues(t *testing.T) {
	var tr trace.Trace
	tr.Append(trace.TxBegin(1), trace.Store(memaddr.NVMBase, 42), trace.TxEnd(1))
	k := sim.NewKernel()
	h, _ := testHier(k)
	got := map[uint64]uint64{}
	c := New(k.NewCtx(), 0, Config{}, h, nil, trace.NewReader(&tr), func(a, v uint64) { got[a] = v })
	k.RunUntil(c.Finished, 1_000_000)
	if got[memaddr.NVMBase] != 42 {
		t.Fatalf("live image = %v, want 42 at NVMBase", got)
	}
}

func TestIPCNearOneForL1Resident(t *testing.T) {
	// A loop over one hot line: after the cold miss, loads hit L1 and
	// compute flows at width 4. IPC should comfortably exceed 1.
	var tr trace.Trace
	for i := 0; i < 500; i++ {
		tr.Append(trace.Load(memaddr.DRAMBase), trace.Compute(8))
	}
	_, c := runCore(t, &tr, nil)
	s := c.Stats()
	ipc := float64(s.Instructions) / float64(s.DoneAt)
	if ipc < 1.0 {
		t.Fatalf("hot-loop IPC = %.2f, want >= 1", ipc)
	}
}

func TestPloadHistogramAndPercentile(t *testing.T) {
	var tr trace.Trace
	// One slow (miss ~161cy) and three fast (L1-hit, 1cy) persistent loads.
	tr.Append(trace.Load(memaddr.NVMBase))
	for i := 0; i < 3; i++ {
		tr.Append(trace.LoadDep(memaddr.NVMBase))
	}
	_, c := runCore(t, &tr, nil)
	s := c.Stats()
	var total uint64
	for _, n := range s.PloadHist {
		total += n
	}
	if total != 4 {
		t.Fatalf("histogram holds %d loads, want 4", total)
	}
	// P50 covers the fast loads; P99 must reach the miss bucket.
	p50 := PloadPercentile(s, 0.5)
	p99 := PloadPercentile(s, 0.99)
	if p50 > 3 {
		t.Fatalf("P50 = %d, want <= 3 (L1 hits)", p50)
	}
	if p99 < 128 {
		t.Fatalf("P99 = %d, want >= 128 (covers the miss)", p99)
	}
}

func TestPloadPercentileEmpty(t *testing.T) {
	if PloadPercentile(Stats{}, 0.99) != 0 {
		t.Fatal("empty stats percentile not 0")
	}
	// The histogram is authoritative: a nonzero PersistentLoads counter
	// with an empty histogram (e.g. stats merged from partial sources)
	// must not panic or divide by zero.
	if got := PloadPercentile(Stats{PersistentLoads: 7}, 0.5); got != 0 {
		t.Fatalf("empty histogram with PersistentLoads=7: got %d, want 0", got)
	}
}

func TestPloadPercentileSingleBucket(t *testing.T) {
	var s Stats
	s.PloadHist[3] = 10 // every load in [4,7] cycles
	want := uint64(1<<3) - 1
	for _, p := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := PloadPercentile(s, p); got != want {
			t.Errorf("P%.0f = %d, want %d (single bucket)", p*100, got, want)
		}
	}
	// Bucket 0 reports latency 0 (sub-cycle bound).
	var z Stats
	z.PloadHist[0] = 5
	if got := PloadPercentile(z, 0.99); got != 0 {
		t.Errorf("bucket-0 percentile = %d, want 0", got)
	}
}

func TestPloadPercentileDegenerateP(t *testing.T) {
	var s Stats
	s.PloadHist[2] = 4
	if got := PloadPercentile(s, 0); got != 0 {
		t.Errorf("p=0: got %d, want 0", got)
	}
	if got := PloadPercentile(s, -0.5); got != 0 {
		t.Errorf("p<0: got %d, want 0", got)
	}
	if got := PloadPercentile(s, math.NaN()); got != 0 {
		t.Errorf("p=NaN: got %d, want 0", got)
	}
	// p > 1 clamps to the last occupied bucket rather than overrunning.
	want := uint64(1<<2) - 1
	if got := PloadPercentile(s, 2.5); got != want {
		t.Errorf("p>1: got %d, want %d", got, want)
	}
}

func TestMergeHist(t *testing.T) {
	a := [18]uint64{1, 2}
	b := [18]uint64{0, 3, 5}
	m := MergeHist(a, b)
	if m[0] != 1 || m[1] != 5 || m[2] != 5 {
		t.Fatalf("merge = %v", m[:3])
	}
}
