// Package memaddr defines the simulated physical address map shared by the
// whole system: a volatile DRAM region, a persistent NVM data region and a
// persistent NVM log region (used by the software-logging mechanism), plus
// cache-line and word arithmetic helpers.
//
// The map mirrors Figure 1 of the paper: the hybrid main memory exposes a
// DRAM range for temporary data and an NVM range for persistent data. The
// regions are placed far apart so a stray address is detected rather than
// silently classified.
package memaddr

import "fmt"

const (
	// WordSize is the access granularity of the workloads: all
	// manipulated key-value pairs in the benchmark suite are 64 bits.
	WordSize = 8
	// LineSize is the cache-line size in bytes across the hierarchy.
	LineSize = 64
	// WordsPerLine is the number of 64-bit words per cache line.
	WordsPerLine = LineSize / WordSize
)

// Region bases. The gap between bases bounds the maximum region size.
const (
	DRAMBase   uint64 = 0x0000_1000_0000
	NVMBase    uint64 = 0x1000_0000_0000
	NVMLogBase uint64 = 0x2000_0000_0000
	regionSpan uint64 = 0x1000_0000_0000
)

// Space classifies an address into one of the memory spaces.
type Space int

const (
	// SpaceInvalid marks an address outside every region.
	SpaceInvalid Space = iota
	// SpaceDRAM is the volatile region backing non-persistent data.
	SpaceDRAM
	// SpaceNVM is the persistent data region.
	SpaceNVM
	// SpaceNVMLog is the persistent region reserved for write-ahead
	// logs (software persistence) and hardware copy-on-write overflow.
	SpaceNVMLog
)

// String returns a short name for the space.
func (s Space) String() string {
	switch s {
	case SpaceDRAM:
		return "DRAM"
	case SpaceNVM:
		return "NVM"
	case SpaceNVMLog:
		return "NVMLog"
	default:
		return "invalid"
	}
}

// Classify reports which space addr falls into.
func Classify(addr uint64) Space {
	switch {
	case addr >= NVMLogBase && addr < NVMLogBase+regionSpan:
		return SpaceNVMLog
	case addr >= NVMBase && addr < NVMBase+regionSpan:
		return SpaceNVM
	case addr >= DRAMBase && addr < NVMBase:
		return SpaceDRAM
	default:
		return SpaceInvalid
	}
}

// IsPersistent reports whether addr lives in nonvolatile memory (data or
// log region). Persistent addresses are the ones whose stores require
// atomicity and durability guarantees.
func IsPersistent(addr uint64) bool {
	s := Classify(addr)
	return s == SpaceNVM || s == SpaceNVMLog
}

// LineAddr returns the address of the cache line containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// LineOffset returns the byte offset of addr within its cache line.
func LineOffset(addr uint64) uint64 { return addr & uint64(LineSize-1) }

// WordAddr returns the address of the 64-bit word containing addr.
func WordAddr(addr uint64) uint64 { return addr &^ uint64(WordSize-1) }

// WordIndex returns the index (0..7) of addr's word within its line.
func WordIndex(addr uint64) int {
	return int((addr & uint64(LineSize-1)) / WordSize)
}

// IsWordAligned reports whether addr is 8-byte aligned.
func IsWordAligned(addr uint64) bool { return addr%WordSize == 0 }

// IsLineAligned reports whether addr is 64-byte aligned.
func IsLineAligned(addr uint64) bool { return addr%LineSize == 0 }

// Partition carves region [base, base+size) into n equally sized,
// line-aligned sub-regions, one per core, so multiprogrammed workloads are
// guaranteed disjoint. It panics if the region cannot hold n line-aligned
// partitions.
func Partition(base, size uint64, n int) []Range {
	if n <= 0 {
		panic("memaddr: Partition with non-positive n")
	}
	per := (size / uint64(n)) &^ uint64(LineSize-1)
	if per == 0 {
		panic(fmt.Sprintf("memaddr: region of %d bytes cannot hold %d line-aligned partitions", size, n))
	}
	out := make([]Range, n)
	for i := range out {
		out[i] = Range{Base: base + uint64(i)*per, Size: per}
	}
	return out
}

// Per-core carving sizes. Unlike Partition, which divides a fixed region
// by the core count (so every core's base moves when the machine width
// changes), these carve a fixed-size slice per core at a fixed offset:
// core c's addresses are identical whether the machine has 1, 4, 16 or
// 64 cores. The sizes equal the historical 4-core Partition slices
// (NVM 2^32/4, DRAM 2^30/4, log 2^36/4), so 4-core layouts — the
// paper's machine — are byte-for-byte unchanged.
const (
	// MaxCores bounds the machine width: 64 cores of PerCoreNVMSize
	// exactly fill [NVMBase, SharedNVMBase).
	MaxCores = 64
	// PerCoreNVMSize is each core's private persistent-data carving.
	PerCoreNVMSize uint64 = 1 << 30
	// PerCoreDRAMSize is each core's private volatile carving.
	PerCoreDRAMSize uint64 = 1 << 28
	// PerCoreLogSize is each core's write-ahead-log / overflow carving.
	PerCoreLogSize uint64 = 1 << 34
	// SharedNVMBase starts the cross-core shared persistent region,
	// immediately after the 64 private NVM carvings.
	SharedNVMBase = NVMBase + uint64(MaxCores)*PerCoreNVMSize
	// SharedNVMSize bounds the shared persistent region.
	SharedNVMSize uint64 = 1 << 30
)

// SharedNVM is the persistent region addressable by every core: the home
// of contended data structures (workload.BankShared). It classifies as
// SpaceNVM like the private carvings; only the conflict-arbitration layer
// treats it specially.
var SharedNVM = Range{Base: SharedNVMBase, Size: SharedNVMSize}

// IsShared reports whether addr falls in the cross-core shared
// persistent region.
func IsShared(addr uint64) bool { return SharedNVM.Contains(addr) }

// PerCoreNVM returns core c's private persistent-data range. The result
// depends only on c, never on the machine's core count.
func PerCoreNVM(c int) Range {
	checkCore(c)
	return Range{Base: NVMBase + uint64(c)*PerCoreNVMSize, Size: PerCoreNVMSize}
}

// PerCoreDRAM returns core c's private volatile range.
func PerCoreDRAM(c int) Range {
	checkCore(c)
	return Range{Base: DRAMBase + uint64(c)*PerCoreDRAMSize, Size: PerCoreDRAMSize}
}

// PerCoreLog returns core c's private log/overflow range.
func PerCoreLog(c int) Range {
	checkCore(c)
	return Range{Base: NVMLogBase + uint64(c)*PerCoreLogSize, Size: PerCoreLogSize}
}

func checkCore(c int) {
	if c < 0 || c >= MaxCores {
		panic(fmt.Sprintf("memaddr: core %d outside [0, %d)", c, MaxCores))
	}
}

// Range is a half-open address interval [Base, Base+Size).
type Range struct {
	Base uint64
	Size uint64
}

// End returns the first address past the range.
func (r Range) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.End()
}

// Overlaps reports whether two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.End() && o.Base < r.End()
}
