package memaddr

import (
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		addr uint64
		want Space
	}{
		{0, SpaceInvalid},
		{DRAMBase - 1, SpaceInvalid},
		{DRAMBase, SpaceDRAM},
		{DRAMBase + 1<<20, SpaceDRAM},
		{NVMBase - 1, SpaceDRAM},
		{NVMBase, SpaceNVM},
		{NVMBase + 1<<30, SpaceNVM},
		{NVMLogBase - 1, SpaceNVM},
		{NVMLogBase, SpaceNVMLog},
		{NVMLogBase + 4096, SpaceNVMLog},
		{NVMLogBase + regionSpan, SpaceInvalid},
	}
	for _, c := range cases {
		if got := Classify(c.addr); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestIsPersistent(t *testing.T) {
	if IsPersistent(DRAMBase + 100) {
		t.Error("DRAM address reported persistent")
	}
	if !IsPersistent(NVMBase + 100) {
		t.Error("NVM address not reported persistent")
	}
	if !IsPersistent(NVMLogBase + 100) {
		t.Error("log address not reported persistent")
	}
}

func TestSpaceString(t *testing.T) {
	names := map[Space]string{
		SpaceDRAM: "DRAM", SpaceNVM: "NVM", SpaceNVMLog: "NVMLog", SpaceInvalid: "invalid",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestLineArithmetic(t *testing.T) {
	addr := NVMBase + 64*3 + 24
	if got := LineAddr(addr); got != NVMBase+64*3 {
		t.Errorf("LineAddr = %#x, want %#x", got, NVMBase+64*3)
	}
	if got := LineOffset(addr); got != 24 {
		t.Errorf("LineOffset = %d, want 24", got)
	}
	if got := WordIndex(addr); got != 3 {
		t.Errorf("WordIndex = %d, want 3", got)
	}
	if got := WordAddr(addr + 4); got != addr {
		t.Errorf("WordAddr = %#x, want %#x", got, addr)
	}
}

func TestAlignmentPredicates(t *testing.T) {
	if !IsLineAligned(128) || IsLineAligned(129) {
		t.Error("IsLineAligned wrong")
	}
	if !IsWordAligned(16) || IsWordAligned(17) {
		t.Error("IsWordAligned wrong")
	}
}

func TestPartitionDisjointAndAligned(t *testing.T) {
	parts := Partition(NVMBase, 1<<20, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d partitions, want 4", len(parts))
	}
	for i, p := range parts {
		if !IsLineAligned(p.Base) {
			t.Errorf("partition %d base %#x not line aligned", i, p.Base)
		}
		for j := i + 1; j < len(parts); j++ {
			if p.Overlaps(parts[j]) {
				t.Errorf("partitions %d and %d overlap", i, j)
			}
		}
	}
}

func TestPartitionPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition did not panic for a too-small region")
		}
	}()
	Partition(NVMBase, 63, 4)
}

func TestRangeContains(t *testing.T) {
	r := Range{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) {
		t.Error("Contains rejects in-range addresses")
	}
	if r.Contains(99) || r.Contains(150) {
		t.Error("Contains accepts out-of-range addresses")
	}
	if r.End() != 150 {
		t.Errorf("End = %d, want 150", r.End())
	}
}

// Property: LineAddr is idempotent, word index is within a line, and
// LineAddr+LineOffset reconstructs the address.
func TestQuickLineDecomposition(t *testing.T) {
	f := func(addr uint64) bool {
		la := LineAddr(addr)
		return LineAddr(la) == la &&
			la+LineOffset(addr) == addr &&
			WordIndex(addr) >= 0 && WordIndex(addr) < WordsPerLine &&
			IsLineAligned(la)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is stable across every address within one line —
// a line never straddles two spaces (bases are line aligned and regions are
// line-sized multiples).
func TestQuickLineDoesNotStraddleSpaces(t *testing.T) {
	f := func(addr uint64) bool {
		base := LineAddr(addr)
		s := Classify(base)
		for off := uint64(0); off < LineSize; off += WordSize {
			if Classify(base+off) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
