// Package prof backs the command-line tools' -cpuprofile and
// -memprofile flags with the stdlib runtime/pprof machinery: start a
// CPU profile before the simulation work, write a heap profile after
// it, both in `go tool pprof` format. The simulator's hot loop is the
// kernel tick; these profiles are how the cycles/s regressions the
// benchmark harness flags get attributed to code.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile streaming to path and returns the stop
// function to defer. Stop closes the file; errors closing are reported
// to stderr rather than returned, since the profile data is already
// flushed by then.
func StartCPU(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
	}, nil
}

// WriteHeap writes a heap profile of live objects to path, running a GC
// first so the profile reflects retained memory rather than garbage
// awaiting collection.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: %w", err)
	}
	return f.Close()
}
