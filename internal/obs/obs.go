// Package obs is the cycle-level observability layer: a probe/recorder
// threaded through the simulation kernel, cores, cache hierarchy,
// persistence mechanisms, transaction caches and memory controllers.
//
// It has three pillars:
//
//  1. a span/event trace — a bounded ring buffer of Events capturing
//     transaction lifecycles, TC drain bursts, LLC persistent-line drops
//     and side-path probes, and memory-controller write-drain windows,
//     exported as Chrome trace_event JSON (chrometrace.go) loadable in
//     Perfetto or chrome://tracing;
//  2. a periodic sampler — kernel-callback-driven time series of named
//     integer sources (TC occupancy, queue depths), exported as CSV;
//  3. per-core cycle attribution — accumulated in cpu.Stats (the cpu
//     package owns the counters; obs defines nothing there), surfaced
//     through Result.
//
// The probe is nil-safe by design: every method on a nil *Probe returns
// immediately, so components hold a plain *Probe field that defaults to
// nil and pay only an untaken branch when observability is disabled. The
// disabled path allocates nothing (see the AllocsPerRun regression test)
// and costs <2% end to end (see BenchmarkSimulatorSpeed variants).
package obs

import (
	"fmt"
	"io"
	"sort"

	"pmemaccel/internal/sim"
)

// Kind identifies one probe point in the event taxonomy.
type Kind uint8

const (
	// KTx is a span: one transaction on a core track, TX_BEGIN
	// retirement to commit completion. ID is the transaction id.
	KTx Kind = iota
	// KCommitWait is a span: the core stalled in TX_END waiting for the
	// mechanism (SP pcommit drain, Kiln commit flush, TCache overflow
	// commit). ID is the transaction id.
	KCommitWait
	// KTxFlush is a span: a Kiln-style commit flush moving a
	// transaction's dirty lines through the hierarchy. ID is the
	// hierarchy's namespaced transaction tag; Arg is lines flushed.
	KTxFlush
	// KTCDrain is a span: one transaction-cache drain burst, first
	// committed-entry issue until nothing is left unissued. Arg is the
	// number of entries issued in the burst.
	KTCDrain
	// KWPQDrain is a span: a memory controller's write-queue drain
	// window (queue hit DrainHigh, served until DrainLow). Core is the
	// channel (0 NVM, 1 DRAM); Arg is writes issued during the drain.
	KWPQDrain
	// KTCCommit is an instant: a commit request was inserted into the
	// TC. ID is the transaction id; Arg is the entries CAM-matched to
	// the committed state.
	KTCCommit
	// KTCFull is an instant: the TC rejected a store (ring full or head
	// blocked) and the core will retry. ID is the transaction id; Arg is
	// the store address.
	KTCFull
	// KTCFallback is an instant: a transaction overflowed to the
	// copy-on-write fall-back path. ID is the transaction id.
	KTCFallback
	// KLLCPDrop is an instant: a dirty persistent LLC victim was
	// dropped instead of written back. ID is the line address.
	KLLCPDrop
	// KSideProbe is an instant: an LLC miss on a persistent line probed
	// the TC side path. ID is the line address; Arg is 1 on a hit.
	KSideProbe
	// KTCDrainOpen is a span: a transaction-cache drain burst still in
	// progress when the probe was collected. End is the collection
	// cycle, not the burst's natural close; Arg is entries issued so
	// far. Emitted by FlushOpenSpans.
	KTCDrainOpen
	// KWPQDrainOpen is a span: a memory-controller write-drain window
	// still open at probe collection. End is the collection cycle; Arg
	// is writes issued so far. Emitted by FlushOpenSpans.
	KWPQDrainOpen
	// KTxStage is a span: one stage of a sampled transaction's flight
	// waterfall (internal/obs/txflight). ID is the flow id
	// (core<<40 | tx id), Arg is the stage index into TxStageNames, and
	// Core is the core for core-side stages or the global channel index
	// for memory-side stages.
	KTxStage

	nKinds
)

// String names the kind as it appears in exported traces.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var kindNames = [nKinds]string{
	KTx:           "tx",
	KCommitWait:   "commit-wait",
	KTxFlush:      "commit-flush",
	KTCDrain:      "tc-drain",
	KWPQDrain:     "wpq-drain",
	KTCCommit:     "tc-commit",
	KTCFull:       "tc-full",
	KTCFallback:   "tc-fallback",
	KLLCPDrop:     "llc-pdrop",
	KSideProbe:    "tc-probe",
	KTCDrainOpen:  "tc-drain-open",
	KWPQDrainOpen: "wpq-drain-open",
	KTxStage:      "tx-stage",
}

// NumKinds is the number of event kinds, for per-kind accounting by
// external consumers (e.g. tracedump drop summaries).
const NumKinds = int(nKinds)

// TxStageNames names the flight-recorder waterfall stages in order.
// KTxStage events carry the stage index in Arg.
var TxStageNames = [...]string{"execute", "commit-wait", "tc-drain", "wpq-wait", "nvm-write"}

// Event is one recorded trace entry. Spans carry [Start, End]; instants
// have Start == End. Core is the core (or memory-channel) index, -1 when
// not applicable. ID and Arg are kind-specific (see the Kind constants).
type Event struct {
	Kind       Kind
	Core       int32
	Start, End uint64
	ID         uint64
	Arg        uint64
}

// source is one named sampler input.
type source struct {
	name string
	fn   func() int
}

// sampleRow is one sampler firing: the cycle plus one value per source.
type sampleRow struct {
	cycle uint64
	vals  []int
}

// Probe is the central recorder. A nil *Probe is valid: every method is
// a no-op, which is the zero-overhead disabled path. Build an enabled
// probe with NewProbe.
type Probe struct {
	// events is the ring buffer: append-until-full, then overwrite the
	// oldest at next.
	events []Event
	next   int
	total  uint64

	// droppedByKind counts ring overwrites per event kind, so a
	// saturated ring can't silently bias one stage of a waterfall.
	droppedByKind [nKinds]uint64

	sources     []source
	samples     []sampleRow
	sampleEvery uint64

	// openFlushers emit spans still open at collection time; openSpans
	// counts how many were flushed (previously they were silently
	// dropped with no counter).
	openFlushers []func(now uint64)
	openSpans    uint64
}

// DefaultTraceCapacity bounds the event ring when the caller does not:
// 1<<18 events x 48 bytes ≈ 12 MB, enough for several million simulated
// cycles of TCache activity.
const DefaultTraceCapacity = 1 << 18

// NewProbe returns an enabled probe with the given ring capacity
// (<= 0 selects DefaultTraceCapacity).
func NewProbe(capacity int) *Probe {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Probe{events: make([]Event, 0, capacity)}
}

// Enabled reports whether the probe records anything.
func (p *Probe) Enabled() bool { return p != nil }

// record appends to the ring, overwriting the oldest event once full.
func (p *Probe) record(e Event) {
	if len(p.events) < cap(p.events) {
		p.events = append(p.events, e)
	} else {
		p.droppedByKind[p.events[p.next].Kind]++
		p.events[p.next] = e
		p.next++
		if p.next == len(p.events) {
			p.next = 0
		}
	}
	p.total++
}

// Span records a completed [start, end] interval. Recording at span end
// (with the start carried by the caller) keeps the probe stateless and
// the ring free of unmatched begin markers.
func (p *Probe) Span(k Kind, core int, id, start, end, arg uint64) {
	if p == nil {
		return
	}
	p.record(Event{Kind: k, Core: int32(core), Start: start, End: end, ID: id, Arg: arg})
}

// Instant records a point event at the given cycle.
func (p *Probe) Instant(k Kind, core int, id, cycle, arg uint64) {
	if p == nil {
		return
	}
	p.record(Event{Kind: k, Core: int32(core), Start: cycle, End: cycle, ID: id, Arg: arg})
}

// Events returns the retained events ordered by start cycle.
func (p *Probe) Events() []Event {
	if p == nil {
		return nil
	}
	out := make([]Event, 0, len(p.events))
	out = append(out, p.events[p.next:]...)
	out = append(out, p.events[:p.next]...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// CountKind reports retained events of the given kind.
func (p *Probe) CountKind(k Kind) int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.events {
		if p.events[i].Kind == k {
			n++
		}
	}
	return n
}

// Recorded reports events ever recorded; Dropped reports how many the
// ring has overwritten.
func (p *Probe) Recorded() uint64 {
	if p == nil {
		return 0
	}
	return p.total
}

// Dropped reports events lost to ring overwrite.
func (p *Probe) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.total - uint64(len(p.events))
}

// DroppedByKind reports ring overwrites broken out per event kind,
// indexed by Kind. The per-kind counts sum to Dropped().
func (p *Probe) DroppedByKind() []uint64 {
	if p == nil {
		return nil
	}
	out := make([]uint64, nKinds)
	copy(out, p.droppedByKind[:])
	return out
}

// AddOpenSpanFlusher registers a callback that emits any span the
// component still has open (a TC drain burst, a write-queue drain
// window) when FlushOpenSpans runs. The callback must record through the
// probe's usual Span method, using the open-span kind for its event, and
// must not mutate component state — simulation may in principle continue
// after a collection.
func (p *Probe) AddOpenSpanFlusher(fn func(now uint64)) {
	if p == nil {
		return
	}
	p.openFlushers = append(p.openFlushers, fn)
}

// FlushOpenSpans records every still-open span, ending at the given
// cycle — without it, a burst or drain window in progress when the run
// stops silently vanishes from the trace. Call it once, at collection
// time (System.collect does; call it manually before exporting a probe
// from a run stopped mid-flight, e.g. after RunToCycle). Calling it
// twice records the still-open spans twice.
func (p *Probe) FlushOpenSpans(now uint64) {
	if p == nil {
		return
	}
	before := p.total
	for _, fn := range p.openFlushers {
		fn(now)
	}
	p.openSpans += p.total - before
}

// OpenSpansFlushed reports how many open spans FlushOpenSpans recorded.
func (p *Probe) OpenSpansFlushed() uint64 {
	if p == nil {
		return 0
	}
	return p.openSpans
}

// AddSource registers a named integer source for the periodic sampler.
// Sources must be added before StartSampling.
func (p *Probe) AddSource(name string, fn func() int) {
	if p == nil {
		return
	}
	p.sources = append(p.sources, source{name: name, fn: fn})
}

// StartSampling arranges a self-rescheduling kernel callback that
// samples every registered source each `every` cycles.
func (p *Probe) StartSampling(k *sim.Kernel, every uint64) {
	if p == nil || every == 0 || len(p.sources) == 0 {
		return
	}
	p.sampleEvery = every
	var fire func()
	fire = func() {
		p.sample(k.Now())
		k.Schedule(every, fire)
	}
	k.Schedule(every, fire)
}

func (p *Probe) sample(cycle uint64) {
	vals := make([]int, len(p.sources))
	for i, s := range p.sources {
		vals[i] = s.fn()
	}
	p.samples = append(p.samples, sampleRow{cycle: cycle, vals: vals})
}

// SampleCount reports sampler firings so far.
func (p *Probe) SampleCount() int {
	if p == nil {
		return 0
	}
	return len(p.samples)
}

// SampleCycles returns the cycle of each sampler firing, in firing
// order — the row spine of WriteMetricsCSV. Exposed so integration
// tests can check the sampling cadence survives quiescence
// fast-forwards.
func (p *Probe) SampleCycles() []uint64 {
	if p == nil {
		return nil
	}
	out := make([]uint64, len(p.samples))
	for i, row := range p.samples {
		out[i] = row.cycle
	}
	return out
}

// SourceNames returns the registered source names in column order.
func (p *Probe) SourceNames() []string {
	if p == nil {
		return nil
	}
	names := make([]string, len(p.sources))
	for i, s := range p.sources {
		names[i] = s.name
	}
	return names
}

// WriteMetricsCSV writes the sampled time series as CSV: a `cycle`
// column followed by one column per source.
func (p *Probe) WriteMetricsCSV(w io.Writer) error {
	if p == nil {
		return nil
	}
	if _, err := io.WriteString(w, "cycle"); err != nil {
		return err
	}
	for _, s := range p.sources {
		if _, err := io.WriteString(w, ","+s.name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range p.samples {
		if _, err := fmt.Fprintf(w, "%d", row.cycle); err != nil {
			return err
		}
		for _, v := range row.vals {
			if _, err := fmt.Fprintf(w, ",%d", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
