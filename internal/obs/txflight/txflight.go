// Package txflight is the transaction flight recorder: a sampled
// per-transaction tracer that follows individual transactions
// end-to-end — tx begin, store issue, fence/commit wait, TC insert,
// drain burst, per-channel WPQ, NVM write completion — and reduces each
// sampled flight to an exact stage waterfall plus a critical-path
// verdict.
//
// Sampling is a pure function of the transaction id (tx % every == 0),
// so the sampled set is identical for every `-j` and `-par-kernel N`
// configuration. All recorder methods mutate plain maps and must run on
// the coordinator goroutine; under the parallel kernel, worker-side
// call sites defer their calls through sim.Ctx journals, which replay
// in registration order and reproduce the serial call sequence exactly.
//
// The stage model is a telescoping sum over checkpoints
//
//	begin ≤ commitReq ≤ commitDone ≤ tcIssue ≤ svcStart ≤ durable
//
// where the last three belong to the flight's critical write — the
// tracked write that became durable last. Stage cycles therefore sum
// exactly to the end-to-end latency (same invariant discipline as the
// per-core cycle attribution): execute + commit-wait + tc-drain +
// wpq-wait + nvm-write == durable - begin. Transactions with no tracked
// writes (SP, Kiln, Optimal, TCache fallbacks) end at commitDone with
// zero post-commit stages.
//
// A nil *Recorder is valid and inert, mirroring obs.Probe: every method
// returns immediately, so sampling off costs one untaken branch per
// probe point and changes no output.
package txflight

import "pmemaccel/internal/obs"

// NumStages is the number of waterfall stages; stage i is named
// obs.TxStageNames[i].
const NumStages = len(obs.TxStageNames)

// Write is one tracked store of a sampled transaction: TC issue, memory
// controller service start (with its global channel index), and durable
// completion. A nil *Write is valid and inert, so call sites need not
// branch on whether their transaction is sampled.
type Write struct {
	fl        *flight
	tcIssue   uint64
	svcStart  uint64
	durableAt uint64
	channel   int
}

// ServiceStart records the cycle the memory controller began servicing
// the write, and the global channel index it landed on.
func (w *Write) ServiceStart(channel int, now uint64) {
	if w == nil {
		return
	}
	w.svcStart = now
	w.channel = channel
}

// flight is one in-progress sampled transaction.
type flight struct {
	core       int
	tx         uint64
	begin      uint64
	commitReq  uint64
	commitDone uint64
	committed  bool
	fallback   bool
	done       bool
	expected   int
	durable    int
	writes     []*Write
}

type flightKey struct {
	core int
	tx   uint64
}

// Aggregate is the reduced view of every finalized flight, suitable for
// JSON export and the figures stage-breakdown tables.
type Aggregate struct {
	// Sampled counts finalized flights; Open counts flights still in
	// progress at collection (begun, never finalized).
	Sampled uint64 `json:"sampled"`
	Open    uint64 `json:"open"`
	// Fallbacks counts sampled transactions that overflowed to the
	// copy-on-write fallback path.
	Fallbacks uint64 `json:"fallbacks"`
	// E2ECycles is the summed end-to-end latency of all sampled
	// flights; StageCycles breaks the same cycles out per stage
	// (indexed by obs.TxStageNames) and sums exactly to E2ECycles.
	E2ECycles   uint64            `json:"e2e_cycles"`
	StageCycles [NumStages]uint64 `json:"stage_cycles"`
	// CritCount[i] counts flights whose critical-path verdict — the
	// stage that bounded completion — was stage i (first stage wins
	// ties).
	CritCount [NumStages]uint64 `json:"crit_count"`
}

// MeanE2E is the mean end-to-end latency per sampled transaction.
func (a Aggregate) MeanE2E() float64 {
	if a.Sampled == 0 {
		return 0
	}
	return float64(a.E2ECycles) / float64(a.Sampled)
}

// MeanStage is the mean cycles per sampled transaction spent in stage i.
func (a Aggregate) MeanStage(i int) float64 {
	if a.Sampled == 0 {
		return 0
	}
	return float64(a.StageCycles[i]) / float64(a.Sampled)
}

// Recorder holds the active flights and the running aggregate. Build
// one with New; a nil Recorder is the disabled path.
//
// Finalized flights and their writes are recycled through freelists, and
// the last looked-up flight is cached (drain writes of one transaction
// arrive in bursts), so the steady-state recorder allocates nothing —
// the full-sampling overhead budget in DESIGN.md §13 depends on it.
type Recorder struct {
	every   uint64
	probe   *obs.Probe
	active  map[flightKey]*flight
	agg     Aggregate
	lastKey flightKey
	lastFl  *flight
	freeFl  []*flight
	freeW   []*Write
}

// New returns a recorder sampling every `every`-th transaction id
// (1 samples everything; 0 returns nil, the disabled recorder). The
// probe may be nil: stage aggregation still runs, only the KTxStage
// trace spans are skipped.
func New(every uint64, probe *obs.Probe) *Recorder {
	if every == 0 {
		return nil
	}
	return &Recorder{every: every, probe: probe, active: make(map[flightKey]*flight)}
}

// Sampled reports whether transaction id tx is in the sample set. Pure
// and deterministic: identical across worker counts and sweep layouts.
func (r *Recorder) Sampled(tx uint64) bool {
	return r != nil && tx%r.every == 0
}

// Begin opens a flight for a sampled transaction at its TX_BEGIN
// retirement cycle. Non-sampled ids are ignored.
func (r *Recorder) Begin(core int, tx, now uint64) {
	if !r.Sampled(tx) {
		return
	}
	var fl *flight
	if n := len(r.freeFl); n > 0 {
		fl = r.freeFl[n-1]
		r.freeFl = r.freeFl[:n-1]
		*fl = flight{core: core, tx: tx, begin: now, writes: fl.writes[:0]}
	} else {
		fl = &flight{core: core, tx: tx, begin: now}
	}
	key := flightKey{core, tx}
	r.active[key] = fl
	r.lastKey, r.lastFl = key, fl
}

// find is the cached active-flight lookup: one transaction's recorder
// calls arrive in bursts, so the last flight touched usually answers.
func (r *Recorder) find(core int, tx uint64) *flight {
	key := flightKey{core, tx}
	if r.lastFl != nil && r.lastKey == key {
		return r.lastFl
	}
	fl := r.active[key]
	if fl != nil {
		r.lastKey, r.lastFl = key, fl
	}
	return fl
}

// MarkFallback flags the flight as having overflowed to the
// copy-on-write fallback path.
func (r *Recorder) MarkFallback(core int, tx uint64) {
	if r == nil {
		return
	}
	if fl := r.find(core, tx); fl != nil {
		fl.fallback = true
	}
}

// CommitMatched records how many TC entries the commit CAM-matched —
// the number of tracked writes the flight must see durable before it
// can finalize. Called from the TC commit path, before the core's
// Commit record in the same cycle.
func (r *Recorder) CommitMatched(core int, tx uint64, entries int) {
	if r == nil {
		return
	}
	if fl := r.find(core, tx); fl != nil {
		fl.expected = entries
	}
}

// Commit records the commit-request cycle (TX_END retirement) and the
// commit-completion cycle (equal for non-stalling commits). The flight
// finalizes immediately when every expected write is already durable —
// in particular when it has no tracked writes at all.
func (r *Recorder) Commit(core int, tx, reqAt, doneAt uint64) {
	if r == nil {
		return
	}
	fl := r.find(core, tx)
	if fl == nil {
		return
	}
	fl.commitReq, fl.commitDone = reqAt, doneAt
	fl.committed = true
	if fl.durable >= fl.expected {
		r.finalize(fl)
	}
}

// TCIssue records a tracked write leaving the TC for the memory backend
// and returns its Write handle for the ServiceStart/WriteDurable
// callbacks. Returns nil (safe to use) when the flight is unknown.
func (r *Recorder) TCIssue(core int, tx, now uint64) *Write {
	if r == nil {
		return nil
	}
	fl := r.find(core, tx)
	if fl == nil {
		return nil
	}
	var w *Write
	if n := len(r.freeW); n > 0 {
		w = r.freeW[n-1]
		r.freeW = r.freeW[:n-1]
		*w = Write{fl: fl, tcIssue: now, channel: -1}
	} else {
		w = &Write{fl: fl, tcIssue: now, channel: -1}
	}
	fl.writes = append(fl.writes, w)
	return w
}

// WriteDurable records the write's durable-completion cycle and
// finalizes the flight once the last expected write lands.
func (r *Recorder) WriteDurable(w *Write, now uint64) {
	if r == nil || w == nil {
		return
	}
	w.durableAt = now
	fl := w.fl
	fl.durable++
	if fl.committed && fl.durable >= fl.expected {
		r.finalize(fl)
	}
}

// finalize reduces the flight to its waterfall, updates the aggregate,
// emits KTxStage spans, and retires the flight (and its writes) to the
// freelists. The done guard makes a second finalize of the same flight
// a no-op rather than a double count.
func (r *Recorder) finalize(fl *flight) {
	if fl.done {
		return
	}
	fl.done = true
	delete(r.active, flightKey{fl.core, fl.tx})
	if r.lastFl == fl {
		r.lastFl = nil
	}

	// The critical write is the last to become durable; its checkpoints
	// extend the waterfall past commit.
	var crit *Write
	for _, w := range fl.writes {
		if crit == nil || w.durableAt > crit.durableAt {
			crit = w
		}
	}

	// Checkpoint boundaries; stage i spans [b[i], b[i+1]].
	var b [NumStages + 1]uint64
	b[0], b[1], b[2] = fl.begin, fl.commitReq, fl.commitDone
	channel := -1
	if crit != nil {
		issue, svc, dur := crit.tcIssue, crit.svcStart, crit.durableAt
		// Defensive clamps keep the telescoping sum exact even if a
		// backend path (e.g. a recorded fault) skipped a checkpoint.
		if issue < b[2] {
			issue = b[2]
		}
		if svc < issue {
			svc = issue
		}
		if dur < svc {
			dur = svc
		}
		b[3], b[4], b[5] = issue, svc, dur
		channel = crit.channel
	} else {
		b[3], b[4], b[5] = b[2], b[2], b[2]
	}

	var stages [NumStages]uint64
	verdict := 0
	for i := range stages {
		stages[i] = b[i+1] - b[i]
		if stages[i] > stages[verdict] {
			verdict = i
		}
	}

	r.agg.Sampled++
	r.agg.E2ECycles += b[NumStages] - b[0]
	for i, s := range stages {
		r.agg.StageCycles[i] += s
	}
	r.agg.CritCount[verdict]++
	if fl.fallback {
		r.agg.Fallbacks++
	}

	if r.probe != nil {
		flowID := uint64(fl.core)<<40 | fl.tx
		for i, s := range stages {
			if s == 0 {
				continue
			}
			track := fl.core
			if i >= 3 && channel >= 0 {
				track = channel
			}
			r.probe.Span(obs.KTxStage, track, flowID, b[i], b[i+1], uint64(i))
		}
	}

	// Every tracked write is durable by now (the TC drains only
	// committed entries), so the whole flight recycles.
	for _, w := range fl.writes {
		*w = Write{}
		r.freeW = append(r.freeW, w)
	}
	r.freeFl = append(r.freeFl, fl)
}

// Aggregate returns the running aggregate, with Open set to the number
// of flights begun but never finalized (e.g. a run stopped mid-tx).
func (r *Recorder) Aggregate() Aggregate {
	if r == nil {
		return Aggregate{}
	}
	a := r.agg
	a.Open = uint64(len(r.active))
	return a
}

// Enabled reports whether the recorder samples anything.
func (r *Recorder) Enabled() bool { return r != nil }
