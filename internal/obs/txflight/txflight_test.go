package txflight

import (
	"testing"

	"pmemaccel/internal/obs"
)

func TestSamplingPredicate(t *testing.T) {
	if New(0, nil) != nil {
		t.Fatal("New(0) must return the nil (disabled) recorder")
	}
	var nilR *Recorder
	if nilR.Sampled(4) {
		t.Error("nil recorder sampled a transaction")
	}
	r := New(3, nil)
	for tx := uint64(1); tx <= 9; tx++ {
		if got, want := r.Sampled(tx), tx%3 == 0; got != want {
			t.Errorf("every=3: Sampled(%d) = %v, want %v", tx, got, want)
		}
	}
	if all := New(1, nil); !all.Sampled(1) || !all.Sampled(7) {
		t.Error("every=1 must sample every transaction")
	}
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	r.Begin(0, 1, 10)
	r.MarkFallback(0, 1)
	r.CommitMatched(0, 1, 2)
	r.Commit(0, 1, 10, 20)
	w := r.TCIssue(0, 1, 30)
	if w != nil {
		t.Fatal("nil recorder returned a Write")
	}
	w.ServiceStart(0, 40) // nil Write must be inert too
	r.WriteDurable(w, 50)
	if a := r.Aggregate(); a != (Aggregate{}) {
		t.Errorf("nil recorder aggregate = %+v, want zero", a)
	}
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
}

// TestZeroWriteFlightFinalizesAtCommit covers the mechanisms without TC
// hooks (SP, Kiln, Optimal) and TCache fallbacks: no tracked writes, so
// the flight ends at commit completion with zero post-commit stages.
func TestZeroWriteFlightFinalizesAtCommit(t *testing.T) {
	r := New(1, nil)
	r.Begin(0, 1, 100)
	r.Commit(0, 1, 150, 160)
	a := r.Aggregate()
	if a.Sampled != 1 || a.Open != 0 {
		t.Fatalf("sampled %d open %d, want 1/0", a.Sampled, a.Open)
	}
	want := [NumStages]uint64{50, 10, 0, 0, 0}
	if a.StageCycles != want {
		t.Errorf("stages %v, want %v", a.StageCycles, want)
	}
	if a.E2ECycles != 60 {
		t.Errorf("e2e %d, want 60", a.E2ECycles)
	}
	if a.CritCount[0] != 1 {
		t.Errorf("crit counts %v, want execute", a.CritCount)
	}
}

// TestCriticalPathIsLastDurableWrite drives a two-write flight and
// checks that the waterfall's post-commit stages come from the write
// that became durable last, and that the stage sum stays exact.
func TestCriticalPathIsLastDurableWrite(t *testing.T) {
	r := New(1, nil)
	r.Begin(0, 2, 0)
	r.CommitMatched(0, 2, 2)
	r.Commit(0, 2, 10, 10)
	if a := r.Aggregate(); a.Sampled != 0 || a.Open != 1 {
		t.Fatalf("flight finalized before its writes drained: %+v", a)
	}
	w1 := r.TCIssue(0, 2, 12)
	w1.ServiceStart(0, 15)
	r.WriteDurable(w1, 20)
	w2 := r.TCIssue(0, 2, 14)
	w2.ServiceStart(1, 30)
	r.WriteDurable(w2, 50)

	a := r.Aggregate()
	if a.Sampled != 1 || a.Open != 0 {
		t.Fatalf("sampled %d open %d, want 1/0", a.Sampled, a.Open)
	}
	// Critical write is w2: issue 14, service 30, durable 50.
	want := [NumStages]uint64{10, 0, 4, 16, 20}
	if a.StageCycles != want {
		t.Errorf("stages %v, want %v", a.StageCycles, want)
	}
	if a.E2ECycles != 50 {
		t.Errorf("e2e %d, want 50", a.E2ECycles)
	}
	var sum uint64
	for _, s := range a.StageCycles {
		sum += s
	}
	if sum != a.E2ECycles {
		t.Errorf("stage sum %d != e2e %d", sum, a.E2ECycles)
	}
	if a.CritCount[4] != 1 {
		t.Errorf("crit counts %v, want nvm-write", a.CritCount)
	}
}

// TestClampSkippedCheckpoint pins the defensive-clamp behaviour: a write
// whose service-start checkpoint never fired (e.g. the backend's
// recorded-fault path) must still produce a telescoping, exact-sum
// waterfall.
func TestClampSkippedCheckpoint(t *testing.T) {
	r := New(1, nil)
	r.Begin(1, 1, 0)
	r.CommitMatched(1, 1, 1)
	r.Commit(1, 1, 5, 5)
	w := r.TCIssue(1, 1, 8)
	// No ServiceStart: svcStart stays 0, below tcIssue.
	r.WriteDurable(w, 42)
	a := r.Aggregate()
	var sum uint64
	for _, s := range a.StageCycles {
		sum += s
	}
	if sum != a.E2ECycles || a.E2ECycles != 42 {
		t.Errorf("stage sum %d, e2e %d, want both 42", sum, a.E2ECycles)
	}
}

func TestMarkFallbackCounted(t *testing.T) {
	r := New(1, nil)
	r.Begin(0, 1, 0)
	r.MarkFallback(0, 1)
	r.Commit(0, 1, 9, 9)
	if a := r.Aggregate(); a.Fallbacks != 1 {
		t.Errorf("fallbacks %d, want 1", a.Fallbacks)
	}
	// Unknown flights are ignored, not invented.
	r.MarkFallback(3, 99)
	if a := r.Aggregate(); a.Open != 0 {
		t.Errorf("MarkFallback on unknown flight opened one: %+v", a)
	}
}

// TestStageSpansEmitted checks the probe export: one KTxStage span per
// nonzero stage, id carrying the (core<<40 | tx) flow id, arg the stage
// index, and core-side/memory-side stages landing on their tracks.
func TestStageSpansEmitted(t *testing.T) {
	p := obs.NewProbe(64)
	r := New(1, p)
	r.Begin(2, 5, 0)
	r.CommitMatched(2, 5, 1)
	r.Commit(2, 5, 10, 10)
	w := r.TCIssue(2, 5, 12)
	w.ServiceStart(3, 20)
	r.WriteDurable(w, 33)

	wantFlow := uint64(2)<<40 | 5
	var got []obs.Event
	for _, e := range p.Events() {
		if e.Kind == obs.KTxStage {
			got = append(got, e)
		}
	}
	// execute(10), tc-drain(2), wpq-wait(8), nvm-write(13); commit-wait
	// is zero and must be skipped.
	if len(got) != 4 {
		t.Fatalf("%d KTxStage spans, want 4: %+v", len(got), got)
	}
	wantStage := []uint64{0, 2, 3, 4}
	for i, e := range got {
		if e.ID != wantFlow {
			t.Errorf("span %d flow id %d, want %d", i, e.ID, wantFlow)
		}
		if e.Arg != wantStage[i] {
			t.Errorf("span %d stage %d, want %d", i, e.Arg, wantStage[i])
		}
		wantCore := int32(2)
		if e.Arg >= 3 {
			wantCore = 3 // the critical write's global channel
		}
		if e.Core != wantCore {
			t.Errorf("span %d (stage %d) core %d, want %d", i, e.Arg, e.Core, wantCore)
		}
	}
}

func TestOpenFlightReported(t *testing.T) {
	r := New(2, nil)
	r.Begin(0, 2, 100) // sampled, never committed
	r.Begin(0, 3, 120) // not sampled: ignored
	a := r.Aggregate()
	if a.Open != 1 || a.Sampled != 0 {
		t.Errorf("open %d sampled %d, want 1/0", a.Open, a.Sampled)
	}
}
