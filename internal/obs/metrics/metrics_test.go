package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramExactAggregates(t *testing.T) {
	h := &Histogram{}
	vals := []uint64{0, 1, 1, 2, 3, 7, 8, 100, 1023, 1 << 40}
	var sum, max uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
		if v > max {
			max = v
		}
	}
	if h.Count() != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
	if h.Max() != max {
		t.Errorf("Max = %d, want %d", h.Max(), max)
	}
	if want := float64(sum) / float64(len(vals)); h.Mean() != want {
		t.Errorf("Mean = %g, want %g", h.Mean(), want)
	}
}

// TestHistogramQuantileErrorBound checks the documented contract on a
// randomized stream: the reported quantile is never below the true
// order statistic and less than 2x above it (bucket width), and never
// above the exact maximum.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	vals := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << uint(1+rng.Intn(30))))
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		truth := vals[idx]
		got := h.Quantile(p)
		if got < truth {
			t.Errorf("p%.3f = %d below true order statistic %d", p, got, truth)
		}
		if truth > 0 && got >= 2*truth {
			t.Errorf("p%.3f = %d not within 2x of true %d", p, got, truth)
		}
		if got > h.Max() {
			t.Errorf("p%.3f = %d exceeds exact max %d", p, got, h.Max())
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
	h := &Histogram{}
	h.Observe(100)
	h.Observe(200)
	cases := []struct {
		p    float64
		want uint64
	}{
		{-1, 0}, {0, 0}, {math.NaN(), 0},
		{1, 200}, {2, 200}, // >= 1 clamps to exact max
	}
	for _, c := range cases {
		if got := h.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// Single observation: every quantile is bounded by the exact max.
	one := &Histogram{}
	one.Observe(1000)
	if got := one.Quantile(0.99); got != 1000 {
		t.Errorf("single-value p99 = %d, want clamped to max 1000", got)
	}
	// Zero-only stream stays at zero.
	z := &Histogram{}
	z.Observe(0)
	if got := z.Quantile(0.99); got != 0 {
		t.Errorf("zero-stream p99 = %d, want 0", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must hand out nil metrics")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	if r.Snapshot().Table() != "" {
		t.Error("nil snapshot must render empty")
	}
}

// TestHotPathAllocationFree pins the zero-allocation contract for the
// disabled (nil) and enabled paths both — these calls sit on per-cycle
// and per-event simulator hot paths.
func TestHotPathAllocationFree(t *testing.T) {
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		ng.SetMax(7)
		nh.Observe(123)
	}); n != 0 {
		t.Errorf("disabled (nil) path allocates %v bytes/op, want 0", n)
	}
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var v uint64
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.SetMax(int64(v))
		h.Observe(v)
		v += 13
	}); n != 0 {
		t.Errorf("enabled path allocates %v bytes/op, want 0", n)
	}
}

func TestRegistrySharesByName(t *testing.T) {
	r := NewRegistry()
	if r.Histogram("a") != r.Histogram("a") {
		t.Error("same name must return the same histogram")
	}
	if r.Histogram("a") == r.Histogram("b") {
		t.Error("different names must return different histograms")
	}
	if r.Counter("a") == nil || r.Gauge("a") == nil {
		t.Error("enabled registry handed out nil metric")
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := &Gauge{}
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax kept %d, want peak 5", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Errorf("Set = %d, want 1", g.Value())
	}
}

func TestSnapshotSortedAndTable(t *testing.T) {
	r := NewRegistry()
	r.Histogram("zeta").Observe(4)
	r.Histogram("alpha").Observe(16)
	r.Counter("writes").Add(7)
	r.Gauge("peak").SetMax(3)
	s := r.Snapshot()
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "alpha" || s.Histograms[1].Name != "zeta" {
		t.Fatalf("histograms not in sorted name order: %+v", s.Histograms)
	}
	if hs := s.Histogram("alpha"); hs == nil || hs.Count != 1 || hs.Max != 16 {
		t.Errorf("alpha snapshot wrong: %+v", hs)
	}
	if cs := s.Counter("writes"); cs == nil || cs.Value != 7 {
		t.Errorf("writes snapshot wrong: %+v", cs)
	}
	if s.Histogram("missing") != nil || s.Counter("missing") != nil {
		t.Error("missing lookups must return nil")
	}
	tbl := s.Table()
	for _, want := range []string{"histogram", "p99", "alpha", "zeta", "counter", "writes", "gauge", "peak"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

// TestHistogramLargeValues exercises the top buckets: values at and
// beyond 2^63 must bucket without overflow and quantiles must clamp to
// the exact max.
func TestHistogramLargeValues(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxUint64)
	h.Observe(1 << 63)
	if h.Count() != 2 || h.Max() != math.MaxUint64 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	if got := h.Quantile(0.99); got != math.MaxUint64 {
		t.Errorf("p99 = %d, want clamp to max", got)
	}
}
