// Package metrics is the run-wide metrics registry: counters, gauges and
// log-bucketed streaming histograms wired at the simulator's probe
// points. Where the obs event ring answers "what happened when" (and
// forgets the oldest events once full), a metric is a constant-size
// summary of *every* observation in the run — the layer that turns the
// paper's distributional claims ("commit-wait stalls stay short in the
// common case") into queryable numbers: p50/p90/p99 transaction latency,
// the WPQ drain-duration distribution, the per-line NVM wear profile.
//
// The design contract matches the obs probe's:
//
//   - nil-safe: every method on a nil *Counter, *Gauge, *Histogram or
//     *Registry returns immediately, so components hold plain metric
//     pointers that default to nil and pay one untaken branch when
//     metrics are disabled;
//   - allocation-free on the hot path: Observe/Add/Set touch only
//     fixed-size fields (the AllocsPerRun regression test pins this for
//     the enabled and disabled paths both);
//   - deterministic: a Registry is single-goroutine like the simulation
//     it instruments (parallel sweeps give each cell its own registry),
//     and snapshots list metrics in sorted name order.
//
// Histogram bucketing: values land in log2 buckets — bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// bucket 0 counting v == 0. Count, Sum and Max are exact; a quantile is
// reported as its bucket's inclusive upper bound 2^i - 1, so a reported
// percentile is never below the true value and overshoots it by less
// than 2x (the bucket width). That error bound is the price of O(1)
// memory and allocation-free streaming inserts.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reads the count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instantaneous reading.
type Gauge struct {
	v int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// SetMax records v only if it exceeds the current value — a peak tracker.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// nBuckets covers bits.Len64's full 0..64 range.
const nBuckets = 65

// Histogram is a log2-bucketed streaming histogram of uint64
// observations. Count, Sum and Max are exact; quantiles are bucket upper
// bounds (see the package comment for the error bound). The zero value
// is ready to use; a nil *Histogram ignores observations.
type Histogram struct {
	buckets [nBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports observations so far (exact).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the exact sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max reports the exact maximum observation (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean reports the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the p-quantile: the inclusive upper
// edge (2^i - 1) of the bucket holding the p*count-th observation,
// clamped to the exact Max. p <= 0, NaN, or an empty histogram yield 0;
// p >= 1 yields Max.
func (h *Histogram) Quantile(p float64) uint64 {
	if h == nil || h.count == 0 || math.IsNaN(p) || p <= 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			upper := uint64(math.MaxUint64)
			if i < 64 {
				upper = (uint64(1) << uint(i)) - 1
			}
			if upper > h.max {
				// The true value cannot exceed the exact maximum.
				upper = h.max
			}
			return upper
		}
	}
	return h.max // unreachable: target <= count
}

// Registry holds the run's named metrics. Lookup-or-create by name keeps
// wiring sites independent: two components asking for the same name
// share the metric. A nil *Registry hands out nil metrics, which is the
// disabled path end to end.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use. Nil
// registry returns nil (a valid, no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterSnapshot is one counter's exported state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one gauge's exported state.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's exported summary: exact count,
// sum, mean and max plus the log2-bucket percentile upper bounds.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Snapshot is a registry's full exported state, metrics in sorted name
// order (deterministic output for goldens and JSON diffs).
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the registry's current state (nil registry returns
// nil: the JSON block is omitted entirely when metrics are off).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: name, Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Max: h.Max(),
		})
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Table renders the snapshot as an aligned human-readable block:
// histograms with their percentile columns, then counters and gauges.
// Empty sections are omitted; a nil snapshot renders as nothing.
func (s *Snapshot) Table() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if len(s.Histograms) > 0 {
		width := len("histogram")
		for _, h := range s.Histograms {
			if len(h.Name) > width {
				width = len(h.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %10s %12s %8s %8s %8s %8s\n",
			width, "histogram", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-*s %10d %12.2f %8d %8d %8d %8d\n",
				width, h.Name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
	if len(s.Counters) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		width := len("counter")
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %12s\n", width, "counter", "value")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-*s %12d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		width := len("gauge")
		for _, g := range s.Gauges {
			if len(g.Name) > width {
				width = len(g.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %12s\n", width, "gauge", "value")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%-*s %12d\n", width, g.Name, g.Value)
		}
	}
	return b.String()
}

// Histogram returns the named histogram snapshot, or nil (tests, tools).
func (s *Snapshot) Histogram(name string) *HistogramSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Counter returns the named counter snapshot, or nil.
func (s *Snapshot) Counter(name string) *CounterSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return &s.Counters[i]
		}
	}
	return nil
}
