package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Track (pid) layout of the exported trace. Each probe point maps to a
// process row in Perfetto; tids within a row are core or channel
// indices.
const (
	pidCores = 0 // transaction lifecycle spans, tid = core
	pidTC    = 1 // transaction-cache activity, tid = core
	pidLLC   = 2 // shared-LLC events, tid = 0
	pidMem   = 3 // memory controllers, tid = channel (0 NVM, 1 DRAM)
)

// kindTrack maps each kind to its process row.
var kindTrack = [nKinds]int{
	KTx:           pidCores,
	KCommitWait:   pidCores,
	KTxFlush:      pidCores,
	KTCDrain:      pidTC,
	KTCCommit:     pidTC,
	KTCFull:       pidTC,
	KTCFallback:   pidTC,
	KWPQDrain:     pidMem,
	KLLCPDrop:     pidLLC,
	KSideProbe:    pidLLC,
	KTCDrainOpen:  pidTC,
	KWPQDrainOpen: pidMem,
	KTxStage:      pidCores, // overridden per stage below
}

// txStageTrack maps a flight-recorder stage index to its process row:
// core-side stages render on the core track, the TC drain stage on the
// TC track, and the memory-side stages on the controller track (their
// Event.Core is the global channel index).
func txStageTrack(stage uint64) int {
	switch {
	case stage >= 3:
		return pidMem
	case stage == 2:
		return pidTC
	default:
		return pidCores
	}
}

// chromeEvent is one trace_event JSON object. Cycles are emitted
// directly as the microsecond timestamps the format requires, so one
// displayed microsecond is one simulated cycle.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// OtherData documents the time mapping for human readers.
	OtherData map[string]string `json:"otherData,omitempty"`
}

// namedMeta is a metadata event whose args.name is a string (the
// trace_event format requires string names here, unlike data events).
type namedMeta struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

func meta(kind string, pid, tid int, name string) namedMeta {
	m := namedMeta{Name: kind, Ph: "M", Pid: pid, Tid: tid}
	m.Args.Name = name
	return m
}

// WriteChromeTrace writes the retained events as Chrome trace_event
// JSON (the {"traceEvents": [...]} object form), loadable in Perfetto
// or chrome://tracing. Spans become complete ("X") events, instants
// thread-scoped instant ("i") events.
func (p *Probe) WriteChromeTrace(w io.Writer) error {
	if p == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	events := p.Events()

	// Which (pid, tid) rows are populated, for name metadata.
	type row struct{ pid, tid int }
	rows := map[row]bool{}

	out := make([]json.RawMessage, 0, len(events)+16)
	appendJSON := func(v interface{}) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, b)
		return nil
	}

	// Flow stitching: every KTxStage span of one sampled transaction
	// shares a flow id; the spans are linked with s/t/f flow events so
	// Perfetto draws the cross-component journey as arrows.
	type flowPoint struct {
		ts       uint64
		pid, tid int
	}
	flows := map[uint64][]flowPoint{}
	var flowOrder []uint64

	for _, e := range events {
		pid := kindTrack[e.Kind]
		tid := int(e.Core)
		name := e.Kind.String()
		if e.Kind == KTxStage {
			pid = txStageTrack(e.Arg)
			if int(e.Arg) < len(TxStageNames) {
				name = "stage:" + TxStageNames[e.Arg]
			}
		}
		if tid < 0 || pid == pidLLC {
			tid = 0
		}
		rows[row{pid, tid}] = true
		if e.Kind == KTxStage {
			if _, seen := flows[e.ID]; !seen {
				flowOrder = append(flowOrder, e.ID)
			}
			flows[e.ID] = append(flows[e.ID], flowPoint{ts: e.Start, pid: pid, tid: tid})
		}
		ce := chromeEvent{
			Name: name,
			Ts:   e.Start,
			Pid:  pid,
			Tid:  tid,
			Args: map[string]uint64{"id": e.ID, "arg": e.Arg},
		}
		if e.End > e.Start {
			ce.Ph = "X"
			ce.Dur = e.End - e.Start
		} else if e.Start == e.End && isSpanKind(e.Kind) {
			// Zero-length span (e.g. a commit that completed in the
			// cycle it began): keep it visible as a 1-cycle slice.
			ce.Ph = "X"
			ce.Dur = 1
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		if err := appendJSON(ce); err != nil {
			return err
		}
	}

	// Emit the flow events: one "s" at the first stage span, "t" steps
	// at the middle ones, one "f" (binding to the enclosing slice) at
	// the last. Single-span flights carry no arrows and are skipped.
	for _, id := range flowOrder {
		pts := flows[id]
		if len(pts) < 2 {
			continue
		}
		for i, pt := range pts {
			fe := chromeEvent{
				Name: "tx-flow", Cat: "tx", Ts: pt.ts,
				Pid: pt.pid, Tid: pt.tid, ID: itoa64(id),
			}
			switch i {
			case 0:
				fe.Ph = "s"
			case len(pts) - 1:
				fe.Ph = "f"
				fe.BP = "e"
			default:
				fe.Ph = "t"
			}
			if err := appendJSON(fe); err != nil {
				return err
			}
		}
	}

	procNames := map[int]string{
		pidCores: "cores (tx lifecycle)",
		pidTC:    "transaction caches",
		pidLLC:   "shared LLC",
		pidMem:   "memory controllers",
	}
	chanNames := map[int]string{0: "NVM", 1: "DRAM"}
	// Metadata rows sorted by (pid, tid) so the exported trace is
	// byte-for-byte reproducible (map iteration order is not).
	sorted := make([]row, 0, len(rows))
	for r := range rows {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].pid != sorted[j].pid {
			return sorted[i].pid < sorted[j].pid
		}
		return sorted[i].tid < sorted[j].tid
	})
	seenPid := map[int]bool{}
	for _, r := range sorted {
		if !seenPid[r.pid] {
			seenPid[r.pid] = true
			if err := appendJSON(meta("process_name", r.pid, 0, procNames[r.pid])); err != nil {
				return err
			}
		}
		var tname string
		switch r.pid {
		case pidMem:
			tname = chanNames[r.tid]
		case pidLLC:
			tname = "LLC"
		default:
			tname = "core " + itoa(r.tid)
		}
		if err := appendJSON(meta("thread_name", r.pid, r.tid, tname)); err != nil {
			return err
		}
	}

	final := struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}{
		TraceEvents: out,
		OtherData: map[string]string{
			"time_unit":    "1 displayed us = 1 simulated cycle",
			"recorded":     itoa64(p.Recorded()),
			"dropped":      itoa64(p.Dropped()),
			"open_flushed": itoa64(p.OpenSpansFlushed()),
		},
	}
	for k, n := range p.DroppedByKind() {
		if n > 0 {
			final.OtherData["dropped_"+Kind(k).String()] = itoa64(n)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(final)
}

func isSpanKind(k Kind) bool {
	switch k {
	case KTx, KCommitWait, KTxFlush, KTCDrain, KWPQDrain, KTCDrainOpen, KWPQDrainOpen, KTxStage:
		return true
	}
	return false
}

func itoa(n int) string { return itoa64(uint64(n)) }

func itoa64(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
