package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one data event read back from a trace_event JSON file
// (the object form WriteChromeTrace emits). Ts and Dur are in the
// file's microsecond unit — for traces this simulator wrote, one
// microsecond is one cycle.
type ChromeEvent struct {
	Name     string
	Ph       string
	Ts, Dur  uint64
	Pid, Tid int
	ID       string
	Args     map[string]uint64
}

// Span reports whether the event is a complete ("X") slice carrying a
// duration, as opposed to an instant or counter sample.
func (e ChromeEvent) Span() bool { return e.Ph == "X" }

// ChromeTraceData is a parsed trace file: the data events in file
// order, plus the writer's OtherData metadata (for our own traces:
// time_unit, recorded, dropped, open_flushed).
type ChromeTraceData struct {
	Events    []ChromeEvent
	OtherData map[string]string
}

// ReadChromeTrace parses trace_event JSON from r. Metadata ("M")
// events — process/thread names — are consumed but not returned; data
// events keep their numeric args when present. The reader accepts any
// object-form trace, not only ours, so tracedump can summarize traces
// post-processed by other tools.
func ReadChromeTrace(r io.Reader) (*ChromeTraceData, error) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   uint64          `json:"ts"`
			Dur  uint64          `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			ID   json.RawMessage `json:"id"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	out := &ChromeTraceData{OtherData: doc.OtherData}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		ev := ChromeEvent{Name: e.Name, Ph: e.Ph, Ts: e.Ts, Dur: e.Dur, Pid: e.Pid, Tid: e.Tid}
		if len(e.ID) > 0 {
			// Flow/async ids may be JSON strings or numbers; normalize
			// to the unquoted text either way.
			if err := json.Unmarshal(e.ID, &ev.ID); err != nil {
				ev.ID = string(e.ID)
			}
		}
		if len(e.Args) > 0 {
			// Best-effort: our data events carry numeric args; other
			// writers' string args are simply omitted.
			_ = json.Unmarshal(e.Args, &ev.Args)
		}
		out.Events = append(out.Events, ev)
	}
	return out, nil
}

// ValidateFlows checks the well-formedness of flow events in a parsed
// trace: every flow id carries at least two events, exactly one start
// ("s", first) and one finish ("f", last), timestamps non-decreasing
// along the chain, and each flow event anchored to a complete ("X")
// span at the same pid/tid/ts — the shape WriteChromeTrace emits for
// flight-recorder stage chains. A trace with no flow events validates
// trivially.
func ValidateFlows(data *ChromeTraceData) error {
	type key struct {
		pid, tid int
		ts       uint64
	}
	spans := map[key]bool{}
	for _, e := range data.Events {
		if e.Span() {
			spans[key{e.Pid, e.Tid, e.Ts}] = true
		}
	}
	chains := map[string][]ChromeEvent{}
	var order []string
	for _, e := range data.Events {
		switch e.Ph {
		case "s", "t", "f":
			if e.ID == "" {
				return fmt.Errorf("obs: flow event %q (ph %q) has no id", e.Name, e.Ph)
			}
			if _, ok := chains[e.ID]; !ok {
				order = append(order, e.ID)
			}
			chains[e.ID] = append(chains[e.ID], e)
		}
	}
	for _, id := range order {
		ch := chains[id]
		if len(ch) < 2 {
			return fmt.Errorf("obs: flow %s: %d event(s), want at least 2", id, len(ch))
		}
		var prev uint64
		for i, e := range ch {
			switch {
			case i == 0 && e.Ph != "s":
				return fmt.Errorf("obs: flow %s: first event ph %q, want \"s\"", id, e.Ph)
			case i == len(ch)-1 && e.Ph != "f":
				return fmt.Errorf("obs: flow %s: last event ph %q, want \"f\"", id, e.Ph)
			case i > 0 && i < len(ch)-1 && e.Ph != "t":
				return fmt.Errorf("obs: flow %s: event %d ph %q, want \"t\"", id, i, e.Ph)
			}
			if e.Ts < prev {
				return fmt.Errorf("obs: flow %s: ts %d at event %d precedes %d", id, e.Ts, i, prev)
			}
			prev = e.Ts
			if !spans[key{e.Pid, e.Tid, e.Ts}] {
				return fmt.Errorf("obs: flow %s: event %d (pid %d tid %d ts %d) has no anchoring span",
					id, i, e.Pid, e.Tid, e.Ts)
			}
		}
	}
	return nil
}
