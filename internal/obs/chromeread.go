package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one data event read back from a trace_event JSON file
// (the object form WriteChromeTrace emits). Ts and Dur are in the
// file's microsecond unit — for traces this simulator wrote, one
// microsecond is one cycle.
type ChromeEvent struct {
	Name     string
	Ph       string
	Ts, Dur  uint64
	Pid, Tid int
	Args     map[string]uint64
}

// Span reports whether the event is a complete ("X") slice carrying a
// duration, as opposed to an instant or counter sample.
func (e ChromeEvent) Span() bool { return e.Ph == "X" }

// ChromeTraceData is a parsed trace file: the data events in file
// order, plus the writer's OtherData metadata (for our own traces:
// time_unit, recorded, dropped, open_flushed).
type ChromeTraceData struct {
	Events    []ChromeEvent
	OtherData map[string]string
}

// ReadChromeTrace parses trace_event JSON from r. Metadata ("M")
// events — process/thread names — are consumed but not returned; data
// events keep their numeric args when present. The reader accepts any
// object-form trace, not only ours, so tracedump can summarize traces
// post-processed by other tools.
func ReadChromeTrace(r io.Reader) (*ChromeTraceData, error) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   uint64          `json:"ts"`
			Dur  uint64          `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	out := &ChromeTraceData{OtherData: doc.OtherData}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		ev := ChromeEvent{Name: e.Name, Ph: e.Ph, Ts: e.Ts, Dur: e.Dur, Pid: e.Pid, Tid: e.Tid}
		if len(e.Args) > 0 {
			// Best-effort: our data events carry numeric args; other
			// writers' string args are simply omitted.
			_ = json.Unmarshal(e.Args, &ev.Args)
		}
		out.Events = append(out.Events, ev)
	}
	return out, nil
}
