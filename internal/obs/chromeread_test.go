package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestChromeTraceRoundTrip writes a probe's events as Chrome trace JSON
// and reads them back: every recorded span and instant survives with
// its name, timing and args, metadata rows are filtered out, and the
// writer's OtherData accounting comes through.
func TestChromeTraceRoundTrip(t *testing.T) {
	p := NewProbe(64)
	p.Span(KTx, 0, 1, 100, 250, 7)
	p.Span(KTCDrain, 1, 2, 300, 340, 4)
	p.Instant(KTCCommit, 0, 3, 260, 0)
	p.Span(KWPQDrain, -1, 0, 400, 400, 9) // zero-length: exported as 1-cycle slice

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Events) != 4 {
		t.Fatalf("read %d events, want 4 (metadata must be filtered)", len(data.Events))
	}
	byName := map[string]ChromeEvent{}
	for _, e := range data.Events {
		byName[e.Name] = e
	}
	tx := byName[KTx.String()]
	if !tx.Span() || tx.Ts != 100 || tx.Dur != 150 {
		t.Errorf("tx span read back as %+v", tx)
	}
	if tx.Args["arg"] != 7 || tx.Args["id"] != 1 {
		t.Errorf("tx args lost: %+v", tx.Args)
	}
	if c := byName[KTCCommit.String()]; c.Span() || c.Ts != 260 {
		t.Errorf("instant read back as %+v", c)
	}
	if w := byName[KWPQDrain.String()]; !w.Span() || w.Dur != 1 {
		t.Errorf("zero-length span read back as %+v", w)
	}
	for _, key := range []string{"recorded", "dropped", "open_flushed", "time_unit"} {
		if _, ok := data.OtherData[key]; !ok {
			t.Errorf("OtherData missing %q: %+v", key, data.OtherData)
		}
	}
	if data.OtherData["recorded"] != "4" || data.OtherData["dropped"] != "0" {
		t.Errorf("accounting wrong: %+v", data.OtherData)
	}
}

// TestReadChromeTraceRejectsGarbage checks the error path names the
// problem rather than returning an empty trace.
func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	_, err := ReadChromeTrace(strings.NewReader("not json"))
	if err == nil || !strings.Contains(err.Error(), "chrome trace") {
		t.Fatalf("err = %v, want a parse error naming the trace", err)
	}
}

// TestFlowEventsRoundTrip: KTxStage spans sharing a flow id come back
// stitched — stage-named slices, s/t/f flow events anchored to them,
// and the whole trace passing ValidateFlows. A single-span flight emits
// no arrows.
func TestFlowEventsRoundTrip(t *testing.T) {
	p := NewProbe(64)
	flow := uint64(1)<<40 | 9 // core 1, tx 9
	p.Span(KTxStage, 1, flow, 10, 20, 0)
	p.Span(KTxStage, 1, flow, 20, 25, 2)
	p.Span(KTxStage, 0, flow, 25, 60, 4) // memory-side stage, channel 0
	p.Span(KTxStage, 0, 3, 30, 40, 0)    // single-span flight: no arrows

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlows(data); err != nil {
		t.Fatalf("ValidateFlows: %v", err)
	}
	var s, tt, f int
	names := map[string]int{}
	for _, e := range data.Events {
		names[e.Name]++
		switch e.Ph {
		case "s":
			s++
		case "t":
			tt++
		case "f":
			f++
		}
	}
	if s != 1 || tt != 1 || f != 1 {
		t.Errorf("flow phases s/t/f = %d/%d/%d, want 1/1/1", s, tt, f)
	}
	for _, want := range []string{"stage:execute", "stage:tc-drain", "stage:nvm-write"} {
		if names[want] == 0 {
			t.Errorf("trace lacks %q span", want)
		}
	}
}

// TestValidateFlowsRejectsMalformed covers the checker's error cases:
// chains that are too short, out of order, or floating free of any
// anchoring span.
func TestValidateFlowsRejectsMalformed(t *testing.T) {
	span := func(pid, tid int, ts uint64) ChromeEvent {
		return ChromeEvent{Name: "stage:execute", Ph: "X", Ts: ts, Dur: 5, Pid: pid, Tid: tid}
	}
	flow := func(ph string, pid, tid int, ts uint64, id string) ChromeEvent {
		return ChromeEvent{Name: "tx-flow", Ph: ph, Ts: ts, Pid: pid, Tid: tid, ID: id}
	}
	cases := []struct {
		name   string
		events []ChromeEvent
	}{
		{"single event", []ChromeEvent{span(0, 0, 5), flow("s", 0, 0, 5, "1")}},
		{"no id", []ChromeEvent{span(0, 0, 5), flow("s", 0, 0, 5, ""), flow("f", 0, 0, 5, "")}},
		{"first not s", []ChromeEvent{span(0, 0, 5), span(0, 0, 9),
			flow("t", 0, 0, 5, "1"), flow("f", 0, 0, 9, "1")}},
		{"last not f", []ChromeEvent{span(0, 0, 5), span(0, 0, 9),
			flow("s", 0, 0, 5, "1"), flow("t", 0, 0, 9, "1")}},
		{"decreasing ts", []ChromeEvent{span(0, 0, 5), span(0, 0, 9),
			flow("s", 0, 0, 9, "1"), flow("f", 0, 0, 5, "1")}},
		{"no anchoring span", []ChromeEvent{span(0, 0, 5),
			flow("s", 0, 0, 5, "1"), flow("f", 1, 3, 99, "1")}},
	}
	for _, tc := range cases {
		if err := ValidateFlows(&ChromeTraceData{Events: tc.events}); err == nil {
			t.Errorf("%s: ValidateFlows accepted a malformed trace", tc.name)
		}
	}
	// And the happy path for the same helper shapes.
	good := &ChromeTraceData{Events: []ChromeEvent{
		span(0, 0, 5), span(1, 2, 9),
		flow("s", 0, 0, 5, "1"), flow("f", 1, 2, 9, "1"),
	}}
	if err := ValidateFlows(good); err != nil {
		t.Errorf("ValidateFlows rejected a well-formed trace: %v", err)
	}
}
