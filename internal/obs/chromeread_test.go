package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestChromeTraceRoundTrip writes a probe's events as Chrome trace JSON
// and reads them back: every recorded span and instant survives with
// its name, timing and args, metadata rows are filtered out, and the
// writer's OtherData accounting comes through.
func TestChromeTraceRoundTrip(t *testing.T) {
	p := NewProbe(64)
	p.Span(KTx, 0, 1, 100, 250, 7)
	p.Span(KTCDrain, 1, 2, 300, 340, 4)
	p.Instant(KTCCommit, 0, 3, 260, 0)
	p.Span(KWPQDrain, -1, 0, 400, 400, 9) // zero-length: exported as 1-cycle slice

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Events) != 4 {
		t.Fatalf("read %d events, want 4 (metadata must be filtered)", len(data.Events))
	}
	byName := map[string]ChromeEvent{}
	for _, e := range data.Events {
		byName[e.Name] = e
	}
	tx := byName[KTx.String()]
	if !tx.Span() || tx.Ts != 100 || tx.Dur != 150 {
		t.Errorf("tx span read back as %+v", tx)
	}
	if tx.Args["arg"] != 7 || tx.Args["id"] != 1 {
		t.Errorf("tx args lost: %+v", tx.Args)
	}
	if c := byName[KTCCommit.String()]; c.Span() || c.Ts != 260 {
		t.Errorf("instant read back as %+v", c)
	}
	if w := byName[KWPQDrain.String()]; !w.Span() || w.Dur != 1 {
		t.Errorf("zero-length span read back as %+v", w)
	}
	for _, key := range []string{"recorded", "dropped", "open_flushed", "time_unit"} {
		if _, ok := data.OtherData[key]; !ok {
			t.Errorf("OtherData missing %q: %+v", key, data.OtherData)
		}
	}
	if data.OtherData["recorded"] != "4" || data.OtherData["dropped"] != "0" {
		t.Errorf("accounting wrong: %+v", data.OtherData)
	}
}

// TestReadChromeTraceRejectsGarbage checks the error path names the
// problem rather than returning an empty trace.
func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	_, err := ReadChromeTrace(strings.NewReader("not json"))
	if err == nil || !strings.Contains(err.Error(), "chrome trace") {
		t.Fatalf("err = %v, want a parse error naming the trace", err)
	}
}
