package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmemaccel/internal/sim"
)

// TestNilProbeIsNoOp: every method on a nil probe must be safe and
// answer the zero value.
func TestNilProbeIsNoOp(t *testing.T) {
	var p *Probe
	p.Span(KTx, 0, 1, 10, 20, 0)
	p.Instant(KTCFull, 0, 1, 10, 0)
	p.AddSource("x", func() int { return 1 })
	p.StartSampling(sim.NewKernel(), 10)
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	if got := p.Events(); got != nil {
		t.Fatalf("nil probe Events() = %v, want nil", got)
	}
	if p.Recorded() != 0 || p.Dropped() != 0 || p.SampleCount() != 0 {
		t.Fatal("nil probe reports activity")
	}
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("nil-probe trace is not valid JSON: %v", err)
	}
	if err := p.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestNilProbeAllocations: the disabled (nil-probe) hot path must not
// allocate — this is the zero-overhead-when-disabled guarantee.
func TestNilProbeAllocations(t *testing.T) {
	var p *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		p.Span(KTx, 2, 7, 100, 200, 0)
		p.Instant(KTCFull, 2, 7, 100, 0xabc)
		p.Instant(KLLCPDrop, -1, 0xdead, 101, 0)
		p.Span(KTCDrain, 1, 0, 50, 90, 12)
	})
	if allocs != 0 {
		t.Fatalf("nil probe allocated %.1f per run, want 0", allocs)
	}
}

// TestRingOverwrite: the ring keeps the newest events and counts drops.
func TestRingOverwrite(t *testing.T) {
	p := NewProbe(4)
	for i := uint64(0); i < 10; i++ {
		p.Instant(KTCCommit, 0, i, i, 0)
	}
	if p.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", p.Recorded())
	}
	if p.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", p.Dropped())
	}
	ev := p.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(6 + i); e.ID != want {
			t.Fatalf("event %d has ID %d, want %d (oldest must be overwritten)", i, e.ID, want)
		}
	}
}

// TestRingOverwriteCountsPerKind: the per-kind drop breakdown
// attributes each overwrite to the kind of the event it evicted, sums
// to Dropped(), and survives the Chrome export as dropped_<kind>
// otherData entries (zero-drop kinds omitted).
func TestRingOverwriteCountsPerKind(t *testing.T) {
	p := NewProbe(4)
	for i := uint64(0); i < 4; i++ {
		p.Instant(KTCCommit, 0, i, i, 0)
	}
	for i := uint64(4); i < 7; i++ {
		p.Instant(KTCFull, 0, i, i, 0)
	}
	by := p.DroppedByKind()
	if got := by[KTCCommit]; got != 3 {
		t.Errorf("dropped[tc-commit] = %d, want 3 (the three evicted commits)", got)
	}
	var sum uint64
	for _, n := range by {
		sum += n
	}
	if sum != p.Dropped() {
		t.Errorf("per-kind drops sum to %d, Dropped() = %d", sum, p.Dropped())
	}
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"dropped_tc-commit":"3"`) {
		t.Errorf("otherData lacks dropped_tc-commit: %s", s)
	}
	if strings.Contains(s, "dropped_tc-full") {
		t.Errorf("otherData lists a kind with zero drops: %s", s)
	}

	if got := (*Probe)(nil).DroppedByKind(); got != nil {
		t.Errorf("nil probe DroppedByKind = %v, want nil", got)
	}
}

// TestEventsSorted: export order is by start cycle even when spans are
// recorded at end time out of order.
func TestEventsSorted(t *testing.T) {
	p := NewProbe(16)
	p.Span(KTx, 0, 2, 50, 120, 0)
	p.Span(KTx, 1, 1, 10, 200, 0)
	p.Instant(KTCFull, 0, 3, 30, 0)
	ev := p.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events unsorted: %v", ev)
		}
	}
}

// TestChromeTraceShape: the export parses as JSON, carries span and
// instant phases, and names its tracks.
func TestChromeTraceShape(t *testing.T) {
	p := NewProbe(64)
	p.Span(KTx, 0, 42, 100, 250, 0)
	p.Span(KTCDrain, 0, 0, 260, 300, 5)
	p.Instant(KLLCPDrop, -1, 0x1000, 270, 0)
	p.Instant(KSideProbe, -1, 0x2000, 280, 1)
	p.Span(KWPQDrain, 0, 0, 300, 400, 51)

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]string{}
	for _, e := range tr.TraceEvents {
		if e.Ph != "M" {
			phases[e.Name] = e.Ph
		}
	}
	if phases["tx"] != "X" {
		t.Fatalf("tx span exported as %q, want X", phases["tx"])
	}
	if phases["tc-drain"] != "X" {
		t.Fatalf("tc-drain exported as %q, want X", phases["tc-drain"])
	}
	if phases["llc-pdrop"] != "i" {
		t.Fatalf("llc-pdrop exported as %q, want i", phases["llc-pdrop"])
	}
	if !strings.Contains(buf.String(), "process_name") {
		t.Fatal("trace carries no process_name metadata")
	}
}

// TestSampler: kernel-driven sampling fires at the configured period and
// exports a CSV with a column per source.
func TestSampler(t *testing.T) {
	k := sim.NewKernel()
	p := NewProbe(8)
	depth := 0
	p.AddSource("queue_depth", func() int { return depth })
	p.AddSource("constant", func() int { return 7 })
	p.StartSampling(k, 10)
	for i := 0; i < 35; i++ {
		depth = i
		k.Step()
	}
	if p.SampleCount() != 3 {
		t.Fatalf("SampleCount = %d after 35 cycles at every=10, want 3", p.SampleCount())
	}
	var buf bytes.Buffer
	if err := p.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,queue_depth,constant" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4 (header + 3 samples)", len(lines))
	}
	if !strings.HasSuffix(lines[1], ",7") {
		t.Fatalf("constant column wrong: %q", lines[1])
	}
}

// TestSamplerNoSources: StartSampling with zero registered sources must
// schedule nothing — no samples accumulate, and the CSV degenerates to
// a bare header rather than rows of empty columns.
func TestSamplerNoSources(t *testing.T) {
	k := sim.NewKernel()
	p := NewProbe(8)
	p.StartSampling(k, 10)
	for i := 0; i < 50; i++ {
		k.Step()
	}
	if p.SampleCount() != 0 {
		t.Fatalf("SampleCount = %d with no sources, want 0", p.SampleCount())
	}
	if got := p.SampleCycles(); len(got) != 0 {
		t.Fatalf("SampleCycles = %v with no sources, want empty", got)
	}
	var buf bytes.Buffer
	if err := p.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "cycle" {
		t.Fatalf("CSV = %q, want bare header", got)
	}
}

// TestSamplerPeriodLongerThanRun: a sampling period beyond the run
// length yields zero samples and a header-only CSV — never a partial or
// extrapolated row.
func TestSamplerPeriodLongerThanRun(t *testing.T) {
	k := sim.NewKernel()
	p := NewProbe(8)
	p.AddSource("queue_depth", func() int { return 1 })
	p.StartSampling(k, 1000)
	for i := 0; i < 35; i++ {
		k.Step()
	}
	if p.SampleCount() != 0 {
		t.Fatalf("SampleCount = %d after 35 cycles at every=1000, want 0", p.SampleCount())
	}
	var buf bytes.Buffer
	if err := p.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "cycle,queue_depth" {
		t.Fatalf("CSV = %q, want header only", got)
	}
}

// BenchmarkNilProbe measures the disabled-path cost of one probe call —
// the branch every instrumented component pays per event site.
func BenchmarkNilProbe(b *testing.B) {
	var p *Probe
	for i := 0; i < b.N; i++ {
		p.Instant(KTCCommit, 0, uint64(i), uint64(i), 0)
	}
}

// BenchmarkEnabledProbe measures the enabled-path cost of recording into
// the ring.
func BenchmarkEnabledProbe(b *testing.B) {
	p := NewProbe(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Instant(KTCCommit, 0, uint64(i), uint64(i), 0)
	}
}

// TestFlushOpenSpans: registered flushers run once per Flush call, the
// counter tracks spans actually recorded, and the nil probe no-ops.
func TestFlushOpenSpans(t *testing.T) {
	var nilp *Probe
	nilp.AddOpenSpanFlusher(func(uint64) { t.Fatal("nil probe invoked a flusher") })
	nilp.FlushOpenSpans(10)
	if nilp.OpenSpansFlushed() != 0 {
		t.Fatal("nil probe reports flushed spans")
	}

	p := NewProbe(16)
	open := true
	p.AddOpenSpanFlusher(func(now uint64) {
		if open {
			p.Span(KTCDrainOpen, 0, 0, 5, now, 2)
		}
	})
	p.AddOpenSpanFlusher(func(now uint64) {}) // a component with nothing open
	p.FlushOpenSpans(42)
	if p.OpenSpansFlushed() != 1 {
		t.Fatalf("OpenSpansFlushed = %d, want 1", p.OpenSpansFlushed())
	}
	ev := p.Events()
	if len(ev) != 1 || ev[0].Kind != KTCDrainOpen || ev[0].End != 42 {
		t.Fatalf("events = %+v, want one KTCDrainOpen ending at 42", ev)
	}
	// After the span closes, a second collection flushes nothing new.
	open = false
	p.FlushOpenSpans(50)
	if p.OpenSpansFlushed() != 1 {
		t.Fatalf("OpenSpansFlushed after close = %d, want 1", p.OpenSpansFlushed())
	}
}

// TestOpenSpanKindsExported: the open-span kinds survive the Chrome
// trace export as duration events and the counter appears in otherData.
func TestOpenSpanKindsExported(t *testing.T) {
	p := NewProbe(16)
	p.AddOpenSpanFlusher(func(now uint64) { p.Span(KWPQDrainOpen, 0, 0, 10, now, 7) })
	p.FlushOpenSpans(99)
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "wpq-drain-open") {
		t.Fatal("exported trace lacks the open-span event")
	}
	if !strings.Contains(s, `"open_flushed":"1"`) {
		t.Fatalf("otherData lacks open_flushed counter: %s", s)
	}
}
