package stats

import (
	"math"
	"strings"
	"testing"
)

func sample() *Series {
	s := NewSeries("ipc", []string{"a", "b"}, []string{"opt", "tc"})
	s.Set("a", "opt", 2.0)
	s.Set("a", "tc", 1.0)
	s.Set("b", "opt", 4.0)
	s.Set("b", "tc", 3.0)
	return s
}

func TestSetGet(t *testing.T) {
	s := sample()
	if s.Get("a", "tc") != 1.0 || s.Get("b", "opt") != 4.0 {
		t.Fatal("Get returned wrong cells")
	}
}

func TestNormalized(t *testing.T) {
	n := sample().Normalized("opt")
	if n.Get("a", "opt") != 1.0 || n.Get("b", "opt") != 1.0 {
		t.Fatal("baseline not 1.0")
	}
	if n.Get("a", "tc") != 0.5 || n.Get("b", "tc") != 0.75 {
		t.Fatalf("normalized tc = %v,%v, want 0.5,0.75", n.Get("a", "tc"), n.Get("b", "tc"))
	}
}

func TestNormalizedZeroBaseline(t *testing.T) {
	// A zero baseline makes the ratio undefined: the cell must be NaN
	// (rendered "n/a"), not a silent 0 that vanishes from the geomean.
	s := NewSeries("x", []string{"a"}, []string{"opt", "tc"})
	s.Set("a", "tc", 5)
	n := s.Normalized("opt")
	if !math.IsNaN(n.Get("a", "tc")) {
		t.Fatalf("zero baseline: cell = %v, want NaN", n.Get("a", "tc"))
	}
	if !math.IsNaN(n.Get("a", "opt")) {
		t.Fatalf("zero baseline: baseline cell = %v, want NaN", n.Get("a", "opt"))
	}
}

func TestNaNRendersAsNA(t *testing.T) {
	s := NewSeries("x", []string{"a", "b"}, []string{"opt", "tc"})
	s.Set("a", "opt", 0) // zero baseline: row a becomes NaN
	s.Set("a", "tc", 5)
	s.Set("b", "opt", 2)
	s.Set("b", "tc", 1)
	n := s.Normalized("opt")
	for name, out := range map[string]string{
		"Table":    n.Table(),
		"CSV":      n.CSV(),
		"Markdown": n.Markdown(),
		"Bars":     n.Bars(20),
	} {
		if !strings.Contains(out, "n/a") {
			t.Errorf("%s does not render NaN as n/a:\n%s", name, out)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s leaks a raw NaN:\n%s", name, out)
		}
	}
	// The defined row must still render numerically.
	if !strings.Contains(n.Table(), "0.500") {
		t.Errorf("defined cells lost:\n%s", n.Table())
	}
}

func TestGeomeanSkipsNaN(t *testing.T) {
	s := NewSeries("x", []string{"a", "b"}, []string{"m"})
	s.Set("a", "m", 4)
	s.Set("b", "m", math.NaN())
	if got := s.Geomean("m"); got != 4 {
		t.Fatalf("geomean = %v, want 4 (NaN skipped)", got)
	}
}

func TestGeomean(t *testing.T) {
	n := sample().Normalized("opt")
	want := math.Sqrt(0.5 * 0.75)
	if got := n.Geomean("tc"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("geomean = %v, want %v", got, want)
	}
	if got := n.Geomean("opt"); math.Abs(got-1) > 1e-12 {
		t.Fatalf("baseline geomean = %v, want 1", got)
	}
}

func TestGeomeanSkipsZeros(t *testing.T) {
	s := NewSeries("x", []string{"a", "b"}, []string{"m"})
	s.Set("a", "m", 4)
	// b left zero
	if got := s.Geomean("m"); got != 4 {
		t.Fatalf("geomean = %v, want 4 (zero skipped)", got)
	}
}

func TestTableOutput(t *testing.T) {
	out := sample().Table()
	for _, want := range []string{"ipc", "opt", "tc", "geomean", "2.000", "0.75"} {
		if !strings.Contains(out, want) && want != "0.75" {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + 2 rows + geomean
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestBarsScaleToWidth(t *testing.T) {
	out := sample().Bars(20)
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("longest bar not at full width:\n%s", out)
	}
	if strings.Contains(out, strings.Repeat("#", 21)) {
		t.Fatal("bar exceeded width")
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3", len(lines))
	}
	if lines[0] != "benchmark,opt,tc" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "a,2,1" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestMarkdownOutput(t *testing.T) {
	out := sample().Normalized("opt").Markdown()
	for _, want := range []string{"| benchmark |", "| a |", "**geomean**", "| 0.500 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCrosstab(t *testing.T) {
	out := Crosstab("cycle attribution", []string{"core0", "core1"},
		[]string{"compute", "load-stall"},
		[][]float64{{12.5, 87.5}, {50}})
	for _, want := range []string{"cycle attribution", "core0", "core1",
		"compute", "load-stall", "12.500", "87.500", "50.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Crosstab output missing %q:\n%s", want, out)
		}
	}
	// The ragged second row renders its missing cell as zero.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("Crosstab has %d lines, want 4 (title, header, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[3], "0.000") {
		t.Errorf("missing cell not rendered as 0: %q", lines[3])
	}
	// Wide column labels widen their column rather than colliding.
	wide := Crosstab("t", []string{"r"}, []string{"a-very-long-category"},
		[][]float64{{1}})
	if !strings.Contains(wide, "a-very-long-category") {
		t.Errorf("wide label truncated:\n%s", wide)
	}
}
