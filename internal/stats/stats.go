// Package stats turns raw run results into the paper's presentation:
// per-benchmark series normalized to a baseline, geometric means, and
// ASCII tables/bar charts for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series holds one metric across a (benchmark x mechanism) grid:
// Values[benchmark][mechanism].
type Series struct {
	Name   string
	Benchs []string
	Mechs  []string
	Values map[string]map[string]float64
}

// NewSeries allocates a series with the given axes.
func NewSeries(name string, benchs, mechs []string) *Series {
	v := make(map[string]map[string]float64, len(benchs))
	for _, b := range benchs {
		v[b] = make(map[string]float64, len(mechs))
	}
	return &Series{Name: name, Benchs: benchs, Mechs: mechs, Values: v}
}

// Set stores one cell.
func (s *Series) Set(bench, mech string, v float64) { s.Values[bench][mech] = v }

// Get reads one cell.
func (s *Series) Get(bench, mech string) float64 { return s.Values[bench][mech] }

// Normalized returns a new series with every row divided by the
// baseline mechanism's cell (the paper normalizes everything to a chosen
// scheme). Rows whose baseline is zero become NaN — an honest "not
// defined" that Table/CSV/Markdown render as n/a — rather than a silent
// zero that would vanish from Geomean and inflate the summary.
func (s *Series) Normalized(baseline string) *Series {
	out := NewSeries(s.Name+" (normalized to "+baseline+")", s.Benchs, s.Mechs)
	for _, b := range s.Benchs {
		base := s.Values[b][baseline]
		for _, m := range s.Mechs {
			if base != 0 {
				out.Values[b][m] = s.Values[b][m] / base
			} else {
				out.Values[b][m] = math.NaN()
			}
		}
	}
	return out
}

// Geomean computes the geometric mean of the column for mech across
// benchmarks (zero and NaN cells are skipped).
func (s *Series) Geomean(mech string) float64 {
	sum, n := 0.0, 0
	for _, b := range s.Benchs {
		v := s.Values[b][mech]
		if v > 0 { // false for NaN, too
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// cell formats one value to three decimals, rendering NaN as "n/a".
func cell(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// Table renders the series as an aligned ASCII table with a geomean row.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	w := 0
	for _, bench := range s.Benchs {
		if len(bench) > w {
			w = len(bench)
		}
	}
	if w < len("geomean") {
		w = len("geomean")
	}
	fmt.Fprintf(&b, "%-*s", w+2, "")
	for _, m := range s.Mechs {
		fmt.Fprintf(&b, "%10s", m)
	}
	b.WriteByte('\n')
	for _, bench := range s.Benchs {
		fmt.Fprintf(&b, "%-*s", w+2, bench)
		for _, m := range s.Mechs {
			fmt.Fprintf(&b, "%10s", cell(s.Values[bench][m]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s", w+2, "geomean")
	for _, m := range s.Mechs {
		fmt.Fprintf(&b, "%10.3f", s.Geomean(m))
	}
	b.WriteByte('\n')
	return b.String()
}

// Bars renders the series as per-benchmark ASCII bar groups, scaled so
// the longest bar is width characters.
func (s *Series) Bars(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, bench := range s.Benchs {
		for _, m := range s.Mechs {
			if v := s.Values[bench][m]; v > max { // false for NaN
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	mw := 0
	for _, m := range s.Mechs {
		if len(m) > mw {
			mw = len(m)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	for _, bench := range s.Benchs {
		fmt.Fprintf(&b, "%s\n", bench)
		for _, m := range s.Mechs {
			v := s.Values[bench][m]
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "  %-*s | n/a\n", mw, m)
				continue
			}
			n := int(v / max * float64(width))
			fmt.Fprintf(&b, "  %-*s |%s %.3f\n", mw, m, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}

// CSV renders the series as comma-separated values (benchmark rows,
// mechanism columns).
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, m := range s.Mechs {
		b.WriteString("," + m)
	}
	b.WriteByte('\n')
	for _, bench := range s.Benchs {
		b.WriteString(bench)
		for _, m := range s.Mechs {
			if v := s.Values[bench][m]; math.IsNaN(v) {
				b.WriteString(",n/a")
			} else {
				fmt.Fprintf(&b, ",%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Crosstab renders a plain rows-by-columns table of values (no geomean
// row — for non-ratio data like cycle-attribution percentages). vals is
// indexed [row][col] and must be rectangular; missing cells render as
// 0.
func Crosstab(name string, rows, cols []string, vals [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	cw := 10
	for _, c := range cols {
		if len(c)+2 > cw {
			cw = len(c) + 2
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%*s", cw, c)
	}
	b.WriteByte('\n')
	for i, r := range rows {
		fmt.Fprintf(&b, "%-*s", w+2, r)
		for j := range cols {
			v := 0.0
			if i < len(vals) && j < len(vals[i]) {
				v = vals[i][j]
			}
			fmt.Fprintf(&b, "%*.3f", cw, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (deterministic output
// helper).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Markdown renders the series as a GitHub-flavoured markdown table with a
// geomean row (the EXPERIMENTS.md format).
func (s *Series) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", s.Name)
	b.WriteString("| benchmark |")
	for _, m := range s.Mechs {
		fmt.Fprintf(&b, " %s |", m)
	}
	b.WriteString("\n|---|")
	for range s.Mechs {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, bench := range s.Benchs {
		fmt.Fprintf(&b, "| %s |", bench)
		for _, m := range s.Mechs {
			fmt.Fprintf(&b, " %s |", cell(s.Values[bench][m]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("| **geomean** |")
	for _, m := range s.Mechs {
		fmt.Fprintf(&b, " **%.3f** |", s.Geomean(m))
	}
	b.WriteByte('\n')
	return b.String()
}
