// Package ablation sweeps the design parameters the paper identifies as
// knobs: transaction-cache capacity ("flexibly configured based on the
// transaction sizes", §3), the overflow high-water mark (§4.1), the TC
// drain bandwidth, NVM write latency (technology sensitivity), the
// core's memory-level parallelism, and the backend's NVM channel count
// (memory-side parallelism). Each sweep varies exactly one
// parameter and reports throughput plus the mechanism-specific pressure
// counters, producing the data behind examples/designspace and
// BenchmarkAblation*.
package ablation

import (
	"fmt"
	"strings"

	"pmemaccel"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/sweep"
	"pmemaccel/internal/workload"
)

// Point is one sweep sample.
type Point struct {
	// Label names the parameter value ("4KB", "0.9", ...).
	Label string
	// Value is the numeric parameter value.
	Value float64
	// Throughput in transactions per kilocycle.
	Throughput float64
	// IPC of the run.
	IPC float64
	// StallPct is the TC-full stall share of cycles (TCache runs).
	StallPct float64
	// FallbackWrites and FullRejects are TC pressure counters summed
	// across cores.
	FallbackWrites uint64
	FullRejects    uint64
}

// Sweep is a named series of points.
type Sweep struct {
	Name   string
	Points []Point
}

// Table renders the sweep.
func (s *Sweep) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	fmt.Fprintf(&b, "%-10s %12s %8s %10s %12s %12s\n",
		"value", "tx/kcycle", "IPC", "stall %", "fallbacks", "rejects")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-10s %12.3f %8.3f %9.3f%% %12d %12d\n",
			p.Label, p.Throughput, p.IPC, p.StallPct, p.FallbackWrites, p.FullRejects)
	}
	return b.String()
}

// point is one sweep cell before simulation: a configuration plus its
// axis label and value.
type point struct {
	cfg   pmemaccel.Config
	label string
	value float64
}

// runPoints simulates every cell on a bounded worker pool (workers <= 0
// selects GOMAXPROCS). Each cell seeds its own RNG from its
// configuration, and points land in sweep order regardless of
// completion order, so the table is bit-identical to a sequential run.
func runPoints(name string, pts []point, workers int) (*Sweep, error) {
	results, err := sweep.Run(len(pts), workers, func(i int) (Point, error) {
		res, err := pmemaccel.Run(pts[i].cfg)
		if err != nil {
			return Point{}, fmt.Errorf("ablation: %s: %w", pts[i].label, err)
		}
		p := Point{
			Label:      pts[i].label,
			Value:      pts[i].value,
			Throughput: res.Throughput(),
			IPC:        res.IPC(),
		}
		// StallFraction is already normalized by cores x Cycles; print
		// it as-is (this used to divide by the core count a second
		// time, under-reporting stalls 4x on the default machine).
		p.StallPct = res.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry }) * 100
		for _, tc := range res.TC {
			p.FallbackWrites += tc.FallbackWrites
			p.FullRejects += tc.FullRejects
		}
		return p, nil
	}, nil)
	if err != nil {
		return nil, err
	}
	return &Sweep{Name: name, Points: results}, nil
}

// TCSize sweeps the transaction-cache capacity on a benchmark, running
// cells on up to workers goroutines (<= 0 selects GOMAXPROCS).
func TCSize(base pmemaccel.Config, sizes []int, workers int) (*Sweep, error) {
	var pts []point
	for _, bytes := range sizes {
		cfg := base
		cfg.TCBytes = bytes
		pts = append(pts, point{cfg, fmt.Sprintf("%dB", bytes), float64(bytes)})
	}
	return runPoints(fmt.Sprintf("TC capacity sweep (%v)", base.Benchmark), pts, workers)
}

// HighWater sweeps the overflow trigger fraction.
func HighWater(base pmemaccel.Config, fracs []float64, workers int) (*Sweep, error) {
	var pts []point
	for _, f := range fracs {
		cfg := base
		cfg.TCHighWaterFrac = f
		pts = append(pts, point{cfg, fmt.Sprintf("%.2f", f), f})
	}
	return runPoints(fmt.Sprintf("overflow high-water sweep (%v)", base.Benchmark), pts, workers)
}

// MLP sweeps the core's memory-level-parallelism window.
func MLP(base pmemaccel.Config, windows []int, workers int) (*Sweep, error) {
	var pts []point
	for _, w := range windows {
		cfg := base
		cfg.CPU.MLP = w
		pts = append(pts, point{cfg, fmt.Sprintf("%d", w), float64(w)})
	}
	return runPoints(fmt.Sprintf("MLP window sweep (%v/%v)", base.Benchmark, base.Mechanism), pts, workers)
}

// Channels sweeps the NVM channel count of the memory backend, measuring
// how much memory-level parallelism at the NVM side buys each mechanism
// (DRAM stays single-channel so the axis isolates the persistent path).
func Channels(base pmemaccel.Config, counts []int, workers int) (*Sweep, error) {
	var pts []point
	for _, n := range counts {
		cfg := base
		cfg.NVMChannels = n
		pts = append(pts, point{cfg, fmt.Sprintf("%dch", n), float64(n)})
	}
	return runPoints(fmt.Sprintf("NVM channel sweep (%v/%v)", base.Benchmark, base.Mechanism), pts, workers)
}

// Default sweeps used by the CLI and benches.
var (
	DefaultTCSizes       = []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	DefaultHighWaters    = []float64{0.5, 0.7, 0.9, 1.0}
	DefaultMLPs          = []int{1, 2, 4, 8, 16}
	DefaultChannelCounts = []int{1, 2, 4, 8}
)

// QuickBase returns a fast base configuration for sweeps.
func QuickBase(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
	cfg := pmemaccel.DefaultConfig(b, m)
	cfg.Ops = 4000
	return cfg
}

// NVMTechnology sweeps the nonvolatile-memory technology class,
// measuring how the accelerator's advantage shifts with write latency
// (slower writes make software logging's fenced round-trips worse and
// stress the TC drain path harder).
func NVMTechnology(base pmemaccel.Config, techs []pmemaccel.NVMTech, workers int) (*Sweep, error) {
	var pts []point
	for _, tech := range techs {
		cfg := base
		cfg.NVMTech = tech
		pts = append(pts, point{cfg, tech.String(), float64(tech)})
	}
	return runPoints(fmt.Sprintf("NVM technology sweep (%v/%v)", base.Benchmark, base.Mechanism), pts, workers)
}
