package ablation

import (
	"strings"
	"testing"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func fastBase(b workload.Benchmark) pmemaccel.Config {
	cfg := pmemaccel.DefaultConfig(b, pmemaccel.TCache)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 800
	cfg.Ops = 400
	return cfg
}

func TestTCSizeSweepMonotoneAtExtremes(t *testing.T) {
	s, err := TCSize(fastBase(workload.SPS), []int{256, 4096}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(s.Points))
	}
	tiny, big := s.Points[0], s.Points[1]
	if tiny.Throughput >= big.Throughput {
		t.Errorf("256B TC throughput %.3f not below 4KB %.3f", tiny.Throughput, big.Throughput)
	}
	if tiny.FallbackWrites == 0 {
		t.Error("256B TC produced no fallback writes")
	}
	if big.FallbackWrites != 0 {
		t.Errorf("4KB TC produced %d fallback writes on a 2-store tx benchmark", big.FallbackWrites)
	}
}

func TestHighWaterSweep(t *testing.T) {
	s, err := HighWater(fastBase(workload.BTree), []float64{0.5, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A lower high-water mark triggers the fall-back earlier: never
	// fewer fallback writes than the 1.0 (disabled) setting.
	if s.Points[0].FallbackWrites < s.Points[1].FallbackWrites {
		t.Errorf("high-water 0.5 fallbacks %d < 1.0 fallbacks %d",
			s.Points[0].FallbackWrites, s.Points[1].FallbackWrites)
	}
}

func TestMLPSweepHelpsIndependentLoads(t *testing.T) {
	// sps loads are independent: a wider MLP window must not hurt and
	// should help.
	s, err := MLP(fastBase(workload.SPS), []int{1, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[1].Throughput < s.Points[0].Throughput*0.98 {
		t.Errorf("MLP 8 throughput %.3f below MLP 1 %.3f", s.Points[1].Throughput, s.Points[0].Throughput)
	}
}

func TestSweepTableRenders(t *testing.T) {
	s, err := TCSize(fastBase(workload.SPS), []int{512}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Table()
	for _, want := range []string{"TC capacity", "tx/kcycle", "512B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestNVMTechnologySweep(t *testing.T) {
	s, err := NVMTechnology(fastBase(workload.SPS), pmemaccel.NVMTechs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	// PCM's 10x slower writes must not beat STT-RAM.
	sttram, pcm := s.Points[0], s.Points[1]
	if pcm.Throughput > sttram.Throughput {
		t.Errorf("PCM throughput %.3f above STT-RAM %.3f", pcm.Throughput, sttram.Throughput)
	}
}

func TestParseNVMTech(t *testing.T) {
	for _, tech := range pmemaccel.NVMTechs {
		got, err := pmemaccel.ParseNVMTech(tech.String())
		if err != nil || got != tech {
			t.Errorf("ParseNVMTech(%q) = %v, %v", tech.String(), got, err)
		}
	}
	if _, err := pmemaccel.ParseNVMTech("dram"); err == nil {
		t.Error("unknown tech accepted")
	}
}
