// Parallel execution mode: tick independent component groups on worker
// goroutines between per-cycle barriers, byte-identical to the serial
// kernel.
//
// The serial kernel's contract is strict: within a cycle, events fire in
// (cycle, seq) order, then tickables tick in registration order, and
// every side effect (a Schedule, a write to a shared component) lands in
// that order. The parallel mode keeps the contract observable-identical
// by splitting each component's cycle work into two phases:
//
//   - phase A (private): the component's Tick runs on a worker and may
//     read/write only state owned by its group, plus make synchronous
//     calls into its own per-core mechanism slot;
//   - phase B (shared): every interaction with shared state — kernel
//     Schedule, cache-hierarchy access, memory-controller enqueue — is
//     captured as a closure in the group's journal instead of executing.
//
// After the wave barrier, the coordinator replays journals in
// registration order of their owners. Replay therefore assigns event seq
// numbers and mutates shared components in exactly the order the serial
// sweep would have, so the event heap, every component state, and every
// result byte are identical to the serial kernel.
//
// Conservative lookahead comes from three levers, all reusing PR 3's
// quiescence machinery (the Quiescer contract, DESIGN.md §10):
//
//   - whole-machine: maybeSkip fast-forwards the clock to the next event
//     when every component is idle, exactly as in serial mode;
//   - per-component: on a stepped cycle, a component whose Idle()
//     predicate holds at its registration slot has its Tick elided and
//     replaced by SkipCycles(1). By the Quiescer contract that Tick
//     would have been a no-op apart from bulk accounting, so elision is
//     unobservable. This is the dominant win: on the measured grids
//     ~90% of tick slots are idle on stepped cycles.
//   - poll reuse: a stepped cycle whose sweep elided every component
//     proves the machine idle as of the end of that cycle, so the next
//     maybeSkip reuses that verdict instead of re-polling. The reuse is
//     one-directional (a busy sweep still re-polls, because the busy
//     component may have gone idle during its own Tick), so the skip
//     decisions — and the Skipped() count — match serial exactly.
package sim

import "sync"

// Ctx is a component's handle to the kernel. It forwards to the kernel
// directly in serial mode and journals shared-state interactions while
// its component runs inside a parallel wave. Components hold a *Ctx
// where they previously held a *Kernel; NewCtx hands out contexts for
// serial use and Bind associates them with tickables for parallel use.
type Ctx struct {
	k *Kernel
	// j is non-nil exactly while a tickable bound to this ctx runs
	// inside a parallel wave (set by the coordinator before dispatch,
	// cleared before replay; the task channel and the wave WaitGroup
	// order those writes against the worker's reads).
	j *journal
}

// NewCtx returns a context forwarding to k. One context may serve many
// components in serial mode; in parallel mode each bound group needs
// its own (Bind enforces it).
func (k *Kernel) NewCtx() *Ctx { return &Ctx{k: k} }

// Now reports the current cycle. Safe from a worker: the coordinator
// does not advance the clock while a wave is in flight.
func (x *Ctx) Now() uint64 { return x.k.now }

// Register forwards to Kernel.Register.
func (x *Ctx) Register(t Tickable) { x.k.Register(t) }

// Schedule arranges fn to run delay cycles from now, exactly like
// Kernel.Schedule. Inside a parallel wave the call is journaled and the
// (cycle, seq) assignment happens at replay, in registration order —
// the same order the serial sweep would have assigned it.
func (x *Ctx) Schedule(delay uint64, fn func()) {
	if x.j != nil {
		x.j.ops = append(x.j.ops, func() { x.k.Schedule(delay, fn) })
		return
	}
	x.k.Schedule(delay, fn)
}

// Deferring reports whether the component is currently running inside a
// parallel wave, i.e. whether calls into shared components must go
// through Defer. Callers use the guarded pattern
//
//	if ctx.Deferring() {
//	        ctx.Defer(func() { shared.Op(args) })
//	} else {
//	        shared.Op(args)
//	}
//
// so the serial hot path makes the call directly and constructs no
// closure (the simulator's zero-allocation regression tests pin this).
func (x *Ctx) Deferring() bool { return x.j != nil }

// Defer journals fn for replay after the current wave's barrier. Only
// legal while Deferring() reports true. fn must capture its inputs by
// value when they alias state the component mutates later in the same
// Tick — replay runs after the whole Tick, not at the call site.
func (x *Ctx) Defer(fn func()) { x.j.ops = append(x.j.ops, fn) }

// journal buffers a wave member's shared-state interactions, in program
// order, for coordinator replay after the barrier.
type journal struct {
	ops []func()
}

// replay runs and clears the buffered ops. Runs on the coordinator with
// the owner's ctx already unbound, so replayed ops execute against the
// kernel directly.
func (j *journal) replay() {
	ops := j.ops
	j.ops = ops[:0]
	for i := range ops {
		ops[i]()
		ops[i] = nil // release the closure
	}
}

// bind records a Bind call until prepare resolves tickables to
// registration indices.
type bind struct {
	x *Ctx
	t Tickable
}

// seg is one precomputed span of the registration order: either a run
// of coordinator-owned tickables or one contiguous wave of bound ones.
type seg struct {
	start, end int
	wave       bool
}

// parallel holds the worker-mode state hanging off a Kernel.
type parallel struct {
	workers  int
	binds    []bind
	prepared bool

	// minDispatch is the smallest busy-member count a wave hands to the
	// worker pool; below it the coordinator ticks the busy members
	// inline in registration order (which IS the serial sweep, so no
	// journaling is needed). Worker handoff costs microseconds per wave
	// against tick bodies measured in hundreds of nanoseconds, so small
	// waves are faster inline.
	minDispatch int

	// Per-tickable-index, filled by prepare:
	ctxOf []*Ctx    // bound context, nil = coordinator-owned (shared)
	js    []journal // wave journal (only used at bound indices)

	segs []seg // sweep plan, derived from ctxOf
	n    int   // len(k.tickables) the plan was built for

	busy []int // scratch: busy member indices of the current wave

	// allIdleLast is true when the previous stepped cycle's sweep elided
	// every component: the machine was provably idle at the end of that
	// cycle, so maybeSkip may reuse the verdict instead of re-polling.
	allIdleLast bool

	// waveHist counts wave widths on stepped cycles: waveHist[w] is how
	// many waves had exactly w busy (non-elided) members. Width 0 means
	// the whole wave was elided. waveInline/waveDispatched split the
	// nonzero-width waves by execution path (below/at the dispatch
	// threshold). Diagnostic only — deliberately NOT part of Result, so
	// serial-vs-parallel result equivalence stays byte-exact.
	waveHist       []uint64
	waveInline     uint64
	waveDispatched uint64

	tasks chan func()
	wg    sync.WaitGroup
}

// SetParallel switches the kernel to parallel execution with the given
// worker count (0 restores serial mode). Must be called before the run
// starts; bound groups are declared with Bind. Results are byte-identical
// to serial mode provided every component either is coordinator-owned or
// follows the Ctx journaling discipline for shared-state interactions.
func (k *Kernel) SetParallel(workers int) {
	if workers <= 0 {
		k.par = nil
		return
	}
	k.par = &parallel{workers: workers, minDispatch: 3}
}

// SetDispatchThreshold overrides the busy-member count at which a wave
// is handed to the worker pool instead of ticked inline (default 3,
// minimum 2). Lowering it to 2 forces the journaling path onto nearly
// every multi-busy cycle — the race-test configuration; raising it
// keeps small machines on the inline path. No-op in serial mode.
func (k *Kernel) SetDispatchThreshold(n int) {
	if k.par == nil {
		return
	}
	if n < 2 {
		n = 2
	}
	k.par.minDispatch = n
}

// Bind assigns tickables to ctx's group for parallel execution: during
// a wave they tick on a worker and their shared-state interactions are
// journaled through ctx. Tickables never bound stay coordinator-owned
// and tick inline, exactly as in serial mode. Bind panics if the kernel
// is not in parallel mode; binding a tickable that is never registered
// panics at run start.
func (k *Kernel) Bind(x *Ctx, ts ...Tickable) {
	if k.par == nil {
		panic("sim: Bind without SetParallel")
	}
	for _, t := range ts {
		k.par.binds = append(k.par.binds, bind{x: x, t: t})
	}
}

// WaveWidthHist returns the parallel kernel's wave-width histogram:
// index w holds the number of stepped-cycle waves that had exactly w
// busy members (0 = fully elided wave). Nil in serial mode. Kernel-level
// diagnostic, intentionally not part of any Result.
func (k *Kernel) WaveWidthHist() []uint64 {
	if k.par == nil {
		return nil
	}
	out := make([]uint64, len(k.par.waveHist))
	copy(out, k.par.waveHist)
	return out
}

// WaveDispatchStats reports how many nonzero-width waves ran inline on
// the coordinator versus dispatched to the worker pool. Zeros in serial
// mode.
func (k *Kernel) WaveDispatchStats() (inline, dispatched uint64) {
	if k.par == nil {
		return 0, 0
	}
	return k.par.waveInline, k.par.waveDispatched
}

// StopWorkers shuts down the worker pool (no-op in serial mode or when
// no wave ever dispatched). Idempotent; a subsequent run respawns the
// pool lazily.
func (k *Kernel) StopWorkers() {
	if k.par == nil || k.par.tasks == nil {
		return
	}
	close(k.par.tasks)
	k.par.tasks = nil
}

// prepare resolves binds to registration indices and sizes the
// per-index tables. Idempotent; called at run start so every Register
// and Bind has happened. The previous cycle's idle verdict never
// survives across runs: components may have been mutated between
// RunUntil calls (drain injection, crash experiments).
func (p *parallel) prepare(k *Kernel) {
	p.allIdleLast = false
	if p.prepared {
		if p.n != len(k.tickables) {
			p.resegment(k)
		}
		return
	}
	p.prepared = true
	n := len(k.tickables)
	p.ctxOf = make([]*Ctx, n)
	p.js = make([]journal, n)
	p.busy = make([]int, 0, n)
	for _, b := range p.binds {
		found := false
		for i := range k.tickables {
			if k.tickables[i].t == b.t {
				if p.ctxOf[i] != nil {
					panic("sim: tickable bound twice")
				}
				p.ctxOf[i] = b.x
				found = true
				break
			}
		}
		if !found {
			panic("sim: Bind of unregistered tickable")
		}
	}
	p.resegment(k)
}

// resegment rebuilds the sweep plan from ctxOf. Tickables registered
// after the tables were built (instrumentation sinks in tests) become
// coordinator-owned.
func (p *parallel) resegment(k *Kernel) {
	n := len(k.tickables)
	for len(p.ctxOf) < n {
		p.ctxOf = append(p.ctxOf, nil)
		p.js = append(p.js, journal{})
	}
	p.n = n
	p.segs = p.segs[:0]
	i := 0
	for i < n {
		wave := p.ctxOf[i] != nil
		end := i + 1
		for end < n && (p.ctxOf[end] != nil) == wave {
			end++
		}
		if wave {
			// A wave dispatches at most one task per ctx: two members
			// of one group inside the same contiguous run would race on
			// the group's journal binding.
			for a := i; a < end; a++ {
				for b := a + 1; b < end; b++ {
					if p.ctxOf[a] == p.ctxOf[b] {
						panic("sim: one ctx bound twice within a contiguous wave")
					}
				}
			}
		}
		p.segs = append(p.segs, seg{start: i, end: end, wave: wave})
		i = end
	}
}

// startWorkers spawns the pool on first use, so runs whose waves never
// reach the dispatch threshold (and serial-equivalence tests) cost no
// goroutines.
func (p *parallel) startWorkers() {
	if p.tasks != nil {
		return
	}
	p.tasks = make(chan func(), 64)
	for w := 0; w < p.workers; w++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
}

// stepPar advances the clock by exactly one cycle in parallel mode.
// Discipline per cycle, mirroring Step:
//
//  1. fire due events in (cycle, seq) order (coordinator);
//  2. sweep the precomputed segments in registration order.
//     Coordinator-owned components tick inline (or are elided when
//     provably idle). For a wave, the coordinator polls each member's
//     Idle at its slot, elides idle members via SkipCycles(1), and
//     ticks the busy ones — inline (registration order, no journaling)
//     below the dispatch threshold, else concurrently on workers with
//     journaling. After the wave barrier, journals replay in
//     registration order.
//
// Idle polling at the member's slot sees exactly the state its serial
// Tick would have seen: everything registered earlier has already
// ticked or replayed. Within a wave, polling all members before any
// member ticks is sound because no wave member's Tick changes another
// group's idleness — cross-group effects all ride the journals, which
// replay after the barrier (asserted by the serial-equivalence suite).
func (k *Kernel) stepPar() {
	p := k.par
	if p.n != len(k.tickables) {
		p.resegment(k)
	}
	k.now++
	for k.events.len() > 0 && k.events.head().cycle <= k.now {
		k.events.pop().fn()
	}
	anyBusy := false
	for s := range p.segs {
		sg := &p.segs[s]
		if !sg.wave {
			for i := sg.start; i < sg.end; i++ {
				e := &k.tickables[i]
				if e.q != nil && e.q.Idle() {
					if e.s != nil {
						e.s.SkipCycles(1)
					}
				} else {
					anyBusy = true
					e.t.Tick(k.now)
				}
			}
			continue
		}
		busy := p.busy[:0]
		for j := sg.start; j < sg.end; j++ {
			m := &k.tickables[j]
			if m.q != nil && m.q.Idle() {
				if m.s != nil {
					m.s.SkipCycles(1)
				}
			} else {
				busy = append(busy, j)
			}
		}
		for len(p.waveHist) <= len(busy) {
			p.waveHist = append(p.waveHist, 0)
		}
		p.waveHist[len(busy)]++
		if len(busy) == 0 {
			continue
		}
		anyBusy = true
		if len(busy) < p.minDispatch {
			p.waveInline++
			// Inline: registration order on the coordinator is the
			// serial sweep itself, so no journaling is needed and the
			// guarded Defer pattern takes its direct branch.
			for _, j := range busy {
				k.tickables[j].t.Tick(k.now)
			}
		} else {
			p.waveDispatched++
			p.startWorkers()
			p.wg.Add(len(busy))
			for _, j := range busy {
				t := k.tickables[j].t
				p.ctxOf[j].j = &p.js[j]
				p.tasks <- func() {
					t.Tick(k.now)
					p.wg.Done()
				}
			}
			p.wg.Wait()
			for _, j := range busy {
				p.ctxOf[j].j = nil
				p.js[j].replay()
			}
		}
	}
	p.allIdleLast = !anyBusy
}
