package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("differently seeded generators matched %d/100 draws", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbabilityRoughlyHolds(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit rate %v, want ~0.25", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(11)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	p := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
	}
	matches := 0
	for i := 0; i < 50; i++ {
		v := child.Uint64()
		for _, pv := range p {
			if v == pv {
				matches++
			}
		}
	}
	if matches > 1 {
		t.Fatalf("fork shares %d values with parent stream", matches)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Weak uniformity check: bucket counts of Intn over a modest range should
// not be wildly skewed.
func TestIntnRoughUniformity(t *testing.T) {
	r := NewRNG(123)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d count %d deviates >20%% from %d", b, c, want)
		}
	}
}
