// Package sim provides the discrete-event simulation kernel used by every
// timed component in pmemaccel: a cycle clock, an event heap for latency
// callbacks, and a registry of per-cycle tickable components.
//
// The kernel advances one cycle at a time. Within a cycle it first fires
// every event scheduled for that cycle (in schedule order, so execution is
// deterministic), then ticks every registered Tickable in registration
// order. Components therefore see a consistent "events happen, then state
// machines advance" discipline each cycle.
package sim

import "container/heap"

// Tickable is a component that advances its state machine once per cycle.
type Tickable interface {
	// Tick advances the component by one cycle. The current cycle number
	// is passed so components do not need a back-pointer to the kernel.
	Tick(cycle uint64)
}

// event is a callback scheduled for a future cycle. seq breaks ties so that
// two events scheduled for the same cycle fire in schedule order.
type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now       uint64
	seq       uint64
	events    eventHeap
	tickables []Tickable
}

// NewKernel returns a kernel at cycle 0 with no pending events.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current cycle.
func (k *Kernel) Now() uint64 { return k.now }

// Register adds a component to the per-cycle tick list. Components tick in
// registration order.
func (k *Kernel) Register(t Tickable) {
	k.tickables = append(k.tickables, t)
}

// Schedule arranges for fn to run delay cycles from now. A delay of 0 runs
// fn at the start of the next cycle (events for the current cycle have
// already fired), keeping same-cycle feedback loops impossible.
func (k *Kernel) Schedule(delay uint64, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at the given absolute cycle. Scheduling
// in the past (or for the current cycle) is adjusted to the next cycle.
func (k *Kernel) ScheduleAt(cycle uint64, fn func()) {
	if cycle <= k.now {
		cycle = k.now + 1
	}
	k.seq++
	heap.Push(&k.events, event{cycle: cycle, seq: k.seq, fn: fn})
}

// Pending reports the number of not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// Step advances the clock by one cycle: fire due events, then tick every
// registered component.
func (k *Kernel) Step() {
	k.now++
	for len(k.events) > 0 && k.events[0].cycle <= k.now {
		e := heap.Pop(&k.events).(event)
		e.fn()
	}
	for _, t := range k.tickables {
		t.Tick(k.now)
	}
}

// RunUntil steps the kernel until the predicate returns true or the cycle
// limit is reached. It returns the cycle at which it stopped and whether
// the predicate was satisfied.
func (k *Kernel) RunUntil(done func() bool, limit uint64) (uint64, bool) {
	for !done() {
		if k.now >= limit {
			return k.now, false
		}
		k.Step()
	}
	return k.now, true
}

// Drain steps the kernel until no events remain, up to limit cycles.
// Tickables still tick each stepped cycle. It reports whether the event
// queue emptied.
func (k *Kernel) Drain(limit uint64) bool {
	_, ok := k.RunUntil(func() bool { return len(k.events) == 0 }, limit)
	return ok
}
