// Package sim provides the discrete-event simulation kernel used by every
// timed component in pmemaccel: a cycle clock, an event heap for latency
// callbacks, and a registry of per-cycle tickable components.
//
// The kernel advances one cycle at a time. Within a cycle it first fires
// every event scheduled for that cycle (in schedule order, so execution is
// deterministic), then ticks every registered Tickable in registration
// order. Components therefore see a consistent "events happen, then state
// machines advance" discipline each cycle.
//
// When every registered component also implements Quiescer and reports
// idle, the kernel fast-forwards the clock to the next scheduled event
// instead of spinning no-op tick sweeps — the event-driven mode that makes
// long memory-latency stalls cheap. The quiescence contract (when a
// component may legally report idle) is documented on Quiescer and in
// DESIGN.md §10; the contract guarantees results are byte-identical with
// fast-forward on or off.
package sim

// Tickable is a component that advances its state machine once per cycle.
type Tickable interface {
	// Tick advances the component by one cycle. The current cycle number
	// is passed so components do not need a back-pointer to the kernel.
	Tick(cycle uint64)
}

// Quiescer is an optional interface a Tickable may implement to let the
// kernel fast-forward across cycles where the whole machine is provably
// quiet.
//
// Idle must return true only when the component's next Tick would be a
// no-op at its current state: no state change, no event scheduled, no
// probe emission — nothing observable except per-cycle accounting, which
// the kernel applies in bulk through CycleSkipper. Component state may
// only change between ticks through kernel events, and the kernel never
// skips past an event, so a component that is idle now is idle for every
// skipped cycle. When in doubt a component must report busy: a false
// "busy" only costs speed, a false "idle" breaks the byte-identical
// guarantee.
type Quiescer interface {
	Idle() bool
}

// CycleSkipper is an optional companion to Quiescer for components whose
// idle Tick still accrues per-cycle accounting (a stalled core charging
// its stall bucket). SkipCycles(n) must apply exactly the accounting n
// consecutive idle Ticks would have, and nothing else.
type CycleSkipper interface {
	SkipCycles(n uint64)
}

// event is a callback scheduled for a future cycle. seq breaks ties so that
// two events scheduled for the same cycle fire in schedule order.
type event struct {
	cycle uint64
	seq   uint64
	fn    func()
}

// before orders events by (cycle, seq) — the same total order the old
// container/heap implementation used, so firing order (and therefore
// every simulation result) is unchanged.
func (e event) before(o event) bool {
	if e.cycle != o.cycle {
		return e.cycle < o.cycle
	}
	return e.seq < o.seq
}

// eventHeap is a typed 4-ary min-heap keyed by (cycle, seq). Unlike
// container/heap it never boxes events through interface{}, so Schedule
// does not allocate per event (only amortized slice growth), and the
// shallower tree halves the sift-down depth on the pop-heavy kernel
// workload. Because (cycle, seq) is a total order, pop order is
// independent of heap shape.
type eventHeap struct {
	a []event
}

const heapArity = 4

func (h *eventHeap) len() int { return len(h.a) }

// head returns the minimum event without removing it. Caller guarantees
// len() > 0.
func (h *eventHeap) head() event { return h.a[0] }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !h.a[i].before(h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	root := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // drop the fn reference so the closure can be collected
	h.a = h.a[:n]
	i := 0
	for {
		min := i
		first := heapArity*i + 1
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if h.a[c].before(h.a[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h.a[i], h.a[min] = h.a[min], h.a[i]
		i = min
	}
	return root
}

// tickEntry caches the optional-interface assertions done once at
// Register time, keeping the per-cycle and per-skip loops free of type
// switches.
type tickEntry struct {
	t Tickable
	q Quiescer     // nil: component never reports idle (always busy)
	s CycleSkipper // nil: no bulk accounting on skip
}

// Kernel is the simulation engine. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now       uint64
	seq       uint64
	events    eventHeap
	tickables []tickEntry

	// ff enables quiescence fast-forward; skipped counts the cycles the
	// kernel jumped instead of stepping.
	ff      bool
	skipped uint64

	// pastSchedules counts ScheduleAt calls whose target cycle was
	// strictly in the past (coerced to now+1). A nonzero count flags a
	// causality bug: no component should ever compute a stale absolute
	// cycle. The parallel kernel's equivalence tests assert it stays
	// zero — under parallel ticking a past-cycle schedule would
	// otherwise mask a cross-worker causality violation as a quiet
	// reordering.
	pastSchedules uint64

	// par is the parallel execution mode (nil = serial). See parallel.go.
	par *parallel

	debugBlocked func(int)
}

// NewKernel returns a kernel at cycle 0 with no pending events and
// quiescence fast-forward enabled.
func NewKernel() *Kernel {
	return &Kernel{ff: true}
}

// Now reports the current cycle.
func (k *Kernel) Now() uint64 { return k.now }

// SetFastForward enables or disables quiescence fast-forward. Results
// are byte-identical either way; disabling exists for equivalence tests
// and perf comparison.
func (k *Kernel) SetFastForward(on bool) { k.ff = on }

// Skipped reports how many cycles fast-forward jumped over so far.
func (k *Kernel) Skipped() uint64 { return k.skipped }

// PastSchedules reports how many ScheduleAt calls targeted a cycle
// strictly in the past and were coerced to the next cycle. Always zero
// for a well-behaved machine; the parallel-kernel equivalence tests
// assert it.
func (k *Kernel) PastSchedules() uint64 { return k.pastSchedules }

// Register adds a component to the per-cycle tick list. Components tick in
// registration order. Components implementing Quiescer (and optionally
// CycleSkipper) participate in quiescence fast-forward.
func (k *Kernel) Register(t Tickable) {
	e := tickEntry{t: t}
	e.q, _ = t.(Quiescer)
	e.s, _ = t.(CycleSkipper)
	k.tickables = append(k.tickables, e)
}

// Schedule arranges for fn to run delay cycles from now. A delay of 0 runs
// fn at the start of the next cycle (events for the current cycle have
// already fired), keeping same-cycle feedback loops impossible.
func (k *Kernel) Schedule(delay uint64, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt arranges for fn to run at the given absolute cycle. Scheduling
// in the past (or for the current cycle) is adjusted to the next cycle.
// Current-cycle targets are the documented Schedule(0) idiom; strictly
// past targets additionally increment the PastSchedules counter, since
// they indicate a caller computed a stale cycle.
func (k *Kernel) ScheduleAt(cycle uint64, fn func()) {
	if cycle <= k.now {
		if cycle < k.now {
			k.pastSchedules++
		}
		cycle = k.now + 1
	}
	k.seq++
	k.events.push(event{cycle: cycle, seq: k.seq, fn: fn})
}

// Pending reports the number of not-yet-fired events.
func (k *Kernel) Pending() int { return k.events.len() }

// Step advances the clock by exactly one cycle: fire due events, then
// tick every registered component. Step never fast-forwards; the skip
// logic lives in RunUntil so single-stepping callers keep cycle-exact
// control.
func (k *Kernel) Step() {
	k.now++
	for k.events.len() > 0 && k.events.head().cycle <= k.now {
		k.events.pop().fn()
	}
	for i := range k.tickables {
		k.tickables[i].t.Tick(k.now)
	}
}

// maybeSkip fast-forwards the clock to one cycle before the next event
// (or before limit when no event is pending) when every registered
// component is provably idle. The following Step then lands exactly on
// the event cycle with the usual events-then-ticks discipline.
//
// Soundness: component state changes only inside Tick or a fired event.
// Every skipped Tick is a no-op by the Quiescer contract and no event
// fires in the skipped range, so the machine state at the skip target is
// identical to stepping there — except per-cycle accounting, which
// SkipCycles applies in bulk for exactly the skipped cycle count.
func (k *Kernel) maybeSkip(limit uint64) {
	if !k.ff {
		return
	}
	target := limit
	if k.events.len() > 0 && k.events.head().cycle < target {
		target = k.events.head().cycle
	}
	if target <= k.now+1 {
		return
	}
	// Poll idleness in reverse registration order: the components
	// registered last (cores) answer cheapest and are busiest, so they
	// short-circuit the poll before the controllers' window scans run.
	// Polling order is unobservable — Idle must not mutate state.
	//
	// The parallel sweep already polled every component last cycle; when
	// it elided all of them the machine was provably idle at the end of
	// that cycle and nothing has run since, so the verdict is reusable.
	// The reuse is positive-only: a sweep with busy members re-polls
	// here, because a busy component may have gone idle during its own
	// Tick — taking the stale "busy" answer would diverge the skip
	// decisions (and Skipped()) from the serial kernel.
	if k.par == nil || !k.par.allIdleLast {
		for i := len(k.tickables) - 1; i >= 0; i-- {
			if k.tickables[i].q == nil || !k.tickables[i].q.Idle() {
				if k.debugBlocked != nil {
					k.debugBlocked(i)
				}
				return
			}
		}
	}
	n := target - k.now - 1
	for i := range k.tickables {
		if k.tickables[i].s != nil {
			k.tickables[i].s.SkipCycles(n)
		}
	}
	k.now += n
	k.skipped += n
}

// RunUntil steps the kernel until the predicate returns true or the cycle
// limit is reached. It returns the cycle at which it stopped and whether
// the predicate was satisfied. When the machine is quiescent it
// fast-forwards between events instead of stepping every cycle; the
// predicate is evaluated at the same component states either way (state
// cannot change across provably idle cycles).
func (k *Kernel) RunUntil(done func() bool, limit uint64) (uint64, bool) {
	if k.par != nil {
		k.par.prepare(k)
	}
	for !done() {
		if k.now >= limit {
			return k.now, false
		}
		k.maybeSkip(limit)
		if k.par != nil {
			k.stepPar()
		} else {
			k.Step()
		}
	}
	return k.now, true
}

// Drain steps the kernel until no events remain, up to limit cycles.
// Tickables still tick each stepped cycle. It reports whether the event
// queue emptied.
func (k *Kernel) Drain(limit uint64) bool {
	_, ok := k.RunUntil(func() bool { return k.events.len() == 0 }, limit)
	return ok
}

// DebugIdleBlockers instruments the kernel (test use): returns a closure
// reporting, per tickable index, how many idle polls that component was
// the first to answer "busy" to. Components registered after the call
// are accounted too: the counts slice grows on demand, so machines with
// any number of tickables (a 64-core grid registers well over 64) are
// safe.
func DebugIdleBlockers(k *Kernel) func() []uint64 {
	counts := make([]uint64, len(k.tickables))
	grow := func(n int) {
		for len(counts) < n {
			counts = append(counts, 0)
		}
	}
	k.debugBlocked = func(i int) {
		grow(i + 1)
		counts[i]++
	}
	return func() []uint64 {
		grow(len(k.tickables))
		return counts[:len(k.tickables)]
	}
}
