package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelStartsAtCycleZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", k.Now())
	}
}

func TestScheduleFiresAtExactCycle(t *testing.T) {
	k := NewKernel()
	fired := uint64(0)
	k.Schedule(5, func() { fired = k.Now() })
	for i := 0; i < 10; i++ {
		k.Step()
	}
	if fired != 5 {
		t.Fatalf("event fired at cycle %d, want 5", fired)
	}
}

func TestZeroDelayFiresNextCycle(t *testing.T) {
	k := NewKernel()
	fired := uint64(0)
	k.Schedule(0, func() { fired = k.Now() })
	k.Step()
	if fired != 1 {
		t.Fatalf("zero-delay event fired at cycle %d, want 1", fired)
	}
}

func TestSameCycleEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(3, func() { order = append(order, i) })
	}
	for i := 0; i < 5; i++ {
		k.Step()
	}
	if len(order) != 10 {
		t.Fatalf("fired %d events, want 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO within a cycle)", i, v, i)
		}
	}
}

func TestEventsFireInCycleOrderRegardlessOfScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []uint64
	k.Schedule(7, func() { order = append(order, 7) })
	k.Schedule(2, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 5) })
	for i := 0; i < 10; i++ {
		k.Step()
	}
	want := []uint64{2, 5, 7}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleAtPastClampsToNextCycle(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Step()
	}
	fired := uint64(0)
	k.ScheduleAt(1, func() { fired = k.Now() })
	k.Step()
	if fired != 5 {
		t.Fatalf("past-scheduled event fired at %d, want 5 (next cycle)", fired)
	}
}

func TestEventMayScheduleFurtherEvents(t *testing.T) {
	k := NewKernel()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			k.Schedule(2, chain)
		}
	}
	k.Schedule(1, chain)
	if !k.Drain(100) {
		t.Fatal("Drain did not empty the queue")
	}
	if count != 5 {
		t.Fatalf("chain ran %d times, want 5", count)
	}
	// 1, 3, 5, 7, 9
	if k.Now() != 9 {
		t.Fatalf("drained at cycle %d, want 9", k.Now())
	}
}

type countingTicker struct {
	ticks []uint64
}

func (c *countingTicker) Tick(cycle uint64) { c.ticks = append(c.ticks, cycle) }

func TestTickablesTickEveryCycleInRegistrationOrder(t *testing.T) {
	k := NewKernel()
	a, b := &countingTicker{}, &countingTicker{}
	k.Register(a)
	k.Register(b)
	for i := 0; i < 3; i++ {
		k.Step()
	}
	for _, c := range []*countingTicker{a, b} {
		if len(c.ticks) != 3 {
			t.Fatalf("ticked %d times, want 3", len(c.ticks))
		}
		for i, cyc := range c.ticks {
			if cyc != uint64(i+1) {
				t.Fatalf("tick %d at cycle %d, want %d", i, cyc, i+1)
			}
		}
	}
}

func TestEventsFireBeforeTicksWithinACycle(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Register(tickFunc(func(uint64) { order = append(order, "tick") }))
	k.Schedule(1, func() { order = append(order, "event") })
	k.Step()
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v, want [event tick]", order)
	}
}

type tickFunc func(uint64)

func (f tickFunc) Tick(cycle uint64) { f(cycle) }

func TestRunUntilStopsOnPredicate(t *testing.T) {
	k := NewKernel()
	done := false
	k.Schedule(12, func() { done = true })
	cycle, ok := k.RunUntil(func() bool { return done }, 1000)
	if !ok || cycle != 12 {
		t.Fatalf("RunUntil = (%d, %v), want (12, true)", cycle, ok)
	}
}

func TestRunUntilRespectsLimit(t *testing.T) {
	k := NewKernel()
	cycle, ok := k.RunUntil(func() bool { return false }, 50)
	if ok || cycle != 50 {
		t.Fatalf("RunUntil = (%d, %v), want (50, false)", cycle, ok)
	}
}

func TestPendingCountsUnfiredEvents(t *testing.T) {
	k := NewKernel()
	k.Schedule(1, func() {})
	k.Schedule(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.Step()
	if k.Pending() != 1 {
		t.Fatalf("Pending after one step = %d, want 1", k.Pending())
	}
}

// Property: for any set of delays, events fire in non-decreasing cycle
// order and each at exactly now+delay (clamped to >= now+1).
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel()
		type firing struct{ want, got uint64 }
		var fired []firing
		for _, d := range delays {
			want := uint64(d)
			if want == 0 {
				want = 1
			}
			want += k.Now()
			w := want
			k.Schedule(uint64(d), func() {
				fired = append(fired, firing{want: w, got: k.Now()})
			})
		}
		k.Drain(1 << 20)
		if len(fired) != len(delays) {
			return false
		}
		prev := uint64(0)
		for _, f := range fired {
			if f.got != f.want || f.got < prev {
				return false
			}
			prev = f.got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// quiescentTicker is a Tickable that is idle unless it has pending work,
// and counts both real ticks and bulk-skipped cycles.
type quiescentTicker struct {
	busyUntil uint64 // busy while now < busyUntil
	k         *Kernel
	ticks     uint64
	skipped   uint64
}

func (q *quiescentTicker) Tick(cycle uint64)   { q.ticks++ }
func (q *quiescentTicker) Idle() bool          { return q.k.Now() >= q.busyUntil }
func (q *quiescentTicker) SkipCycles(n uint64) { q.skipped += n }

func TestFastForwardSkipsIdleGapToNextEvent(t *testing.T) {
	k := NewKernel()
	q := &quiescentTicker{k: k}
	k.Register(q)
	fired := uint64(0)
	k.Schedule(100, func() { fired = k.Now() })
	cycle, ok := k.RunUntil(func() bool { return fired != 0 }, 1000)
	if !ok || cycle != 100 || fired != 100 {
		t.Fatalf("RunUntil = (%d, %v), fired at %d; want event at 100", cycle, ok, fired)
	}
	if k.Skipped() != 99 {
		t.Fatalf("Skipped = %d, want 99 (cycles 1..99 jumped)", k.Skipped())
	}
	if q.skipped != 99 {
		t.Fatalf("SkipCycles total = %d, want 99", q.skipped)
	}
	// The event cycle itself must be a real Step (events then ticks).
	if q.ticks != 1 {
		t.Fatalf("real ticks = %d, want 1 (only the event cycle)", q.ticks)
	}
	if q.ticks+q.skipped != 100 {
		t.Fatalf("ticks+skipped = %d, want 100 (accounting must cover every cycle)", q.ticks+q.skipped)
	}
}

func TestFastForwardDisabledTicksEveryCycle(t *testing.T) {
	k := NewKernel()
	k.SetFastForward(false)
	q := &quiescentTicker{k: k}
	k.Register(q)
	fired := false
	k.Schedule(50, func() { fired = true })
	k.RunUntil(func() bool { return fired }, 1000)
	if k.Skipped() != 0 {
		t.Fatalf("Skipped = %d with fast-forward off, want 0", k.Skipped())
	}
	if q.ticks != 50 || q.skipped != 0 {
		t.Fatalf("ticks = %d skipped = %d, want 50 real ticks, 0 skipped", q.ticks, q.skipped)
	}
}

func TestBusyComponentBlocksFastForward(t *testing.T) {
	k := NewKernel()
	q := &quiescentTicker{k: k, busyUntil: 30}
	k.Register(q)
	fired := false
	k.Schedule(100, func() { fired = true })
	k.RunUntil(func() bool { return fired }, 1000)
	// Cycles 1..30 tick for real (idle only once now >= 30); the jump
	// covers the remaining gap up to the event at 100.
	if q.ticks+q.skipped != 100 {
		t.Fatalf("ticks+skipped = %d, want 100", q.ticks+q.skipped)
	}
	if q.ticks < 30 {
		t.Fatalf("real ticks = %d, want >= 30 (busy cycles must not be skipped)", q.ticks)
	}
	if k.Skipped() == 0 {
		t.Fatal("expected some cycles skipped after the component went idle")
	}
}

func TestFastForwardWithoutQuiescerNeverSkips(t *testing.T) {
	k := NewKernel()
	c := &countingTicker{}
	k.Register(c) // implements Tickable only
	fired := false
	k.Schedule(40, func() { fired = true })
	k.RunUntil(func() bool { return fired }, 1000)
	if k.Skipped() != 0 {
		t.Fatalf("Skipped = %d, want 0: a non-Quiescer component is always busy", k.Skipped())
	}
	if len(c.ticks) != 40 {
		t.Fatalf("ticked %d cycles, want 40", len(c.ticks))
	}
}

func TestFastForwardRespectsRunUntilLimit(t *testing.T) {
	k := NewKernel()
	q := &quiescentTicker{k: k}
	k.Register(q)
	// No events at all: with an idle machine RunUntil jumps to the limit.
	cycle, ok := k.RunUntil(func() bool { return false }, 75)
	if ok || cycle != 75 {
		t.Fatalf("RunUntil = (%d, %v), want (75, false)", cycle, ok)
	}
	if q.ticks+q.skipped != 75 {
		t.Fatalf("ticks+skipped = %d, want 75", q.ticks+q.skipped)
	}
}

func TestScheduleDoesNotAllocatePerEvent(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the heap so slice growth is out of the picture.
	for i := 0; i < 64; i++ {
		k.Schedule(uint64(i+1), fn)
	}
	for k.Pending() > 0 {
		k.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.Schedule(uint64(i+1), fn)
		}
		for k.Pending() > 0 {
			k.Step()
		}
	})
	if allocs > 0 {
		t.Fatalf("Schedule/pop allocated %.1f allocs per run, want 0 (typed heap must not box events)", allocs)
	}
}

func TestDebugIdleBlockersCountsFirstBusy(t *testing.T) {
	k := NewKernel()
	q := &quiescentTicker{k: k, busyUntil: 10}
	k.Register(q)
	counts := DebugIdleBlockers(k)
	k.Schedule(20, func() {})
	k.RunUntil(func() bool { return false }, 20)
	got := counts()
	if len(got) != 1 {
		t.Fatalf("counts for %d tickables, want 1", len(got))
	}
	// One blocked poll per cycle 0..9; the component reports idle from
	// cycle 10 and the kernel jumps the rest of the way to the limit.
	if got[0] != 10 {
		t.Fatalf("blocked %d polls, want 10", got[0])
	}
}
