package sim

import (
	"math/rand"
	"testing"
)

// orderLog stands in for a shared component (hierarchy, controller): a
// strict total order of everything pushed into it. Coordinator-owned,
// so pushes must arrive only from serial phases (inline ticks, event
// callbacks, journal replay) — the race detector enforces it.
type orderLog struct {
	entries []uint64
}

func (l *orderLog) push(v uint64)     { l.entries = append(l.entries, v) }
func (l *orderLog) Tick(cycle uint64) {}

// parTickerBusy is a deterministic pure function of (id, cycle), so a
// ticker's idleness depends only on the clock — the test analogue of
// "state changes only via events" for a component with no inbound
// events. Busy two cycles in three keeps multi-busy waves frequent.
func parTickerBusy(id, cycle uint64) bool {
	h := cycle*2654435761 + id*40503
	h ^= h >> 13
	return h%3 != 0
}

// parTicker is a bound (worker-side) component following the Ctx
// discipline: shared-state pushes go through the guarded Defer pattern,
// event scheduling through ctx.Schedule.
type parTicker struct {
	x     *Ctx
	id    uint64
	sink  *orderLog
	ticks uint64
	skips uint64
}

func (p *parTicker) Idle() bool          { return !parTickerBusy(p.id, p.x.Now()) }
func (p *parTicker) SkipCycles(n uint64) { p.skips += n }

func (p *parTicker) Tick(cycle uint64) {
	if !parTickerBusy(p.id, cycle) {
		return // idle tick: no-op, as the Quiescer contract requires
	}
	p.ticks++
	v := p.id*1_000_000 + cycle
	if p.x.Deferring() {
		p.x.Defer(func() { p.sink.push(v) })
	} else {
		p.sink.push(v)
	}
	if cycle%(p.id+2) == 0 {
		p.x.Schedule(cycle%5+1, func() { p.sink.push(v + 500_000) })
	}
}

// buildParMachine assembles the test machine in the same shape as the
// real system: shared head (controllers), a bound wave, a shared middle
// (hierarchy), a second bound wave sharing the same ctxs (core slots of
// the same groups), shared tail. workers == 0 builds the serial twin.
func buildParMachine(workers, groups int) (*Kernel, *orderLog, []*parTicker) {
	k := NewKernel()
	k.SetFastForward(false)
	if workers > 0 {
		k.SetParallel(workers)
	}
	sink := &orderLog{}
	k.Register(sink)
	var ts []*parTicker
	ctxs := make([]*Ctx, groups)
	for i := 0; i < groups; i++ {
		ctxs[i] = k.NewCtx()
		p := &parTicker{x: ctxs[i], id: uint64(i), sink: sink}
		k.Register(p)
		if workers > 0 {
			k.Bind(ctxs[i], p)
		}
		ts = append(ts, p)
	}
	k.Register(&orderLog{}) // shared separator between the two waves
	for i := 0; i < groups; i++ {
		p := &parTicker{x: ctxs[i], id: uint64(i) + 100, sink: sink}
		k.Register(p)
		if workers > 0 {
			k.Bind(ctxs[i], p)
		}
		ts = append(ts, p)
	}
	return k, sink, ts
}

func runParMachine(t *testing.T, workers int) (*Kernel, *orderLog, []*parTicker) {
	t.Helper()
	k, sink, ts := buildParMachine(workers, 8)
	k.RunUntil(func() bool { return false }, 400)
	k.StopWorkers()
	return k, sink, ts
}

// The headline guarantee: the parallel kernel's observable order — every
// shared-state mutation and every event firing — is identical to the
// serial kernel's, element for element.
func TestParallelMatchesSerialExactly(t *testing.T) {
	sk, ssink, sts := runParMachine(t, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		pk, psink, pts := runParMachine(t, workers)
		if len(psink.entries) != len(ssink.entries) {
			t.Fatalf("workers=%d: %d log entries, serial has %d",
				workers, len(psink.entries), len(ssink.entries))
		}
		for i := range ssink.entries {
			if psink.entries[i] != ssink.entries[i] {
				t.Fatalf("workers=%d: log[%d] = %d, serial has %d",
					workers, i, psink.entries[i], ssink.entries[i])
			}
		}
		if pk.Now() != sk.Now() || pk.Pending() != sk.Pending() {
			t.Fatalf("workers=%d: (now, pending) = (%d, %d), serial (%d, %d)",
				workers, pk.Now(), pk.Pending(), sk.Now(), sk.Pending())
		}
		for i := range sts {
			if pts[i].ticks != sts[i].ticks {
				t.Fatalf("workers=%d: ticker %d ran %d real ticks, serial %d",
					workers, i, pts[i].ticks, sts[i].ticks)
			}
		}
		if pk.PastSchedules() != 0 {
			t.Fatalf("workers=%d: PastSchedules = %d, want 0 (causality violation)",
				workers, pk.PastSchedules())
		}
	}
}

// The equivalence above must come from the real worker path, not from
// everything degenerating to the inline single-busy case.
func TestParallelActuallyDispatchesWorkers(t *testing.T) {
	_, _, ts := runParMachine(t, 4)
	var skips uint64
	for _, p := range ts {
		skips += p.skips
	}
	if skips == 0 {
		t.Fatal("no ticks elided: the idle classification never engaged")
	}
	// Run again without StopWorkers to inspect the pool directly.
	k, _, _ := buildParMachine(4, 8)
	k.RunUntil(func() bool { return false }, 400)
	if k.par.tasks == nil {
		t.Fatal("worker pool never started: no wave ever had two busy members")
	}
	k.StopWorkers()
}

// Randomized per-cycle event injection across the run, serial vs
// parallel: a fixed-seed driver schedules bursts of events with random
// delays from event context while the wave machinery runs. Under
// -race this doubles as the worker/barrier protocol stress test.
func TestParallelRandomEventInjectionStress(t *testing.T) {
	run := func(workers int) (*Kernel, *orderLog) {
		k, sink, _ := buildParMachine(workers, 8)
		rng := rand.New(rand.NewSource(42))
		var inject func()
		inject = func() {
			n := rng.Intn(4)
			for i := 0; i < n; i++ {
				d := uint64(rng.Intn(7))
				v := rng.Uint64() % 1000
				k.Schedule(d, func() { sink.push(3_000_000 + v) })
			}
			k.Schedule(uint64(rng.Intn(3)+1), inject)
		}
		k.Schedule(1, inject)
		k.RunUntil(func() bool { return false }, 600)
		k.StopWorkers()
		return k, sink
	}
	_, ssink := run(0)
	for _, workers := range []int{2, 4} {
		_, psink := run(workers)
		if len(psink.entries) != len(ssink.entries) {
			t.Fatalf("workers=%d: %d entries, serial %d", workers, len(psink.entries), len(ssink.entries))
		}
		for i := range ssink.entries {
			if psink.entries[i] != ssink.entries[i] {
				t.Fatalf("workers=%d: log[%d] = %d, serial %d",
					workers, i, psink.entries[i], ssink.entries[i])
			}
		}
	}
}

// Whole-machine fast-forward composes with parallel mode: when every
// component reports idle the clock still jumps to the next event.
func TestParallelFastForwardStillSkips(t *testing.T) {
	k := NewKernel()
	k.SetParallel(2)
	x := k.NewCtx()
	q := &quiescentTicker{k: k}
	k.Register(q)
	k.Bind(x, q)
	fired := uint64(0)
	k.Schedule(200, func() { fired = k.Now() })
	k.RunUntil(func() bool { return fired != 0 }, 1000)
	k.StopWorkers()
	if fired != 200 {
		t.Fatalf("event fired at %d, want 200", fired)
	}
	if k.Skipped() != 199 {
		t.Fatalf("Skipped = %d, want 199", k.Skipped())
	}
}

func TestStopWorkersIdempotentAndRespawnable(t *testing.T) {
	k, _, _ := buildParMachine(4, 8)
	k.RunUntil(func() bool { return false }, 100)
	k.StopWorkers()
	k.StopWorkers() // second stop is a no-op
	// The pool respawns lazily on the next multi-busy wave.
	k.RunUntil(func() bool { return false }, 200)
	k.StopWorkers()
}

func TestPastSchedulesCountsOnlyStrictPast(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.Step()
	}
	k.Schedule(0, func() {})         // documented next-cycle idiom: not counted
	k.ScheduleAt(k.Now(), func() {}) // current cycle: coerced, not counted
	if k.PastSchedules() != 0 {
		t.Fatalf("PastSchedules = %d after current-cycle schedules, want 0", k.PastSchedules())
	}
	k.ScheduleAt(2, func() {}) // strictly past: counted
	k.ScheduleAt(0, func() {})
	if k.PastSchedules() != 2 {
		t.Fatalf("PastSchedules = %d, want 2", k.PastSchedules())
	}
	// The coercion itself still fires the event next cycle.
	if k.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", k.Pending())
	}
}

// Regression: DebugIdleBlockers used a hardcoded 64-entry slice, so any
// machine with more tickables (a 64-core grid registers hundreds)
// sliced out of range.
func TestDebugIdleBlockersManyTickables(t *testing.T) {
	k := NewKernel()
	const n = 70
	var qs []*quiescentTicker
	for i := 0; i < n; i++ {
		q := &quiescentTicker{k: k, busyUntil: 5}
		k.Register(q)
		qs = append(qs, q)
	}
	counts := DebugIdleBlockers(k)
	k.Schedule(20, func() {})
	k.RunUntil(func() bool { return false }, 20)
	got := counts()
	if len(got) != n {
		t.Fatalf("counts for %d tickables, want %d", len(got), n)
	}
	var total uint64
	for _, c := range got {
		total += c
	}
	if total == 0 {
		t.Fatal("no blocked polls recorded while components were busy")
	}
}

// Registration after instrumentation must also be in range (the counts
// slice grows on demand).
func TestDebugIdleBlockersLateRegistration(t *testing.T) {
	k := NewKernel()
	counts := DebugIdleBlockers(k)
	for i := 0; i < 66; i++ {
		k.Register(&quiescentTicker{k: k, busyUntil: 3})
	}
	k.Schedule(10, func() {})
	k.RunUntil(func() bool { return false }, 10)
	if got := counts(); len(got) != 66 {
		t.Fatalf("counts for %d tickables, want 66", len(got))
	}
}
