package sim

// RNG is a small deterministic xorshift64* pseudo-random generator. Every
// source of randomness in the simulator draws from an RNG seeded from the
// run configuration, so two runs with the same configuration are
// bit-identical. The stdlib math/rand would also work, but a local
// implementation pins the sequence across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a fixed point at zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean with probability p of being true.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork returns a new generator whose sequence is derived from, but
// independent of, the parent. Use it to give each core or workload its own
// stream without coupling their consumption rates.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}
