package memimage

import (
	"testing"
	"testing/quick"

	"pmemaccel/internal/memaddr"
)

func TestUnwrittenWordsReadZero(t *testing.T) {
	m := New()
	if m.ReadWord(memaddr.NVMBase) != 0 {
		t.Fatal("fresh image returned nonzero word")
	}
}

func TestWriteReadWord(t *testing.T) {
	m := New()
	m.WriteWord(memaddr.NVMBase+8, 0xdeadbeef)
	if got := m.ReadWord(memaddr.NVMBase + 8); got != 0xdeadbeef {
		t.Fatalf("ReadWord = %#x, want 0xdeadbeef", got)
	}
}

func TestMisalignedAccessAlignsDown(t *testing.T) {
	m := New()
	m.WriteWord(100, 7) // aligns to 96
	if got := m.ReadWord(96); got != 7 {
		t.Fatalf("ReadWord(96) = %d, want 7", got)
	}
	if got := m.ReadWord(103); got != 7 {
		t.Fatalf("ReadWord(103) = %d, want 7 (same word)", got)
	}
}

func TestLineRoundTrip(t *testing.T) {
	m := New()
	var line [memaddr.WordsPerLine]uint64
	for i := range line {
		line[i] = uint64(i * 11)
	}
	m.WriteLine(memaddr.NVMBase+128, line)
	got := m.ReadLine(memaddr.NVMBase + 128 + 24) // any addr in line
	if got != line {
		t.Fatalf("ReadLine = %v, want %v", got, line)
	}
}

func TestCopyLine(t *testing.T) {
	src, dst := New(), New()
	for i := 0; i < memaddr.WordsPerLine; i++ {
		src.WriteWord(memaddr.NVMBase+uint64(i*8), uint64(i+1))
	}
	dst.CopyLine(src, memaddr.NVMBase+16)
	for i := 0; i < memaddr.WordsPerLine; i++ {
		if got := dst.ReadWord(memaddr.NVMBase + uint64(i*8)); got != uint64(i+1) {
			t.Fatalf("word %d = %d after CopyLine, want %d", i, got, i+1)
		}
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	m := New()
	m.WriteWord(8, 1)
	s := m.Snapshot()
	m.WriteWord(8, 2)
	m.WriteWord(16, 3)
	if s.ReadWord(8) != 1 || s.ReadWord(16) != 0 {
		t.Fatal("snapshot mutated by later writes")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := New(), New()
	a.WriteWord(8, 1)
	b.WriteWord(8, 1)
	if !a.Equal(b) {
		t.Fatal("identical images not Equal")
	}
	b.WriteWord(16, 9)
	if a.Equal(b) {
		t.Fatal("different images Equal")
	}
	diffs := a.Diffs(b, 10)
	if len(diffs) != 1 || diffs[0].Addr != 16 || diffs[0].A != 0 || diffs[0].B != 9 {
		t.Fatalf("Diffs = %+v, want one diff at 16 (0 vs 9)", diffs)
	}
}

func TestExplicitZeroWriteEqualsAbsent(t *testing.T) {
	a, b := New(), New()
	a.WriteWord(8, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("explicit zero should compare equal to unwritten")
	}
}

func TestDiffLimitStopsEarly(t *testing.T) {
	a, b := New(), New()
	for i := uint64(0); i < 100; i++ {
		a.WriteWord(i*8, i+1)
	}
	if got := a.DiffLimit(b, 5); got != 5 {
		t.Fatalf("DiffLimit(5) = %d, want 5", got)
	}
	if got := a.DiffLimit(b, 0); got != 100 {
		t.Fatalf("DiffLimit(0) = %d, want 100", got)
	}
}

func TestForEachVisitsAllWrites(t *testing.T) {
	m := New()
	want := map[uint64]uint64{8: 1, 16: 2, 24: 3}
	for a, v := range want {
		m.WriteWord(a, v)
	}
	got := map[uint64]uint64{}
	m.ForEach(func(a, v uint64) { got[a] = v })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d words, want %d", len(got), len(want))
	}
	for a, v := range want {
		if got[a] != v {
			t.Fatalf("ForEach got[%d] = %d, want %d", a, got[a], v)
		}
	}
}

// Property: a line write followed by word reads reconstructs the line, and
// word writes followed by a line read reconstructs the words.
func TestQuickLineWordAgreement(t *testing.T) {
	f := func(base uint64, line [memaddr.WordsPerLine]uint64) bool {
		base = memaddr.LineAddr(base)
		m := New()
		m.WriteLine(base, line)
		for i := range line {
			if m.ReadWord(base+uint64(i)*memaddr.WordSize) != line[i] {
				return false
			}
		}
		n := New()
		for i := range line {
			n.WriteWord(base+uint64(i)*memaddr.WordSize, line[i])
		}
		return n.ReadLine(base) == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Snapshot is Equal to the original, and Diff of an image with
// itself is empty.
func TestQuickSnapshotEqual(t *testing.T) {
	f := func(writes []struct {
		A uint64
		V uint64
	}) bool {
		m := New()
		for _, w := range writes {
			m.WriteWord(w.A, w.V)
		}
		s := m.Snapshot()
		return m.Equal(s) && s.Equal(m) && len(m.Diffs(s, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
