// Package memimage provides functional (value-carrying) images of the
// simulated physical memory. The simulator keeps timing and data separate:
// caches and controllers model *when* accesses complete, while images model
// *what* each memory would contain. Keeping real 64-bit values in the
// durable NVM image, the transaction cache, the software log and the
// nonvolatile LLC is what makes crash/recovery testing functional rather
// than purely statistical.
package memimage

import (
	"sort"

	"pmemaccel/internal/memaddr"
)

// Image is a sparse, word-granular memory content image. Unwritten words
// read as zero, matching hardware that zeroes (or never exposes) fresh
// pages. The zero value is NOT usable; call New.
type Image struct {
	words map[uint64]uint64
}

// New returns an empty image.
func New() *Image {
	return &Image{words: make(map[uint64]uint64)}
}

// NewSized returns an empty image pre-sized for about n words, avoiding
// rehash churn when the caller knows the fill size up front (seeding the
// live/durable images from generated base images, building the expected
// recovery image).
func NewSized(n int) *Image {
	return &Image{words: make(map[uint64]uint64, n)}
}

// ReadWord returns the 64-bit word at addr. addr is word-aligned by the
// caller's contract; misaligned addresses are aligned down.
func (m *Image) ReadWord(addr uint64) uint64 {
	return m.words[memaddr.WordAddr(addr)]
}

// WriteWord stores a 64-bit word at addr (aligned down).
func (m *Image) WriteWord(addr, value uint64) {
	m.words[memaddr.WordAddr(addr)] = value
}

// ReadLine returns the 8 words of the cache line containing addr.
func (m *Image) ReadLine(addr uint64) [memaddr.WordsPerLine]uint64 {
	base := memaddr.LineAddr(addr)
	var line [memaddr.WordsPerLine]uint64
	for i := range line {
		line[i] = m.words[base+uint64(i)*memaddr.WordSize]
	}
	return line
}

// WriteLine stores 8 words at the cache line containing addr.
func (m *Image) WriteLine(addr uint64, line [memaddr.WordsPerLine]uint64) {
	base := memaddr.LineAddr(addr)
	for i, w := range line {
		m.words[base+uint64(i)*memaddr.WordSize] = w
	}
}

// CopyLine copies the cache line containing addr from src into m. It is
// the writeback primitive: "the volatile version of this line becomes the
// durable version".
func (m *Image) CopyLine(src *Image, addr uint64) {
	m.WriteLine(addr, src.ReadLine(addr))
}

// Len reports the number of distinct words ever written.
func (m *Image) Len() int { return len(m.words) }

// Snapshot returns an independent deep copy, used to capture the durable
// state at a crash point.
func (m *Image) Snapshot() *Image {
	c := &Image{words: make(map[uint64]uint64, len(m.words))}
	for a, v := range m.words {
		c.words[a] = v
	}
	return c
}

// Equal reports whether two images contain the same values at every word
// (treating absent words as zero).
func (m *Image) Equal(o *Image) bool {
	return m.DiffLimit(o, 1) == 0
}

// Diff is a single word-level difference between two images.
type Diff struct {
	Addr uint64
	A, B uint64
}

// DiffLimit counts word-level differences between m and o, stopping early
// once limit differences are found (limit <= 0 means unlimited).
func (m *Image) DiffLimit(o *Image, limit int) int {
	n := 0
	for a, v := range m.words {
		if o.words[a] != v {
			n++
			if limit > 0 && n >= limit {
				return n
			}
		}
	}
	for a, v := range o.words {
		if v != 0 {
			if _, ok := m.words[a]; !ok {
				n++
				if limit > 0 && n >= limit {
					return n
				}
			}
		}
	}
	return n
}

// Diffs returns up to max word-level differences, sorted by address, for
// diagnostics in failing tests.
func (m *Image) Diffs(o *Image, max int) []Diff {
	var out []Diff
	seen := make(map[uint64]bool)
	for a, v := range m.words {
		if o.words[a] != v {
			out = append(out, Diff{Addr: a, A: v, B: o.words[a]})
			seen[a] = true
		}
	}
	for a, v := range o.words {
		if v != 0 && !seen[a] {
			if _, ok := m.words[a]; !ok {
				out = append(out, Diff{Addr: a, A: 0, B: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// ForEach visits every written word in unspecified order.
func (m *Image) ForEach(fn func(addr, value uint64)) {
	for a, v := range m.words {
		fn(a, v)
	}
}
