package mechanism

import (
	"fmt"
	"sort"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/txcache"
)

// conflictGuard is the per-mechanism conflict-detection front end over the
// shared txcache.LineArbiter: the line-ownership probe every transactional
// store to the cross-core shared region passes through before it may enter
// a durability path. It is built only when the environment carries an
// arbiter (shared workloads); a nil guard is a no-op on every method, so
// core-private workloads pay nothing.
//
// Protocol, per store to a shared line L:
//
//  1. already held by this core → proceed;
//  2. a granted verdict for L is waiting → take ownership, proceed;
//  3. a denied verdict for L is waiting → the core lost arbitration:
//     clear the transaction's line bookkeeping (ownership it acquired is
//     released as far as durability allows) and tell the core to abort;
//  4. otherwise → post an ownership request to the coordinator (guarded
//     defer, so the serial and parallel kernels decide in the same order)
//     and stall the store one cycle.
//
// Ownership is held from first touch until the owning transaction's
// writes to the line are durable; the release point is mechanism-specific
// and expressed through commitPending/onAck (TCache drain acks),
// releaseTxNow (commit-record apply, flush completion, or plain TX_END),
// all of which run in coordinator contexts.
type conflictGuard struct {
	env   *Env
	cores []guardCore
}

type guardCore struct {
	// held marks shared lines this core currently owns.
	held map[uint64]bool
	// curLines counts the open transaction's durable writes per line.
	curLines map[uint64]int
	// pending counts committed-but-not-yet-durable writes per line
	// (TCache drain path); ownership releases when it reaches zero.
	pending map[uint64]int
}

type guardDecision int

const (
	gdProceed guardDecision = iota
	gdRetry
	gdAbort
)

// newConflictGuard builds the guard, or nil when env carries no arbiter.
func newConflictGuard(env *Env) *conflictGuard {
	if env.Arb == nil {
		return nil
	}
	g := &conflictGuard{env: env, cores: make([]guardCore, env.Cores)}
	for i := range g.cores {
		g.cores[i] = guardCore{
			held:     make(map[uint64]bool),
			curLines: make(map[uint64]int),
			pending:  make(map[uint64]int),
		}
	}
	return g
}

// check runs the ownership probe for one store. Worker-safe: it touches
// only this core's guard state and verdict slot, and posts arbiter
// mutations through the core's guarded-defer path.
func (g *conflictGuard) check(core int, txID, addr uint64) guardDecision {
	if g == nil || txID == 0 || !memaddr.IsShared(addr) {
		return gdProceed
	}
	gc := &g.cores[core]
	line := memaddr.LineAddr(addr)
	if gc.held[line] {
		return gdProceed
	}
	arb := g.env.Arb
	v := arb.Verdict(core)
	if v.State != txcache.ArbNone && v.Line != line {
		panic(fmt.Sprintf("mechanism: core %d verdict for line %#x while storing to %#x", core, v.Line, line))
	}
	switch v.State {
	case txcache.ArbGranted:
		arb.ClearVerdict(core)
		gc.held[line] = true
		return gdProceed
	case txcache.ArbDenied:
		arb.ClearVerdict(core)
		g.loseTx(core)
		return gdAbort
	case txcache.ArbPending:
		// Decision still in flight (parallel kernel: it lands at this
		// cycle's journal replay); keep stalling.
		return gdRetry
	}
	// Post the request; the verdict slot is marked pending worker-side
	// so repeated ticks do not re-post, and the coordinator overwrites
	// it with the decision.
	arb.SetPending(core, line)
	x := g.env.Ctxs[core]
	if x.Deferring() {
		x.Defer(func() { arb.Acquire(line, core) })
	} else {
		arb.Acquire(line, core)
	}
	return gdRetry
}

// noteWrite records one durable write of the open transaction to addr's
// line. Call after check proceeded and the store entered a durability
// path; non-shared addresses are ignored.
func (g *conflictGuard) noteWrite(core int, addr uint64) {
	if g == nil || !memaddr.IsShared(addr) {
		return
	}
	g.cores[core].curLines[memaddr.LineAddr(addr)]++
}

// sortedHeld returns this core's held lines in address order, so arbiter
// mutations never depend on map iteration order.
func (g *conflictGuard) sortedHeld(core int) []uint64 {
	gc := &g.cores[core]
	lines := make([]uint64, 0, len(gc.held))
	for l := range gc.held {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// tryRelease drops ownership of line if nothing keeps it: no open-tx
// writes, no committed writes still draining. Coordinator contexts only.
func (g *conflictGuard) tryRelease(core int, line uint64) {
	gc := &g.cores[core]
	if gc.held[line] && gc.curLines[line] == 0 && gc.pending[line] == 0 {
		g.env.Arb.Release(line, core)
		delete(gc.held, line)
	}
}

// loseTx clears the aborted transaction's line bookkeeping and schedules
// the ownership sweep. Runs worker-side from check; the arbiter
// mutations are deferred to the coordinator.
func (g *conflictGuard) loseTx(core int) {
	gc := &g.cores[core]
	for l := range gc.curLines {
		delete(gc.curLines, l)
	}
	lines := g.sortedHeld(core)
	x := g.env.Ctxs[core]
	fn := func() {
		for _, l := range lines {
			g.tryRelease(core, l)
		}
	}
	if x.Deferring() {
		x.Defer(fn)
	} else {
		fn()
	}
}

// commitPending moves the committing transaction's per-line write counts
// into the drain-pending set and sweeps ownership (lines acquired but
// never written release immediately; written lines release as their
// drain acks arrive). Coordinator contexts only.
func (g *conflictGuard) commitPending(core int) {
	if g == nil {
		return
	}
	gc := &g.cores[core]
	for l, n := range gc.curLines {
		gc.pending[l] += n
		delete(gc.curLines, l)
	}
	for _, l := range g.sortedHeld(core) {
		g.tryRelease(core, l)
	}
}

// releaseTxNow drops the committed transaction's line bookkeeping and
// every ownership nothing else keeps — the release point for mechanisms
// whose commit instant makes all the transaction's writes durable at
// once (flush completion, commit-record apply, plain TX_END).
// Coordinator contexts only.
func (g *conflictGuard) releaseTxNow(core int) {
	if g == nil {
		return
	}
	gc := &g.cores[core]
	for l := range gc.curLines {
		delete(gc.curLines, l)
	}
	for _, l := range g.sortedHeld(core) {
		g.tryRelease(core, l)
	}
}

// onAck observes one TC drain acknowledgment (TCache release path):
// when a shared line's last pending write drains, ownership releases.
// Coordinator contexts only (memory-completion events).
func (g *conflictGuard) onAck(core int, addr uint64) {
	if g == nil || !memaddr.IsShared(addr) {
		return
	}
	gc := &g.cores[core]
	line := memaddr.LineAddr(addr)
	if n, ok := gc.pending[line]; ok {
		if n <= 1 {
			delete(gc.pending, line)
			g.tryRelease(core, line)
		} else {
			gc.pending[line] = n - 1
		}
	}
}
