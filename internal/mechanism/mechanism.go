// Package mechanism implements the four persistence schemes the paper
// evaluates (§5.1) as pluggable strategies over the shared simulator:
//
//   - Optimal — native execution, no persistence guarantee;
//   - SP — software-supported persistence: redo write-ahead logging with
//     clwb/sfence write-order control (Figures 2(b) and 3(a));
//   - TCache — this paper's transaction-cache accelerator;
//   - Kiln — the nonvolatile-LLC baseline [23] that flushes transaction
//     data into the LLC at commit and pins uncommitted lines there.
//
// A mechanism contributes: cache-hierarchy hooks, a per-core trace
// rewriter (SP injects its logging code), the cpu.Persistence behaviour at
// transaction boundaries and persistent stores, a durable-commit counter
// used by crash checking, and a Recover procedure that turns a crash-time
// durable state into the post-recovery NVM image.
package mechanism

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
)

// Kind identifies one of the four evaluated schemes.
type Kind int

const (
	// Optimal is native execution without persistence support.
	Optimal Kind = iota
	// SP is software-supported persistence (write-ahead logging).
	SP
	// TCache is the paper's transaction-cache accelerator.
	TCache
	// Kiln is the nonvolatile-LLC prior design [23].
	Kiln
)

// All lists the mechanisms in the paper's comparison order.
var All = []Kind{SP, TCache, Kiln, Optimal}

// String names the mechanism as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Optimal:
		return "optimal"
	case SP:
		return "sp"
	case TCache:
		return "tcache"
	case Kiln:
		return "kiln"
	default:
		return fmt.Sprintf("mechanism(%d)", int(k))
	}
}

// ParseKind maps a name to a Kind.
func ParseKind(name string) (Kind, error) {
	for _, k := range All {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("mechanism: unknown kind %q", name)
}

// Description returns the §5.1 one-liner.
func (k Kind) Description() string {
	switch k {
	case Optimal:
		return "Native execution without persistence overhead."
	case SP:
		return "Software write-ahead logging with clwb/sfence write ordering."
	case TCache:
		return "Nonvolatile transaction cache beside the hierarchy (this work)."
	case Kiln:
		return "Nonvolatile LLC with hardware commit flushes (prior work)."
	default:
		return "unknown"
	}
}

// MemPort is the mechanisms' port into main memory: the cache.Memory
// request surface plus the one piece of memory-side introspection a
// mechanism needs (SP's pcommit stall drains the NVM write queues). It is
// implemented by memctrl.Backend; mechanisms never see the topology —
// per-channel FIFO durability ordering is the backend's contract.
type MemPort interface {
	// Read fetches a line; done fires when data returns.
	Read(lineAddr uint64, done func())
	// Write retires a line towards memory. apply runs at durability
	// time, then onDurable (both may be nil).
	Write(lineAddr uint64, apply, onDurable func())
	// PendingNVMWrites reports queued, unissued writes summed across
	// the NVM channels.
	PendingNVMWrites() int
}

// TCIntrospector is the optional interface a mechanism implements when it
// deploys per-core transaction caches. The system layer uses it — via a
// declared type assertion, not an anonymous one — to register TC
// occupancy sources with the observability sampler and to collect TC
// stats into the Result.
type TCIntrospector interface {
	// TC returns core's transaction cache.
	TC(core int) *txcache.TxCache
	// TCStatsAll returns every core's transaction cache counters.
	TCStatsAll() []txcache.Stats
}

// Env is the shared simulator state a mechanism plugs into.
type Env struct {
	K     *sim.Kernel
	Cores int
	// Ctxs is the per-core kernel context. A mechanism's per-core slots
	// (transaction caches, commit polls, fall-back writers) schedule and
	// defer through Ctxs[core], so that when core c's slot runs on a
	// parallel-kernel worker its shared-state interactions are journaled
	// under c's group. Nil entries (or a nil slice) are filled with
	// plain serial passthrough contexts by New.
	Ctxs []*sim.Ctx
	// Mem is the main-memory port (the multi-channel backend).
	Mem MemPort
	// Live is the volatile shadow image: the newest architectural value
	// of every line, updated at store retirement.
	Live *memimage.Image
	// Durable is the NVM content that survives a crash.
	Durable *memimage.Image
	// TC configures the per-core transaction caches (TCache only).
	TC txcache.Config
	// Probe is the observability recorder, nil when disabled.
	// Mechanisms hand it to the components they build (the TCache's
	// per-core transaction caches); their own behaviour is traced
	// through the core (commit-wait spans) and hierarchy (flush spans).
	Probe *obs.Probe
	// Metrics is the run-wide metrics registry, nil when disabled.
	// Mechanisms wire the components they build into it (the TCache's
	// drain-burst histograms, its fall-back counter); a nil registry
	// hands out nil metrics, the zero-overhead path.
	Metrics *metrics.Registry
	// Flight is the transaction flight recorder, nil when sampling is
	// off. Mechanisms that build TCs hand it down so drain writes carry
	// flight checkpoints; the fall-back path marks sampled flights.
	Flight *txflight.Recorder
	// Arb is the shared-line ownership arbiter, non-nil only when the
	// workload has a cross-core shared region. Mechanisms with a
	// conflict window (in-transaction stores that must not interleave
	// with another core's on the same line) arbitrate through it; SP
	// ignores it — redo logging has no conflict window in this trace
	// model, because in-place stores happen after commit and recovery
	// replays logs in global commit order.
	Arb *txcache.LineArbiter
	// Commits is the global durable-commit log, non-nil only when the
	// workload has a shared region. Every mechanism appends each
	// transaction at the instant it becomes durably committed; the
	// system folds committed write sets in this order to build the
	// expected durable image (the serialization oracle).
	Commits *CommitLog
}

// CommitLog records the global order in which transactions became
// durably committed, as (core) entries — each core's transactions commit
// in program order, so the core index alone identifies the transaction.
// Appends happen only in coordinator contexts (events, journal replay,
// serial ticks), which makes the order identical between the serial and
// parallel kernels.
type CommitLog struct {
	Order []int
}

// Append records that core's next transaction just became durable.
func (l *CommitLog) Append(core int) { l.Order = append(l.Order, core) }

// noteDurableCommit appends to the global commit log if one is wired.
// Call only from coordinator contexts; callers in worker contexts must
// route through their Ctx's guarded-defer path.
func (env *Env) noteDurableCommit(core int) {
	if env.Commits != nil {
		env.Commits.Append(core)
	}
}

// Mechanism is the strategy interface.
type Mechanism interface {
	cpu.Persistence

	Kind() Kind
	// Hooks returns the cache-hierarchy hooks to build the hierarchy
	// with.
	Hooks() cache.Hooks
	// Attach hands the built hierarchy to the mechanism (Kiln commits
	// flush through it).
	Attach(h *cache.Hierarchy)
	// Rewrite wraps a workload trace reader with mechanism-injected
	// instructions (SP logging); identity for the others.
	Rewrite(core int, r trace.Reader) trace.Reader
	// Drained reports whether all persistence machinery has quiesced.
	Drained() bool
	// DurablyCommitted reports how many of core's transactions are
	// durably committed at this instant — the oracle prefix a crash
	// right now must recover to.
	DurablyCommitted(core int) uint64
	// Recover builds the post-recovery NVM image from a crash-time
	// durable image (plus the mechanism's own nonvolatile state).
	Recover(durable *memimage.Image) *memimage.Image
	// RecoveryCost estimates the reboot-time work recovery would do if
	// the system crashed at this instant.
	RecoveryCost() RecoveryCost
}

// RecoveryCost is a coarse reboot-time work estimate: how many
// nonvolatile items recovery scans, how many NVM writes it issues, and a
// cycle estimate assuming the Table 2 NVM timings (152-cycle writes
// across 32 banks, ~40-cycle scans).
type RecoveryCost struct {
	ScannedItems int
	NVMWrites    int
	EstCycles    uint64
}

// estimateRecoveryCycles applies the shared cost model.
func estimateRecoveryCycles(scanned, writes int) uint64 {
	const (
		scanCost      = 40  // one NVM read-ish step per scanned item
		writeCost     = 152 // NVM write latency
		bankParallism = 32
	)
	return uint64(scanned)*scanCost/bankParallism + uint64(writes)*writeCost/bankParallism
}

// New builds the mechanism of the given kind over env.
func New(kind Kind, env *Env) Mechanism {
	if env.Ctxs == nil {
		env.Ctxs = make([]*sim.Ctx, env.Cores)
	}
	for i := range env.Ctxs {
		if env.Ctxs[i] == nil {
			env.Ctxs[i] = env.K.NewCtx()
		}
	}
	switch kind {
	case Optimal:
		return newOptimal(env)
	case SP:
		return newSP(env)
	case TCache:
		return newTCache(env)
	case Kiln:
		return newKiln(env)
	default:
		panic(fmt.Sprintf("mechanism: unknown kind %d", int(kind)))
	}
}

// copyLiveApply returns an apply closure copying the live image's line
// into the durable image for persistent lines, nil for volatile ones.
func copyLiveApply(env *Env, lineAddr uint64) func() {
	if !memaddr.IsPersistent(lineAddr) {
		return nil
	}
	return func() { env.Durable.CopyLine(env.Live, lineAddr) }
}
