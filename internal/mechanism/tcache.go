package mechanism

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
)

// tcMech is this paper's design: a per-core nonvolatile transaction cache
// beside the hierarchy. Persistent stores are copied into the TC
// non-blockingly; TX_END inserts a commit request (instantly durable — the
// TC is nonvolatile); the LLC drops persistent evictions and probes the TC
// on persistent misses; the NVM controller acknowledges drained entries.
//
// Overflow (§4.1) falls back to hardware copy-on-write: once a
// transaction sees the TC at its high-water mark, its further updates are
// written to a per-core shadow log in NVM, and its commit waits for those
// shadow writes plus a commit record — the only case where the TC design
// ever stalls a commit.
type tcMech struct {
	env  *Env
	tcs  []*txcache.TxCache
	hier *cache.Hierarchy
	g    *conflictGuard

	committed []uint64

	// Copy-on-write fall-back state, per core.
	fbActive      []bool
	fbTx          []uint64
	fbPending     [][]trace.Write // this transaction's shadow writes
	fbOutstanding []int           // shadow writes not yet durable
	fbCommit      []func()        // deferred commit waiting for drain
	shadow        []memaddr.Range
	shadowCursor  []uint64

	// fallbackTxs counts transactions that overflowed to the COW path,
	// per core: the counter is bumped from cpu.Persistence.Store, which
	// under the parallel kernel runs on per-core workers — a single
	// shared word would be a data race.
	fallbackTxs []uint64
	// cFallback mirrors the fall-back count into the metrics registry
	// (nil when metrics are disabled; metrics are never enabled in
	// parallel-kernel runs, so the shared counter is coordinator-only).
	cFallback *metrics.Counter
}

func newTCache(env *Env) Mechanism {
	m := &tcMech{
		env:           env,
		committed:     make([]uint64, env.Cores),
		fbActive:      make([]bool, env.Cores),
		fbTx:          make([]uint64, env.Cores),
		fbPending:     make([][]trace.Write, env.Cores),
		fbOutstanding: make([]int, env.Cores),
		fbCommit:      make([]func(), env.Cores),
		shadow:        make([]memaddr.Range, env.Cores),
		shadowCursor:  make([]uint64, env.Cores),
		fallbackTxs:   make([]uint64, env.Cores),
		cFallback:     env.Metrics.Counter("tc_fallback_txs"),
	}
	m.g = newConflictGuard(env)
	for c := range m.shadowCursor {
		m.shadow[c] = memaddr.PerCoreLog(c)
		m.shadowCursor[c] = m.shadow[c].Base
	}
	durableApply := func(addr, value uint64) { env.Durable.WriteWord(addr, value) }
	for c := 0; c < env.Cores; c++ {
		tc := txcache.New(env.Ctxs[c], env.TC, env.Mem, durableApply)
		tc.SetProbe(env.Probe, c)
		tc.SetFlight(env.Flight)
		// Drain-burst histograms are run-wide (shared across cores):
		// the paper's claim is about the burst distribution, not any
		// one core's. A nil registry hands out nil histograms.
		tc.SetMetrics(
			env.Metrics.Histogram("tc_drain_burst_entries"),
			env.Metrics.Histogram("tc_drain_burst_cycles"),
		)
		if m.g != nil {
			// Shared-line ownership releases when the owning
			// transaction's last committed write drains out of the TC;
			// acks fire in coordinator contexts.
			core := c
			tc.SetAckHook(func(addr uint64) { m.g.onAck(core, addr) })
		}
		m.tcs = append(m.tcs, tc)
	}
	return m
}

func (m *tcMech) Kind() Kind { return TCache }

// The TCache mechanism is the one mechanism exposing its transaction
// caches to the system layer's sampler and result collector.
var _ TCIntrospector = (*tcMech)(nil)

// TC exposes core's transaction cache (stats, tests).
func (m *tcMech) TC(core int) *txcache.TxCache { return m.tcs[core] }

// TCStatsAll returns every core's transaction cache counters.
func (m *tcMech) TCStatsAll() []txcache.Stats {
	out := make([]txcache.Stats, len(m.tcs))
	for i, tc := range m.tcs {
		out[i] = tc.Stats()
	}
	return out
}

func (m *tcMech) Hooks() cache.Hooks {
	return cache.Hooks{
		// "We drop the last-level cache write-backs — these blocks are
		// simply discarded after being evicted out of the last-level
		// cache." The TC path is the only writer of persistent data.
		DropLLCEviction: func(victim *cache.Line) bool { return victim.Persistent },
		// "Last level cache will issue miss requests toward not only
		// the NVM but also the transaction cache."
		SidePathProbe: func(lineAddr uint64) bool {
			for _, tc := range m.tcs {
				if tc.Probe(lineAddr) {
					return true
				}
			}
			return false
		},
		// Persistent lines never reach memory through the hierarchy,
		// so no writeback carries durable semantics.
		WritebackApply: func(lineAddr uint64) func() { return nil },
	}
}

func (m *tcMech) Attach(h *cache.Hierarchy) { m.hier = h }

func (m *tcMech) Rewrite(core int, r trace.Reader) trace.Reader { return r }

func (m *tcMech) TxBegin(core int, txID uint64) {}

// Store copies the persistent store into the TC beside the normal cache
// path. A full TC stalls the core; at the high-water mark the store takes
// the copy-on-write fall-back.
func (m *tcMech) Store(core int, txID uint64, addr, value uint64) cpu.StoreAction {
	// Shared lines pass the ownership probe before entering either
	// durability path. On a lost arbitration the transaction's TC
	// entries are discarded (they are Active, never drained) and any
	// fall-back state is dropped; in-flight shadow log writes are
	// harmless — nothing applies them without a commit record.
	switch m.g.check(core, txID, addr) {
	case gdRetry:
		return cpu.StoreAction{Retry: true}
	case gdAbort:
		m.tcs[core].EvictTx(txID)
		if m.fbActive[core] && m.fbTx[core] == txID {
			m.fbActive[core] = false
			m.fbPending[core] = nil
		}
		return cpu.StoreAction{Abort: true}
	}
	if m.fbActive[core] && m.fbTx[core] == txID {
		m.fallbackWrite(core, addr, value)
		m.g.noteWrite(core, addr)
		return cpu.StoreAction{}
	}
	switch m.tcs[core].Write(txID, addr, value) {
	case txcache.Accepted:
		m.g.noteWrite(core, addr)
		return cpu.StoreAction{}
	case txcache.Fallback:
		m.fbActive[core] = true
		m.fbTx[core] = txID
		m.fallbackTxs[core]++
		m.cFallback.Inc()
		if fr := m.env.Flight; fr.Sampled(txID) {
			// Store runs on the core's worker under the parallel kernel;
			// the flight mark journals through the core's context.
			if x := m.env.Ctxs[core]; x.Deferring() {
				x.Defer(func() { fr.MarkFallback(core, txID) })
			} else {
				fr.MarkFallback(core, txID)
			}
		}
		// The whole transaction moves to the copy-on-write path: its
		// TC-resident entries are evicted into the shadow first (in
		// program order), so no word of this transaction has updates
		// split across the two durability paths.
		// The evicted entries were noted at their original accept; only
		// the triggering store is new.
		for _, e := range m.tcs[core].EvictTx(txID) {
			m.fallbackWrite(core, e.Addr, e.Value)
		}
		m.fallbackWrite(core, addr, value)
		m.g.noteWrite(core, addr)
		return cpu.StoreAction{}
	default: // Full
		return cpu.StoreAction{Retry: true}
	}
}

// FallbackTxs sums the per-core fall-back transaction counts.
func (m *tcMech) FallbackTxs() uint64 {
	var total uint64
	for _, n := range m.fallbackTxs {
		total += n
	}
	return total
}

// fallbackWrite sends one shadow (copy-on-write) update to NVM. It runs
// from the core's Store path, so under the parallel kernel the shared
// backend write is journaled through the core's context.
func (m *tcMech) fallbackWrite(core int, addr, value uint64) {
	slot := m.shadowCursor[core]
	m.shadowCursor[core] += 2 * memaddr.WordSize
	if m.shadowCursor[core] > m.shadow[core].End() {
		panic(fmt.Sprintf("mechanism: tcache shadow log for core %d exhausted", core))
	}
	m.fbPending[core] = append(m.fbPending[core], trace.Write{Addr: memaddr.WordAddr(addr), Value: value})
	m.fbOutstanding[core]++
	onDurable := func() {
		m.fbOutstanding[core]--
		m.checkFallbackCommit(core)
	}
	if x := m.env.Ctxs[core]; x.Deferring() {
		x.Defer(func() { m.env.Mem.Write(memaddr.LineAddr(slot), nil, onDurable) })
	} else {
		m.env.Mem.Write(memaddr.LineAddr(slot), nil, onDurable)
	}
}

// TxEnd commits: ordinarily a single commit request to the nonvolatile TC
// (no stall); for an overflowed transaction the commit waits for shadow
// durability plus a commit record.
func (m *tcMech) TxEnd(core int, txID uint64, resume func()) bool {
	if m.fbActive[core] && m.fbTx[core] == txID {
		m.fbCommit[core] = func() {
			// Invariant at this point: the shadow writes are durable
			// AND the TC has drained its older committed entries, so
			// the shadow apply cannot be overwritten by a stale
			// in-flight TC drain.
			// Commit record durable: apply the shadow writes, then
			// commit the TC-resident entries — one atomic event.
			slot := m.shadowCursor[core]
			m.shadowCursor[core] += 2 * memaddr.WordSize
			pend := m.fbPending[core]
			apply := func() {
				for _, w := range pend {
					m.env.Durable.WriteWord(w.Addr, w.Value)
				}
				m.tcs[core].Commit(txID)
				m.committed[core]++
				// Commit-record durability is the overflowed
				// transaction's durable instant: its shadow writes just
				// applied, so shared-line ownership releases here (apply
				// runs at memory durability time — coordinator context).
				m.env.noteDurableCommit(core)
				m.g.releaseTxNow(core)
			}
			// The commit can fire synchronously from TxEnd (everything
			// already durable and drained), which under the parallel
			// kernel runs on the core's worker: journal the shared
			// backend write through the core's context.
			if x := m.env.Ctxs[core]; x.Deferring() {
				x.Defer(func() { m.env.Mem.Write(memaddr.LineAddr(slot), apply, resume) })
			} else {
				m.env.Mem.Write(memaddr.LineAddr(slot), apply, resume)
			}
			m.fbPending[core] = nil
			m.fbActive[core] = false
		}
		m.checkFallbackCommit(core)
		m.pollFallbackCommit(core)
		return true
	}
	m.tcs[core].Commit(txID)
	m.committed[core]++
	if m.g != nil || m.env.Commits != nil {
		// The commit request to the nonvolatile TC is instantly durable,
		// so TX_END is the durable instant. Ownership of the
		// transaction's shared lines transfers to the drain-pending set
		// and releases as the acks arrive; both the commit log and the
		// pending transfer are coordinator-side, so route through the
		// guarded defer. Acks cannot beat the deferred transfer: the
		// earliest drain completion is a memory event in a later cycle.
		fn := func() {
			m.env.noteDurableCommit(core)
			m.g.commitPending(core)
		}
		if x := m.env.Ctxs[core]; x.Deferring() {
			x.Defer(fn)
		} else {
			fn()
		}
	}
	return false
}

// checkFallbackCommit fires the deferred commit once the shadow writes
// are durable and the core's TC has drained (ordering across
// transactions: an older TC entry must not land after the shadow apply).
func (m *tcMech) checkFallbackCommit(core int) {
	if m.fbOutstanding[core] == 0 && m.tcs[core].Drained() && m.fbCommit[core] != nil {
		commit := m.fbCommit[core]
		m.fbCommit[core] = nil
		commit()
	}
}

// pollFallbackCommit re-checks the commit condition each cycle while the
// TC drains (drain completion has no callback of its own).
func (m *tcMech) pollFallbackCommit(core int) {
	if m.fbCommit[core] == nil {
		return
	}
	m.env.Ctxs[core].Schedule(1, func() {
		m.checkFallbackCommit(core)
		m.pollFallbackCommit(core)
	})
}

func (m *tcMech) Drained() bool {
	for c := 0; c < m.env.Cores; c++ {
		if !m.tcs[c].Drained() || m.fbOutstanding[c] != 0 || m.fbCommit[c] != nil {
			return false
		}
	}
	return true
}

func (m *tcMech) DurablyCommitted(core int) uint64 { return m.committed[core] }

// RecoveryCost scans the nonvolatile TCs and replays their committed
// entries.
func (m *tcMech) RecoveryCost() RecoveryCost {
	scanned, writes := 0, 0
	for _, tc := range m.tcs {
		for _, e := range tc.Contents() {
			scanned++
			if e.State == txcache.Committed {
				writes++
			}
		}
	}
	return RecoveryCost{
		ScannedItems: scanned,
		NVMWrites:    writes,
		EstCycles:    estimateRecoveryCycles(scanned, writes),
	}
}

// Recover replays the nonvolatile TCs: committed entries (in FIFO order)
// are applied to the durable image; active entries belong to uncommitted
// transactions and are discarded. Overflowed transactions were applied at
// commit-record durability and need nothing here.
func (m *tcMech) Recover(durable *memimage.Image) *memimage.Image {
	out := durable.Snapshot()
	for _, tc := range m.tcs {
		for _, e := range tc.Contents() {
			if e.State == txcache.Committed {
				out.WriteWord(e.Addr, e.Value)
			}
		}
	}
	return out
}
