package mechanism

import (
	"testing"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	k := sim.NewKernel()
	backend, err := memctrl.NewBackend(k, memctrl.Topology{},
		memctrl.Config{Name: "NVM", Banks: 4, ReadHit: 40, ReadMiss: 130, WriteHit: 120, WriteMiss: 152},
		memctrl.Config{Name: "DRAM", Banks: 4, ReadHit: 27, ReadMiss: 80, WriteHit: 27, WriteMiss: 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	return &Env{
		K:       k,
		Cores:   2,
		Mem:     backend,
		Live:    memimage.New(),
		Durable: memimage.New(),
		TC:      txcache.Config{SizeBytes: 8 * 64, EntryBytes: 64},
	}
}

func attach(env *Env, m Mechanism) *cache.Hierarchy {
	h := cache.New(env.K, cache.Config{
		L1Size: 1 << 10, L1Ways: 2, L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 4,
	}, env.Mem, m.Hooks(), env.Cores)
	m.Attach(h)
	return h
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range All {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		if k.Description() == "unknown" {
			t.Errorf("%v lacks a description", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

func TestNewBuildsEveryKind(t *testing.T) {
	for _, k := range All {
		env := testEnv(t)
		m := New(k, env)
		if m.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, m.Kind())
		}
		attach(env, m)
	}
}

func TestOptimalIsTransparent(t *testing.T) {
	env := testEnv(t)
	m := New(Optimal, env)
	attach(env, m)
	if m.TxEnd(0, 1, nil) {
		t.Fatal("optimal TxEnd requested a stall")
	}
	act := m.Store(0, 1, memaddr.NVMBase, 5)
	if act.Retry || act.TxTag != 0 {
		t.Fatalf("optimal store action = %+v, want zero", act)
	}
	if !m.Drained() {
		t.Fatal("optimal not drained")
	}
	if m.DurablyCommitted(0) != 1 {
		t.Fatalf("committed = %d, want 1", m.DurablyCommitted(0))
	}
	// Recover is the identity.
	env.Durable.WriteWord(memaddr.NVMBase, 77)
	if got := m.Recover(env.Durable).ReadWord(memaddr.NVMBase); got != 77 {
		t.Fatalf("optimal recover changed durable state: %d", got)
	}
}

func TestSPRewriteInjectsLoggingCode(t *testing.T) {
	env := testEnv(t)
	m := New(SP, env)
	attach(env, m)
	var tr trace.Trace
	tr.Append(
		trace.TxBegin(1),
		trace.Store(memaddr.NVMBase, 5),
		trace.Store(memaddr.NVMBase+8, 6),
		trace.TxEnd(1),
		trace.Compute(3),
	)
	rd := m.Rewrite(0, trace.NewReader(&tr))
	var out []trace.Record
	for {
		rec, ok := rd.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	var logStores, flushes, fences, dataStores int
	seenEnd := false
	dataAfterEnd := 0
	for _, r := range out {
		switch {
		case r.Kind == trace.KindStore && memaddr.Classify(r.Addr) == memaddr.SpaceNVMLog:
			logStores++
		case r.Kind == trace.KindStore && memaddr.Classify(r.Addr) == memaddr.SpaceNVM:
			dataStores++
			if seenEnd {
				dataAfterEnd++
			}
		case r.Kind == trace.KindCLFlush:
			flushes++
		case r.Kind == trace.KindSFence:
			fences++
		case r.Kind == trace.KindTxEnd:
			seenEnd = true
		}
	}
	// 2 entries + 1 commit record, each 2 stores + clflush + sfence.
	if logStores != 6 || flushes != 3 || fences != 3 {
		t.Fatalf("log stores/flushes/fences = %d/%d/%d, want 6/3/3", logStores, flushes, fences)
	}
	// In-place data stores are deferred past the commit record.
	if dataStores != 2 || dataAfterEnd != 2 {
		t.Fatalf("data stores = %d (%d after TX_END), want 2 deferred", dataStores, dataAfterEnd)
	}
}

func TestSPRecoverReplaysCommittedOnly(t *testing.T) {
	env := testEnv(t)
	m := New(SP, env).(*sp)
	durable := memimage.New()
	base := m.logs[0].Base
	// Committed tx: two entries + commit record.
	durable.WriteWord(base, memaddr.NVMBase)
	durable.WriteWord(base+8, 11)
	durable.WriteWord(base+16, memaddr.NVMBase+8)
	durable.WriteWord(base+24, 22)
	durable.WriteWord(base+32, spCommitMagic)
	durable.WriteWord(base+40, 1)
	// In-flight tx: entry without commit record.
	durable.WriteWord(base+48, memaddr.NVMBase+16)
	durable.WriteWord(base+56, 99)
	out := m.Recover(durable)
	if out.ReadWord(memaddr.NVMBase) != 11 || out.ReadWord(memaddr.NVMBase+8) != 22 {
		t.Fatal("committed transaction not replayed")
	}
	if out.ReadWord(memaddr.NVMBase+16) == 99 {
		t.Fatal("uncommitted entry was replayed")
	}
}

func TestSPRecoverStopsAtHole(t *testing.T) {
	env := testEnv(t)
	m := New(SP, env).(*sp)
	durable := memimage.New()
	base := m.logs[0].Base
	// Hole at the start; a (stale) commit record beyond it must be
	// ignored.
	durable.WriteWord(base+16, memaddr.NVMBase)
	durable.WriteWord(base+24, 5)
	durable.WriteWord(base+32, spCommitMagic)
	durable.WriteWord(base+40, 1)
	out := m.Recover(durable)
	if out.ReadWord(memaddr.NVMBase) == 5 {
		t.Fatal("entries beyond a log hole were replayed")
	}
}

func TestTCacheStoreCommitDrain(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	if act := m.Store(0, 1, memaddr.NVMBase, 42); act.Retry {
		t.Fatal("store rejected by empty TC")
	}
	if m.TxEnd(0, 1, nil) {
		t.Fatal("non-overflow commit requested a stall")
	}
	if m.DurablyCommitted(0) != 1 {
		t.Fatal("commit not counted")
	}
	env.K.RunUntil(m.Drained, 100000)
	if env.Durable.ReadWord(memaddr.NVMBase) != 42 {
		t.Fatalf("durable = %d after drain, want 42", env.Durable.ReadWord(memaddr.NVMBase))
	}
}

func TestTCacheRecoverReplaysCommittedEntries(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	m.Store(0, 1, memaddr.NVMBase, 10)
	m.TxEnd(0, 1, nil)
	m.Store(0, 2, memaddr.NVMBase+8, 20) // active, uncommitted
	// Crash now, before any drain tick.
	out := m.Recover(env.Durable)
	if out.ReadWord(memaddr.NVMBase) != 10 {
		t.Fatal("committed TC entry not recovered")
	}
	if out.ReadWord(memaddr.NVMBase+8) == 20 {
		t.Fatal("active TC entry leaked into recovery")
	}
}

func TestTCacheFullStallsStore(t *testing.T) {
	env := testEnv(t)
	env.TC.HighWaterFrac = 1.0 // disable fallback to reach Full
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	for i := 0; i < 8; i++ {
		if act := m.Store(0, 1, memaddr.NVMBase+uint64(i)*8, 1); act.Retry {
			t.Fatalf("store %d rejected before capacity", i)
		}
	}
	if act := m.Store(0, 1, memaddr.NVMBase+64, 1); !act.Retry {
		t.Fatal("store into full TC not retried")
	}
}

func TestTCacheOverflowFallback(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	// High water = 7 of 8 entries: the 8th store falls back, evicting
	// the transaction to the shadow.
	for i := 0; i < 9; i++ {
		if act := m.Store(0, 1, memaddr.NVMBase+uint64(i)*8, uint64(100+i)); act.Retry {
			t.Fatalf("store %d stalled; fallback should absorb overflow", i)
		}
	}
	if m.FallbackTxs() != 1 {
		t.Fatalf("FallbackTxs = %d, want 1", m.FallbackTxs())
	}
	if m.tcs[0].Occupancy() != 0 {
		t.Fatalf("TC still holds %d entries of the overflowed tx", m.tcs[0].Occupancy())
	}
	resumed := false
	if !m.TxEnd(0, 1, func() { resumed = true }) {
		t.Fatal("overflowed commit did not stall")
	}
	env.K.RunUntil(func() bool { return resumed }, 100000)
	if !resumed {
		t.Fatal("overflowed commit never resumed")
	}
	if m.DurablyCommitted(0) != 1 {
		t.Fatal("overflowed tx not counted committed")
	}
	for i := 0; i < 9; i++ {
		if got := env.Durable.ReadWord(memaddr.NVMBase + uint64(i)*8); got != uint64(100+i) {
			t.Fatalf("durable word %d = %d, want %d", i, got, 100+i)
		}
	}
	if !m.Drained() {
		t.Fatal("mechanism not drained after fallback commit")
	}
}

func TestTCacheOverflowCrashBeforeCommitLosesNothingCommitted(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	for i := 0; i < 9; i++ {
		m.Store(0, 1, memaddr.NVMBase+uint64(i)*8, uint64(100+i))
	}
	// Crash before TxEnd: nothing of tx 1 may be recovered.
	out := m.Recover(env.Durable)
	for i := 0; i < 9; i++ {
		if out.ReadWord(memaddr.NVMBase+uint64(i)*8) != 0 {
			t.Fatalf("uncommitted overflowed write %d leaked into recovery", i)
		}
	}
}

func TestTCacheDropsPersistentEvictions(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env)
	hooks := m.Hooks()
	if hooks.DropLLCEviction == nil {
		t.Fatal("TCache has no drop hook")
	}
	if !hooks.DropLLCEviction(&cache.Line{Persistent: true, Dirty: true}) {
		t.Fatal("persistent victim not dropped")
	}
	if hooks.DropLLCEviction(&cache.Line{Persistent: false, Dirty: true}) {
		t.Fatal("volatile victim dropped")
	}
}

func TestTCacheSidePathProbe(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	m.Store(1, 1, memaddr.NVMBase+128, 5) // core 1's TC
	hooks := m.Hooks()
	if !hooks.SidePathProbe(memaddr.NVMBase + 128) {
		t.Fatal("probe missed a buffered line")
	}
	if hooks.SidePathProbe(memaddr.NVMBase + 4096) {
		t.Fatal("probe hit an absent line")
	}
}

func TestKilnCommitFlushesAndCounts(t *testing.T) {
	env := testEnv(t)
	m := New(Kiln, env).(*kiln)
	h := attach(env, m)
	// Dirty a line in L1 under tx 1 via the hierarchy.
	done := false
	act := m.Store(0, 1, memaddr.NVMBase, 9)
	if act.TxTag == 0 || !act.Uncommitted {
		t.Fatalf("kiln store action = %+v, want tagged", act)
	}
	env.Live.WriteWord(memaddr.NVMBase, 9)
	h.Access(0, memaddr.NVMBase, true, true, act.TxTag, act.Uncommitted, func() { done = true })
	env.K.RunUntil(func() bool { return done }, 100000)

	resumed := false
	if !m.TxEnd(0, 1, func() { resumed = true }) {
		t.Fatal("kiln commit did not stall")
	}
	env.K.RunUntil(func() bool { return resumed }, 100000)
	if m.DurablyCommitted(0) != 1 {
		t.Fatal("commit not counted")
	}
	// Recovery merges the committed dirty LLC line.
	out := m.Recover(env.Durable)
	if out.ReadWord(memaddr.NVMBase) != 9 {
		t.Fatalf("recovered = %d, want 9 (from NV-LLC)", out.ReadWord(memaddr.NVMBase))
	}
}

func TestKilnUncommittedLinesDiscardedOnRecovery(t *testing.T) {
	env := testEnv(t)
	m := New(Kiln, env).(*kiln)
	h := attach(env, m)
	act := m.Store(0, 1, memaddr.NVMBase, 9)
	env.Live.WriteWord(memaddr.NVMBase, 9)
	done := false
	h.Access(0, memaddr.NVMBase, true, true, act.TxTag, act.Uncommitted, func() { done = true })
	env.K.RunUntil(func() bool { return done }, 100000)
	// No commit: even if the line were evicted into the LLC it stays
	// uncommitted. Force it there via FlushTx-free eviction is complex;
	// instead verify Recover of the durable image alone.
	out := m.Recover(env.Durable)
	if out.ReadWord(memaddr.NVMBase) == 9 {
		t.Fatal("uncommitted value recovered")
	}
}

func TestKilnTagNamespacesCores(t *testing.T) {
	env := testEnv(t)
	m := New(Kiln, env).(*kiln)
	a := m.Store(0, 7, memaddr.NVMBase, 1).TxTag
	b := m.Store(1, 7, memaddr.NVMBase+8, 1).TxTag
	if a == b {
		t.Fatal("same tx id on different cores produced identical tags")
	}
}

func TestSPPcommitStallsUntilWriteQueueDrains(t *testing.T) {
	env := testEnv(t)
	m := New(SP, env)
	attach(env, m)
	// With writes pending at the NVM controller, TX_END stalls until
	// the queue drains (pcommit).
	env.Mem.Write(memaddr.NVMBase, nil, nil)
	resumed := false
	if !m.TxEnd(0, 1, func() { resumed = true }) {
		t.Fatal("TxEnd with pending NVM writes did not stall")
	}
	env.K.RunUntil(func() bool { return resumed }, 100000)
	if !resumed {
		t.Fatal("pcommit never resumed")
	}
	// With an idle queue, TX_END is instant.
	if m.TxEnd(0, 2, nil) {
		t.Fatal("TxEnd with idle NVM queue stalled")
	}
}

func TestRecoveryCostZeroWhenIdle(t *testing.T) {
	for _, k := range All {
		env := testEnv(t)
		m := New(k, env)
		attach(env, m)
		c := m.RecoveryCost()
		if c.ScannedItems != 0 || c.NVMWrites != 0 || c.EstCycles != 0 {
			t.Errorf("%v: fresh mechanism has recovery cost %+v", k, c)
		}
	}
}

func TestTCacheRecoveryCostCountsCommittedEntries(t *testing.T) {
	env := testEnv(t)
	m := New(TCache, env).(*tcMech)
	attach(env, m)
	m.Store(0, 1, memaddr.NVMBase, 1)
	m.Store(0, 1, memaddr.NVMBase+8, 2)
	m.TxEnd(0, 1, nil)
	m.Store(0, 2, memaddr.NVMBase+16, 3) // active: scanned but not replayed
	c := m.RecoveryCost()
	if c.ScannedItems != 3 || c.NVMWrites != 2 {
		t.Fatalf("cost = %+v, want scan 3 / writes 2", c)
	}
	if c.EstCycles == 0 {
		t.Fatal("estimate is zero with pending work")
	}
}
