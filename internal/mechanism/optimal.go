package mechanism

import (
	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/trace"
)

// optimal is native execution: stores flow through the unmodified
// hierarchy, transactions are one-cycle markers, and nothing guarantees
// that committed data reaches NVM atomically — which is exactly what the
// crash tests demonstrate.
type optimal struct {
	env       *Env
	committed []uint64
	g         *conflictGuard
}

func newOptimal(env *Env) Mechanism {
	return &optimal{env: env, committed: make([]uint64, env.Cores), g: newConflictGuard(env)}
}

func (m *optimal) Kind() Kind { return Optimal }

func (m *optimal) Hooks() cache.Hooks {
	return cache.Hooks{
		WritebackApply: func(lineAddr uint64) func() { return copyLiveApply(m.env, lineAddr) },
	}
}

func (m *optimal) Attach(*cache.Hierarchy) {}

func (m *optimal) Rewrite(core int, r trace.Reader) trace.Reader { return r }

func (m *optimal) TxBegin(core int, txID uint64) {}

func (m *optimal) TxEnd(core int, txID uint64, resume func()) bool {
	// "Commit" is only an instruction boundary: nothing becomes durable.
	m.committed[core]++
	if m.g != nil || m.env.Commits != nil {
		// The "durable" instant for Optimal's oracle bookkeeping is the
		// commit marker itself; ownership releases with it. Both are
		// coordinator-side state, so route through the guarded defer.
		fn := func() {
			m.env.noteDurableCommit(core)
			m.g.releaseTxNow(core)
		}
		if x := m.env.Ctxs[core]; x.Deferring() {
			x.Defer(fn)
		} else {
			fn()
		}
	}
	return false
}

func (m *optimal) Store(core int, txID uint64, addr, value uint64) cpu.StoreAction {
	// Optimal offers no persistence, but it arbitrates shared lines like
	// the hardware mechanisms do: the IPC-vs-Optimal comparison under
	// contention is apples-to-apples only if the conflict window costs
	// every mechanism the same aborts.
	switch m.g.check(core, txID, addr) {
	case gdRetry:
		return cpu.StoreAction{Retry: true}
	case gdAbort:
		return cpu.StoreAction{Abort: true}
	}
	m.g.noteWrite(core, addr)
	return cpu.StoreAction{}
}

func (m *optimal) Drained() bool { return true }

func (m *optimal) DurablyCommitted(core int) uint64 { return m.committed[core] }

// RecoveryCost is zero: there is no recovery procedure (and no
// guarantee).
func (m *optimal) RecoveryCost() RecoveryCost { return RecoveryCost{} }

// Recover returns the durable image untouched: with no persistence
// support there is nothing to recover from, and the image may well be an
// inconsistent mix of old and new values.
func (m *optimal) Recover(durable *memimage.Image) *memimage.Image {
	return durable.Snapshot()
}
