package mechanism

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/trace"
)

// sp is software-supported persistence: redo write-ahead logging in the
// NVM log region with clflush/sfence write-order control, the Figure 2(b)/3(a)
// code pattern. Each transaction becomes:
//
//	TX_BEGIN
//	  per persistent store: log bookkeeping instructions,
//	                        store(log.addr), store(log.value),
//	                        clflush(log), sfence
//	TX_END ->  store(commit record), clflush
//	           sfence                     // commit record durable
//	           in-place data stores       // cached; recovered via redo
//
// Write-order control is strict (per-entry flush + fence), the
// conservative software discipline of the clflush/mfence era the paper's
// SP baseline represents (§2.1): every logged store serializes behind an
// NVM write, which is exactly the overhead the accelerator eliminates.
//
// In-place stores are deferred past the commit record (Mnemosyne-style
// write-through logging), so an uncommitted transaction can never leak
// in-place data into NVM via cache evictions — recovery is exactly "replay
// the log of every transaction whose commit record is durable".
type sp struct {
	env       *Env
	logs      []memaddr.Range
	cursor    []uint64
	committed []uint64
}

// spLogCost is the bookkeeping instruction count per logged store — the
// "extra instructions that read and write the addresses and values" of
// §2.1.
const spLogCost = 2

// spCommitMagic marks a commit record; it classifies as an invalid
// address so it can never collide with a logged store address.
const spCommitMagic = ^uint64(0) - 0xC0331731

func newSP(env *Env) Mechanism {
	logs := make([]memaddr.Range, env.Cores)
	for c := range logs {
		logs[c] = memaddr.PerCoreLog(c)
	}
	cursor := make([]uint64, env.Cores)
	for c, r := range logs {
		cursor[c] = r.Base
	}
	return &sp{env: env, logs: logs, cursor: cursor, committed: make([]uint64, env.Cores)}
}

func (m *sp) Kind() Kind { return SP }

func (m *sp) Hooks() cache.Hooks {
	return cache.Hooks{
		WritebackApply: func(lineAddr uint64) func() { return copyLiveApply(m.env, lineAddr) },
	}
}

func (m *sp) Attach(*cache.Hierarchy) {}

// logAlloc hands out the next 2-word log slot for core.
func (m *sp) logAlloc(core int) uint64 {
	addr := m.cursor[core]
	m.cursor[core] += 2 * memaddr.WordSize
	if m.cursor[core] > m.logs[core].End() {
		panic(fmt.Sprintf("mechanism: sp log for core %d exhausted", core))
	}
	return addr
}

// Rewrite injects the logging code.
func (m *sp) Rewrite(core int, r trace.Reader) trace.Reader {
	return &spReader{m: m, core: core, src: r}
}

type spReader struct {
	m    *sp
	core int
	src  trace.Reader

	queue    []trace.Record
	deferred []trace.Record
	inTx     bool
}

func (r *spReader) Next() (trace.Record, bool) {
	for len(r.queue) == 0 {
		rec, ok := r.src.Next()
		if !ok {
			return trace.Record{}, false
		}
		r.expand(rec)
	}
	rec := r.queue[0]
	r.queue = r.queue[1:]
	return rec, true
}

func (r *spReader) expand(rec trace.Record) {
	switch {
	case rec.Kind == trace.KindTxBegin:
		r.inTx = true
		r.queue = append(r.queue, rec)

	case rec.Kind == trace.KindStore && r.inTx && memaddr.IsPersistent(rec.Addr):
		slot := r.m.logAlloc(r.core)
		r.queue = append(r.queue,
			trace.Compute(spLogCost),
			trace.Store(slot, rec.Addr),
			trace.Store(slot+8, rec.Value),
			trace.CLFlush(slot),
			trace.SFence(),
		)
		r.deferred = append(r.deferred, rec)

	case rec.Kind == trace.KindTxEnd:
		r.inTx = false
		slot := r.m.logAlloc(r.core)
		r.queue = append(r.queue,
			trace.Store(slot, spCommitMagic),
			trace.Store(slot+8, rec.TxID),
			trace.CLFlush(slot),
			trace.SFence(),
			rec,
		)
		r.queue = append(r.queue, r.deferred...)
		r.deferred = r.deferred[:0]

	default:
		r.queue = append(r.queue, rec)
	}
}

func (m *sp) TxBegin(core int, txID uint64) {}

// TxEnd retires after the commit record's sfence, so the transaction is
// durable by construction at this point. The remaining cost is pcommit
// (Figure 3(a)): the core stalls until the NVM controller's write queue
// drains.
func (m *sp) TxEnd(core int, txID uint64, resume func()) bool {
	m.committed[core]++
	if m.env.Commits != nil {
		// SP does not arbitrate (in-place stores are deferred past the
		// commit record, so there is no conflict window), but it still
		// reports its commit order: shared-mode recovery replays the
		// logs globally in this order, which overrides whatever order
		// the deferred in-place stores later reach NVM in.
		x := m.env.Ctxs[core]
		if x.Deferring() {
			x.Defer(func() { m.env.noteDurableCommit(core) })
		} else {
			m.env.noteDurableCommit(core)
		}
	}
	if m.env.Mem.PendingNVMWrites() == 0 {
		return false
	}
	// The poll schedules through the core's context: the first Schedule
	// happens inside TxEnd, which under the parallel kernel runs on the
	// core's worker (re-arms from poll itself run in event context and
	// pass straight through to the kernel).
	x := m.env.Ctxs[core]
	var poll func()
	poll = func() {
		if m.env.Mem.PendingNVMWrites() == 0 {
			resume()
			return
		}
		x.Schedule(1, poll)
	}
	x.Schedule(1, poll)
	return true
}

func (m *sp) Store(core int, txID uint64, addr, value uint64) cpu.StoreAction {
	return cpu.StoreAction{}
}

func (m *sp) Drained() bool { return true }

// DurablyCommitted counts the commit records present in the DURABLE log —
// the same source recovery reads. (The retirement-time counter would lag
// by the few cycles between the record's clflush completing and TX_END
// retiring, misclassifying a crash inside that window.)
func (m *sp) DurablyCommitted(core int) uint64 {
	var n uint64
	for pos := m.logs[core].Base; pos < m.cursor[core]; pos += 16 {
		a := m.env.Durable.ReadWord(pos)
		if a == 0 {
			break
		}
		if a == spCommitMagic {
			n++
		}
	}
	return n
}

// RecoveryCost scans every durable log record and replays the committed
// entries.
func (m *sp) RecoveryCost() RecoveryCost {
	scanned, writes := 0, 0
	for core := 0; core < m.env.Cores; core++ {
		pending := 0
		for pos := m.logs[core].Base; pos < m.cursor[core]; pos += 16 {
			a := m.env.Durable.ReadWord(pos)
			if a == 0 {
				break
			}
			scanned++
			if a == spCommitMagic {
				writes += pending
				pending = 0
			} else {
				pending++
			}
		}
	}
	return RecoveryCost{
		ScannedItems: scanned,
		NVMWrites:    writes,
		EstCycles:    estimateRecoveryCycles(scanned, writes),
	}
}

// Recover replays each core's durable log: accumulate (addr, value)
// entries, apply them when a commit record appears, stop at the first
// hole (a zero address — nothing durable beyond it can be committed,
// because the pre-commit sfence orders every entry before its record).
func (m *sp) Recover(durable *memimage.Image) *memimage.Image {
	if m.env.Commits != nil {
		return m.recoverGlobal(durable)
	}
	out := durable.Snapshot()
	for core := 0; core < m.env.Cores; core++ {
		var pending []trace.Write
		for pos := m.logs[core].Base; pos < m.logs[core].End(); pos += 16 {
			a := durable.ReadWord(pos)
			v := durable.ReadWord(pos + 8)
			switch {
			case a == 0:
				pos = m.logs[core].End() // hole: stop scanning
			case a == spCommitMagic:
				for _, w := range pending {
					out.WriteWord(w.Addr, w.Value)
				}
				pending = pending[:0]
			default:
				pending = append(pending, trace.Write{Addr: a, Value: v})
			}
		}
	}
	return out
}

// recoverGlobal replays the per-core logs interleaved in global durable
// commit order — the shared-mode serialization discipline. Per core the
// log is in program order, so a cursor per core plus the commit log's
// core sequence reconstructs exactly the order the transactions became
// durable in, regardless of the order their deferred in-place stores
// later reached NVM.
func (m *sp) recoverGlobal(durable *memimage.Image) *memimage.Image {
	out := durable.Snapshot()
	pos := make([]uint64, m.env.Cores)
	for c := range pos {
		pos[c] = m.logs[c].Base
	}
	for _, core := range m.env.Commits.Order {
		var pending []trace.Write
		p := pos[core]
		for p < m.logs[core].End() {
			a := durable.ReadWord(p)
			v := durable.ReadWord(p + 8)
			p += 16
			if a == 0 {
				// Hole before the next commit record: nothing durable
				// beyond it, stop replaying this core.
				p = m.logs[core].End()
				break
			}
			if a == spCommitMagic {
				for _, w := range pending {
					out.WriteWord(w.Addr, w.Value)
				}
				break
			}
			pending = append(pending, trace.Write{Addr: a, Value: v})
		}
		pos[core] = p
	}
	return out
}
