package mechanism

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/trace"
)

// kiln is the nonvolatile-LLC baseline [23]: transaction stores are
// tagged with their TxID through the hierarchy; at commit the core stalls
// while every transaction-dirty L1/L2 line is flushed into the
// (STT-RAM) LLC; uncommitted lines are pinned in the LLC until their
// transaction commits. Committed dirty lines write back to NVM lazily on
// eviction.
//
// The nvllc image tracks the value each dirty LLC line physically holds
// (snapshotted from the live image at install time), making the LLC's
// nonvolatile content recoverable after a crash.
type kiln struct {
	env   *Env
	hier  *cache.Hierarchy
	nvllc *memimage.Image
	g     *conflictGuard

	committed []uint64

	// retained holds old committed line versions displaced by an
	// uncommitted overwrite whose forced write-back has not yet become
	// durable. Physically this data is still in the nonvolatile LLC
	// array (Kiln is multi-versioned), so recovery can read it; losing
	// it during the write-back's flight would be a durability hole.
	retained map[uint64]retainedVersion

	// ForcedWritebacks counts committed line versions written back
	// early because an uncommitted update was about to overwrite them.
	ForcedWritebacks uint64
}

type retainedVersion struct {
	vals [8]uint64
	gen  uint64
}

// DebugLine, when nonzero, traces every Kiln event touching that line
// address (temporary diagnostic aid). Debug-only: nothing in the repo
// writes it, so concurrent pmemaccel.Run calls (the internal/sweep
// worker pool) only ever read the constant zero. Set it from a
// single-threaded debugging session only — it is deliberately not part
// of Config, and writing it during a parallel sweep is a data race.
var DebugLine uint64

// kilnShadowBit maps a line address to its version-placeholder address:
// same LLC set (the bit is above every index bit), no collision with any
// real region.
const kilnShadowBit = uint64(1) << 62

func newKiln(env *Env) Mechanism {
	return &kiln{
		env: env, nvllc: memimage.New(),
		g:         newConflictGuard(env),
		committed: make([]uint64, env.Cores),
		retained:  make(map[uint64]retainedVersion),
	}
}

func (m *kiln) Kind() Kind { return Kiln }

func (m *kiln) Hooks() cache.Hooks {
	return cache.Hooks{
		// Uncommitted transaction lines may not leave the LLC.
		AllowLLCVictim: func(l *cache.Line) bool { return !l.Uncommitted },
		// Preserve the committed version before an uncommitted
		// overwrite: write it back to NVM first (multi-versioning).
		BeforeLLCDirtyUpdate: func(old cache.Line, newTxID uint64, newUncommitted bool) {
			if old.Dirty && !old.Uncommitted && old.Persistent && newUncommitted {
				m.ForcedWritebacks++
				// Snapshot the committed version now: by the time
				// the write becomes durable the LLC line already
				// holds the uncommitted overwrite. Until then the old
				// version is RETAINED (it is still physically in the
				// NV-LLC array — Kiln is multi-versioned), so a crash
				// mid-flight cannot lose committed data.
				addr := old.Addr
				vals := m.nvllc.ReadLine(addr)
				gen := m.ForcedWritebacks
				m.retained[addr] = retainedVersion{vals: vals, gen: gen}
				m.env.Mem.Write(addr, func() {
					m.env.Durable.WriteLine(addr, vals)
					if r, ok := m.retained[addr]; ok && r.gen == gen {
						delete(m.retained, addr)
					}
				}, nil)
				// Kiln is multi-versioned: the old committed copy
				// occupies a second LLC way until the overwriting
				// transaction commits. Versions are short-lived
				// (until the commit), so the capacity cost is
				// modelled by sampled placeholders in the same set.
				if m.ForcedWritebacks%4 == 0 {
					m.hier.InstallPlaceholder(addr^kilnShadowBit, addr)
				}
			}
		},
		// Snapshot the physical LLC content of every dirty install.
		OnLLCDirtyInstall: func(lineAddr uint64) {
			if DebugLine != 0 && lineAddr == DebugLine {
				fmt.Printf("[%d] kiln install line %#x live[0]=%d\n",
					m.env.K.Now(), lineAddr, m.env.Live.ReadWord(lineAddr))
			}
			m.nvllc.CopyLine(m.env.Live, lineAddr)
		},
		// LLC evictions carry the LLC's (nvllc) version to NVM,
		// snapshotted at eviction time (the line may be reinstalled
		// with uncommitted data before the write drains).
		WritebackApply: func(lineAddr uint64) func() {
			if !memaddr.IsPersistent(lineAddr) {
				return nil
			}
			vals := m.nvllc.ReadLine(lineAddr)
			if DebugLine != 0 && lineAddr == DebugLine {
				fmt.Printf("[%d] kiln evict-writeback line %#x nvllc[0]=%d\n",
					m.env.K.Now(), lineAddr, vals[0])
			}
			return func() { m.env.Durable.WriteLine(lineAddr, vals) }
		},
	}
}

func (m *kiln) Attach(h *cache.Hierarchy) { m.hier = h }

func (m *kiln) Rewrite(core int, r trace.Reader) trace.Reader { return r }

func (m *kiln) TxBegin(core int, txID uint64) {}

// tag namespaces per-core transaction ids into a globally unique line
// tag: every core's trace numbers its transactions from 1.
func (m *kiln) tag(core int, txID uint64) uint64 {
	return txID*64 + uint64(core)
}

// Store tags the line with its owning transaction so the hierarchy can
// pin and flush it. Shared lines pass the ownership probe first; on an
// abort nothing needs unwinding mechanism-side — the replayed attempt
// re-tags the same lines with the same transaction id, and only the
// eventual commit flush makes them durable.
func (m *kiln) Store(core int, txID uint64, addr, value uint64) cpu.StoreAction {
	switch m.g.check(core, txID, addr) {
	case gdRetry:
		return cpu.StoreAction{Retry: true}
	case gdAbort:
		return cpu.StoreAction{Abort: true}
	}
	m.g.noteWrite(core, addr)
	return cpu.StoreAction{TxTag: m.tag(core, txID), Uncommitted: true}
}

// TxEnd stalls the core while the transaction's dirty lines flush into
// the nonvolatile LLC; the commit becomes visible atomically when the
// flush completes and the lines unpin.
func (m *kiln) TxEnd(core int, txID uint64, resume func()) bool {
	tag := m.tag(core, txID)
	done := func() {
		// Flush completion is Kiln's durability instant: the
		// transaction's lines are in the nonvolatile LLC. Record the
		// global commit order and release shared-line ownership here —
		// done runs in a coordinator context (flush completion event).
		m.committed[core]++
		m.env.noteDurableCommit(core)
		m.g.releaseTxNow(core)
		resume()
	}
	// TxEnd runs on the core's worker under the parallel kernel; the
	// flush walks the shared hierarchy, so it is journaled through the
	// core's context and replays in registration order.
	if x := m.env.Ctxs[core]; x.Deferring() {
		x.Defer(func() { m.hier.FlushTx(core, tag, done) })
	} else {
		m.hier.FlushTx(core, tag, done)
	}
	return true
}

func (m *kiln) Drained() bool { return true }

func (m *kiln) DurablyCommitted(core int) uint64 { return m.committed[core] }

// RecoveryCost walks the nonvolatile LLC and writes back every committed
// dirty persistent line.
func (m *kiln) RecoveryCost() RecoveryCost {
	scanned, writes := 0, len(m.retained)
	m.hier.LLC().ForEach(func(l *cache.Line) {
		scanned++
		if l.Dirty && !l.Uncommitted && l.Persistent {
			writes++
		}
	})
	return RecoveryCost{
		ScannedItems: scanned,
		NVMWrites:    writes,
		EstCycles:    estimateRecoveryCycles(scanned, writes),
	}
}

// Recover merges the nonvolatile LLC into NVM: first the retained old
// versions (displaced by uncommitted overwrites, write-back still in
// flight), then committed dirty lines — a newer committed LLC copy of the
// same line correctly overrides its retained predecessor. Uncommitted
// lines are discarded.
func (m *kiln) Recover(durable *memimage.Image) *memimage.Image {
	out := durable.Snapshot()
	for addr, r := range m.retained {
		out.WriteLine(addr, r.vals)
	}
	m.hier.LLC().ForEach(func(l *cache.Line) {
		if l.Dirty && !l.Uncommitted && l.Persistent {
			out.CopyLine(m.nvllc, l.Addr)
		}
	})
	return out
}
