package pmemaccel

import (
	"reflect"
	"testing"

	"pmemaccel/internal/workload"
)

// runStreaming runs one cell with Config.Streaming set and the given
// worker count, returning the result with Config zeroed for comparison.
func runStreaming(t *testing.T, cfg Config, workers int) *Result {
	t.Helper()
	cfg.Streaming = true
	cfg.ParWorkers = workers
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("streaming Run(workers=%d): %v", workers, err)
	}
	r.Config = Config{}
	return r
}

// TestStreamingIdenticalAllCells is the tentpole acceptance gate: every
// benchmark x mechanism cell must produce a result under streaming
// workload generation that is byte-identical to the materialized path's.
// The generator emits the same record sequence Generate would have
// appended (the workload-level tests pin that), so the machine must not
// be able to tell the modes apart; only Config is zeroed (Streaming is
// the intended difference).
func TestStreamingIdenticalAllCells(t *testing.T) {
	for _, b := range workload.All {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				cfg := smokeConfig(b, m)
				mat, err := Run(cfg)
				if err != nil {
					t.Fatalf("materialized Run: %v", err)
				}
				mat.Config = Config{}
				str := runStreaming(t, cfg, 0)
				if !reflect.DeepEqual(mat, str) {
					t.Errorf("results diverge materialized vs streaming:\n  materialized: %v\n  streaming:    %v", mat, str)
					if mat.Cycles != str.Cycles {
						t.Errorf("Cycles: %d vs %d", mat.Cycles, str.Cycles)
					}
					for c := range mat.PerCore {
						if !reflect.DeepEqual(mat.PerCore[c], str.PerCore[c]) {
							t.Errorf("core %d stats diverge:\n  materialized: %+v\n  streaming:    %+v",
								c, mat.PerCore[c], str.PerCore[c])
						}
					}
				}
			})
		}
	}
}

// TestStreamingParKernelIdentical crosses streaming with the parallel
// kernel: generation then runs inside core fetches on tick workers
// (every piece of stream state is core-private, so this is race-free by
// construction — and the race-enabled CI job checks it), and the result
// must still match the serial materialized run on every mechanism.
func TestStreamingParKernelIdentical(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.Hashtable, m)
			mat, err := Run(cfg)
			if err != nil {
				t.Fatalf("materialized Run: %v", err)
			}
			mat.Config = Config{}
			str := runStreaming(t, cfg, 4)
			if !reflect.DeepEqual(mat, str) {
				t.Errorf("results diverge materialized-serial vs streaming-par:\n  materialized: %v\n  streaming:    %v", mat, str)
			}
		})
	}
}

// TestStreamingCrashCheckMatchesRecovery pins the end-of-run oracle in
// streaming mode: with no per-transaction history, ExpectedDurable folds
// the incremental final image, which after a full drain must agree with
// what the mechanism's recovery produces. Optimal is excluded: it makes
// no durability guarantee (recovery is the identity and committed lines
// may still be dirty in the volatile caches), in either generation mode.
func TestStreamingCrashCheckMatchesRecovery(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.SPS, m)
			cfg.Streaming = true
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			diffs := CheckDurable(sys.ExpectedDurable(), sys.RecoveredDurable(), 5)
			if len(diffs) != 0 {
				t.Errorf("recovered image diverges from streaming expectation: %v", diffs)
			}
		})
	}
}

// TestPaperScaleCalibration checks PaperScale's sizing math without
// paying for a paper-scale run: the calibrated op count must put the
// projected instruction window in the right class, streaming must be
// forced on, and the cycle bound must be raised.
func TestPaperScaleCalibration(t *testing.T) {
	cfg := DefaultConfig(workload.SPS, TCache)
	scaled, err := cfg.PaperScale()
	if err != nil {
		t.Fatalf("PaperScale: %v", err)
	}
	if !scaled.Streaming {
		t.Error("PaperScale did not enable streaming")
	}
	if scaled.MaxCycles < 2_000_000_001 {
		t.Errorf("MaxCycles = %d, want the paper-scale bound", scaled.MaxCycles)
	}
	p := workload.DefaultParams(workload.SPS, 0, scaled.Cores, scaled.Seed, scaled.InitialSize, workload.CalibrationOps)
	perOp, err := workload.InstructionsPerOp(workload.SPS, p)
	if err != nil {
		t.Fatal(err)
	}
	projected := perOp * float64(scaled.Ops) * float64(scaled.Cores)
	if projected < 0.9*PaperInstructionTarget || projected > 1.1*PaperInstructionTarget {
		t.Errorf("projected window = %.0f instructions (ops=%d, %.1f instr/op), want within 10%% of %d",
			projected, scaled.Ops, perOp, PaperInstructionTarget)
	}
}
