// Command paperrepro regenerates the paper's evaluation: Figures 6-10 as
// normalized tables (and optional bar charts), the §5.2 transaction-cache
// stall observation, and Tables 1-3.
//
// Usage:
//
//	paperrepro                 # full grid, all figures
//	paperrepro -fig 9          # one figure
//	paperrepro -table1         # hardware-overhead table only
//	paperrepro -config         # Table 2 machine configuration
//	paperrepro -workloads      # Table 3 workload descriptions
//	paperrepro -stalls         # TC-full stall fractions
//	paperrepro -contention     # cores x contention x mechanism sweep (bankshared)
//	paperrepro -bars -csv ...  # output formats
//
// -cores widens the simulated machine (power of two up to 64) for the
// figure grid and re-prices Table 1's per-core structures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmemaccel"
	"pmemaccel/internal/figures"
	"pmemaccel/internal/hwcost"
	"pmemaccel/internal/prof"
	"pmemaccel/internal/sweep"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate one figure (6..10); 0 = all")
		table1    = flag.Bool("table1", false, "print Table 1 (hardware overhead) and exit")
		config    = flag.Bool("config", false, "print the Table 2 machine configuration and exit")
		workloads = flag.Bool("workloads", false, "print the Table 3 workload list and exit")
		stalls    = flag.Bool("stalls", false, "print TC-full stall fractions (§5.2)")
		contSweep = flag.Bool("contention", false, "run the cross-core contention sweep (cores x contention x mechanism on bankshared) instead of the figure grid")
		bars      = flag.Bool("bars", false, "render figures as bar charts")
		csv       = flag.Bool("csv", false, "render figures as CSV")
		markdown  = flag.Bool("markdown", false, "render figures as markdown tables (EXPERIMENTS.md format)")
		ops       = flag.Int("ops", 0, "operations per core (0 = default)")
		cores     = flag.Int("cores", 0, "core count, a power of two up to 64 (0 = 4; ignored by -contention, which sweeps widths itself)")
		scale     = flag.Int("scale", 0, "cache scale divisor (0 = default 64; 1 = full Table 2 machine)")
		stream    = flag.Bool("stream", false, "stream workload generation (O(1) memory in ops; byte-identical results)")
		paperScl  = flag.Bool("paper-scale", false, "size ops to the paper's 1.7G-instruction window per cell (implies -stream; slow)")
		nvmChans  = flag.Int("nvm-channels", 0, "address-interleaved NVM channels (0 = 1)")
		dramChans = flag.Int("dram-channels", 0, "address-interleaved DRAM channels (0 = 1)")
		seed      = flag.Uint64("seed", 1, "random seed")
		jobs      = flag.Int("j", 0, "concurrent grid cells (0 = all cores); output is identical for every -j")
		noFF      = flag.Bool("no-ff", false, "disable quiescence fast-forward (step every cycle; same results, slower)")
		parKernel = flag.Int("par-kernel", 0, "tick cores on N worker goroutines between quiescence barriers (0 = serial kernel; results are byte-identical either way)")
		progress  = flag.Bool("progress", false, "render a live one-line grid status (cells/s, busy workers, ETA) instead of per-cell results")
		metrics   = flag.Bool("metrics", false, "enable the per-run metrics registry and print latency-percentile tables after the figures")
		txSample  = flag.Uint64("tx-sample", 0, "flight-record every Nth transaction per core (1 = all, 0 = off) and print the per-cell stage-breakdown table")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// The "0 selects the default" int flags are guarded with > 0 below, so
	// a negative value would silently run the default grid; reject it.
	for _, f := range []struct {
		name string
		val  int
	}{
		{"ops", *ops}, {"scale", *scale}, {"cores", *cores},
		{"nvm-channels", *nvmChans}, {"dram-channels", *dramChans},
		{"j", *jobs}, {"par-kernel", *parKernel},
	} {
		if f.val < 0 {
			fmt.Fprintf(os.Stderr, "paperrepro: -%s %d is negative; pass a positive value or omit the flag for the default\n", f.name, f.val)
			os.Exit(1)
		}
	}
	if err := pmemaccel.ValidateCLICores(*cores); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro: -cores:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		stop, err := prof.StartCPU(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memprofile != "" {
		defer func() {
			if err := prof.WriteHeap(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
			}
		}()
	}

	if *table1 {
		// The paper's Table 1 costs out the 4-core machine; -cores re-prices
		// the per-core structures for wider topologies.
		n := pmemaccel.DefaultCores
		if *cores > 0 {
			n = *cores
		}
		fmt.Print(hwcost.Config{
			Cores: n, TCBytes: 4 << 10, TCEntryBytes: 64, LineBytes: 64,
			L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 64 << 20,
		}.Render())
		return
	}
	if *config {
		printMachineConfig()
		return
	}
	if *workloads {
		fmt.Println("Table 3: Workloads")
		for _, b := range workload.All {
			fmt.Printf("  %-10s %s\n", b, b.Description())
		}
		return
	}

	configure := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(b, m)
		if *ops > 0 {
			cfg.Ops = *ops
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *cores > 0 {
			cfg.Cores = *cores
		}
		cfg.NVMChannels = *nvmChans
		cfg.DRAMChannels = *dramChans
		cfg.Seed = *seed
		cfg.NoFastForward = *noFF
		cfg.ParWorkers = *parKernel
		cfg.Streaming = *stream || *paperScl
		cfg.Obs.Metrics = *metrics
		if *txSample > 0 {
			cfg.Obs.Enabled = true
			cfg.Obs.TxSample = *txSample
		}
		if *paperScl {
			scaled, err := cfg.PaperScale()
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				os.Exit(1)
			}
			cfg = scaled
		}
		return cfg
	}

	if *contSweep {
		sweepCores := []int{4, 16, 64}
		sweepPcts := []float64{0.1, 0.5, 0.9}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %dx%dx%d contention sweep on %d workers...\n",
			len(sweepCores), len(sweepPcts), len(figures.Mechs), sweep.Workers(*jobs))
		var onCell func(string, *pmemaccel.Result)
		if !*progress {
			onCell = func(row string, r *pmemaccel.Result) {
				fmt.Fprintf(os.Stderr, "  [%s] %v\n", row, r)
			}
		}
		ipc, share, aborts, err := figures.ContentionSweep(
			sweepCores, sweepPcts, figures.Mechs, configure, onCell, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep complete in %v\n\n", time.Since(start).Round(time.Second))
		for _, s := range []interface {
			Table() string
			Markdown() string
			CSV() string
		}{ipc, share, aborts} {
			switch {
			case *markdown:
				fmt.Print(s.Markdown())
			case *csv:
				fmt.Print(s.CSV())
			default:
				fmt.Print(s.Table())
			}
			fmt.Println()
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %d x %d grid on %d workers...\n",
		len(workload.All), len(figures.Mechs), sweep.Workers(*jobs))
	// -progress replaces the per-cell result lines with a single
	// in-place status line; the two share stderr and would clobber each
	// other.
	perCell := func(b workload.Benchmark, m pmemaccel.Kind, r *pmemaccel.Result) {
		fmt.Fprintf(os.Stderr, "  %v\n", r)
	}
	var onProgress func(sweep.Progress)
	if *progress {
		perCell = nil
		onProgress = sweep.StderrProgress(os.Stderr, "grid")
	}
	grid, err := figures.RunParallelWithProgress(workload.All, figures.Mechs, configure,
		perCell, onProgress, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "grid complete in %v\n\n", time.Since(start).Round(time.Second))

	which := []int{6, 7, 8, 9, 10}
	if *fig != 0 {
		which = []int{*fig}
	}
	for _, n := range which {
		s, err := grid.Figure(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperrepro:", err)
			os.Exit(1)
		}
		switch {
		case *markdown:
			fmt.Print(s.Markdown())
		case *csv:
			fmt.Println(s.Name)
			fmt.Print(s.CSV())
		case *bars:
			fmt.Print(s.Bars(40))
		default:
			fmt.Print(s.Table())
		}
		fmt.Println()
	}
	if *stalls || *fig == 0 {
		fmt.Print(grid.StallTable())
		fmt.Println()
	}
	if *metrics {
		fmt.Print(grid.TxLatencyP99().Table())
		fmt.Println()
	}
	if *txSample > 0 {
		fmt.Print(grid.StageBreakdown())
		fmt.Println()
	}
	fmt.Print(grid.Summary())
}

func printMachineConfig() {
	fmt.Println(`Table 2: Machine Configuration (simulated; Scale divides capacities)
  CPU                4 cores, 2 GHz, 4-issue, MLP window 8
  L1 I/D             Private, 32 KB/core, 0.5 ns (1 cy), 4-way
  L2                 Private, 256 KB/core, 4.5 ns (9 cy), 8-way
  L3 (LLC)           Shared, 64 MB, 10 ns (20 cy), 16-way
  Transaction cache  Private, 4 KB/core, fully-assoc CAM FIFO, 0.5 ns (1 cy)
  Memory controllers 8/64-entry read/write queues; read-first,
                     write drain at 80% full
  NVM (STT-RAM)      32 banks, 65 ns read (130 cy), 76 ns write (152 cy)
  DRAM               DDR3-like, 32 banks`)
}
