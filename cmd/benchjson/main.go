// Command benchjson turns `go test -bench` output into a JSON
// benchmark-trajectory record, so simulator-speed numbers (ns/op,
// allocs/op, sim_cycles/s) are diffable across commits instead of
// scrolling away in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench SimulatorSpeed -benchtime 1x -benchmem . | benchjson -o BENCH_7.json
//	benchjson -check BENCH_7.json     # validate an existing record
//
// The parser accepts the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — and keeps every unit it
// sees, including custom b.ReportMetric units. Non-benchmark lines
// (PASS, ok, goos/goarch headers) pass through to stderr so the human
// still sees the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// schemaVersion guards downstream consumers: bump it when the file
// shape changes.
const schemaVersion = 1

// File is the trajectory record: one entry per benchmark run.
type File struct {
	Schema     int     `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurements. Metrics maps unit to value
// ("ns/op", "allocs/op", "sim_cycles/s", ...).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		out   = flag.String("o", "", "write the JSON record to this file (empty = stdout)")
		check = flag.String("check", "", "validate an existing record instead of parsing benchmark output")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: %s ok\n", *check)
		return
	}

	f, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(f.Benchmarks))
}

// parse reads benchmark output from r, echoing non-benchmark lines to
// echo, and returns the structured record.
func parse(r io.Reader, echo io.Writer) (*File, error) {
	f := &File{
		Schema:    schemaVersion,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		b, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines on stdin (pipe `go test -bench ...` output in)")
	}
	return f, nil
}

// parseLine parses one `BenchmarkName-8  N  v1 u1  v2 u2 ...` line.
// The -P GOMAXPROCS suffix is stripped from the name so records diff
// cleanly across machines.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters,
		Metrics: make(map[string]float64)}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Bench{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Bench{}, false
	}
	return b, true
}

// checkFile validates a committed record: parseable JSON of the right
// schema, at least one benchmark, every benchmark named with positive
// iterations and an ns/op measurement. It is the CI smoke gate for
// BENCH_7.json.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if f.Schema != schemaVersion {
		return fmt.Errorf("benchjson: %s: schema %d, want %d", path, f.Schema, schemaVersion)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: %s: no benchmarks", path)
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchjson: %s: benchmark %d has no name", path, i)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("benchjson: %s: %s: iterations = %d", path, b.Name, b.Iterations)
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			return fmt.Errorf("benchjson: %s: %s: missing ns/op", path, b.Name)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
