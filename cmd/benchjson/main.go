// Command benchjson turns `go test -bench` output into a JSON
// benchmark-trajectory record, so simulator-speed numbers (ns/op,
// allocs/op, sim_cycles/s) are diffable across commits instead of
// scrolling away in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench SimulatorSpeed -benchtime 1x -benchmem . | benchjson -o BENCH_8.json
//	benchjson -check BENCH_8.json                          # validate an existing record
//	benchjson -check BENCH_8.json -baseline BENCH_7.json   # + regression gate
//
// The parser accepts the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — and keeps every unit it
// sees, including custom b.ReportMetric units. Non-benchmark lines
// (PASS, ok, goos/goarch headers) pass through to stderr so the human
// still sees the run.
//
// -baseline compares sim_cycles/s against a prior record (in either
// parse or -check mode) and exits non-zero when any benchmark present
// in both files regressed by more than -max-regress (default 10%) —
// the bench regression gate CI runs against the previous PR's record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// schemaVersion guards downstream consumers: bump it when the file
// shape changes.
const schemaVersion = 1

// File is the trajectory record: one entry per benchmark run.
type File struct {
	Schema     int     `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurements. Metrics maps unit to value
// ("ns/op", "allocs/op", "sim_cycles/s", ...).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		out        = flag.String("o", "", "write the JSON record to this file (empty = stdout)")
		check      = flag.String("check", "", "validate an existing record instead of parsing benchmark output")
		baseline   = flag.String("baseline", "", "compare sim_cycles/s against this prior record; exit non-zero on regression")
		maxRegress = flag.Float64("max-regress", 0.10, "with -baseline: tolerated fractional sim_cycles/s drop before failing")
	)
	flag.Parse()

	if *check != "" {
		f, err := checkFile(*check)
		if err != nil {
			fatal(err)
		}
		if err := gate(f, *baseline, *maxRegress); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: %s ok\n", *check)
		return
	}

	f, err := parse(os.Stdin, os.Stderr)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(f.Benchmarks))
	}
	if err := gate(f, *baseline, *maxRegress); err != nil {
		fatal(err)
	}
}

// gate fails (non-nil error) when any benchmark present in both f and
// the baseline record dropped its sim_cycles/s by more than maxRegress.
// An empty baseline path is a no-op; benchmarks without the metric, or
// absent from either side, are skipped (renames must not wedge CI).
func gate(f *File, baselinePath string, maxRegress float64) error {
	if baselinePath == "" {
		return nil
	}
	base, err := checkFile(baselinePath)
	if err != nil {
		return err
	}
	const metric = "sim_cycles/s"
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	compared, skipped := 0, 0
	var regressions []string
	for _, b := range f.Benchmarks {
		bb, ok := baseBy[b.Name]
		if !ok {
			// Absent from the baseline entirely: a new or renamed
			// benchmark, which must not wedge CI.
			continue
		}
		// A benchmark present on both sides but with a zero or missing
		// metric is a broken record, not a rename: comparing would divide
		// by zero or silently pass the gate, so warn loudly and skip. If
		// every common benchmark is skipped this way, the compared == 0
		// error below fails the gate.
		was, ok := bb.Metrics[metric]
		if !ok || was <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s: baseline %s has zero or missing %s (%g) — cannot gate this benchmark\n",
				b.Name, baselinePath, metric, was)
			skipped++
			continue
		}
		now, ok := b.Metrics[metric]
		if !ok || now <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s: current record has zero or missing %s (%g) against baseline %.0f — cannot gate this benchmark\n",
				b.Name, metric, now, was)
			skipped++
			continue
		}
		compared++
		drop := (was - now) / was
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %s %12.0f -> %12.0f (%+.1f%%)\n",
			b.Name, metric, was, now, -drop*100)
		if drop > maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s fell %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					b.Name, metric, drop*100, was, now, maxRegress*100))
		}
	}
	if compared == 0 {
		return fmt.Errorf("benchjson: no benchmark in common with %s carries a usable %s (%d skipped with warnings)",
			baselinePath, metric, skipped)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %s regression vs %s:\n  %s",
			metric, baselinePath, strings.Join(regressions, "\n  "))
	}
	return nil
}

// parse reads benchmark output from r, echoing non-benchmark lines to
// echo, and returns the structured record.
func parse(r io.Reader, echo io.Writer) (*File, error) {
	f := &File{
		Schema:    schemaVersion,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		b, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines on stdin (pipe `go test -bench ...` output in)")
	}
	return f, nil
}

// parseLine parses one `BenchmarkName-8  N  v1 u1  v2 u2 ...` line.
// The -P GOMAXPROCS suffix is stripped from the name so records diff
// cleanly across machines.
func parseLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters,
		Metrics: make(map[string]float64)}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Bench{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Bench{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Bench{}, false
	}
	return b, true
}

// checkFile validates a committed record: parseable JSON of the right
// schema, at least one benchmark, every benchmark named with positive
// iterations and an ns/op measurement. It is the CI smoke gate for the
// committed trajectory records (BENCH_7.json, BENCH_8.json).
func checkFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if f.Schema != schemaVersion {
		return nil, fmt.Errorf("benchjson: %s: schema %d, want %d", path, f.Schema, schemaVersion)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: %s: no benchmarks", path)
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("benchjson: %s: benchmark %d has no name", path, i)
		}
		if b.Iterations <= 0 {
			return nil, fmt.Errorf("benchjson: %s: %s: iterations = %d", path, b.Name, b.Iterations)
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			return nil, fmt.Errorf("benchjson: %s: %s: missing ns/op", path, b.Name)
		}
	}
	return &f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
