package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseBenchOutput feeds a realistic `go test -bench -benchmem`
// transcript through the parser: benchmark lines become records with
// every (value, unit) pair kept, headers and the trailer echo through.
func TestParseBenchOutput(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: pmemaccel",
		"BenchmarkSimulatorSpeed-8                1        60707156 ns/op         59404232 sim_cycles/s        35400960 B/op     121657 allocs/op",
		"BenchmarkSimulatorSpeedMetrics-8         1        61234567 ns/op         58900000 sim_cycles/s        35500000 B/op     121900 allocs/op",
		"PASS",
		"ok      pmemaccel       1.234s",
	}, "\n")
	var echo bytes.Buffer
	f, err := parse(strings.NewReader(in), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	b := f.Benchmarks[0]
	if b.Name != "SimulatorSpeed" {
		t.Errorf("name = %q, want GOMAXPROCS suffix and Benchmark prefix stripped", b.Name)
	}
	if b.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", b.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 60707156, "sim_cycles/s": 59404232,
		"B/op": 35400960, "allocs/op": 121657,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metrics[%q] = %v, want %v", unit, got, want)
		}
	}
	for _, line := range []string{"goos: linux", "PASS", "ok      pmemaccel"} {
		if !strings.Contains(echo.String(), line) {
			t.Errorf("non-benchmark line %q not echoed", line)
		}
	}
}

// TestParseRejectsEmptyInput: piping in a run with no benchmark lines
// (wrong -bench pattern) must fail loudly, not write an empty record.
func TestParseRejectsEmptyInput(t *testing.T) {
	_, err := parse(strings.NewReader("PASS\nok pmemaccel 0.1s\n"), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("err = %v, want a no-benchmarks error", err)
	}
}

// TestParseLineMalformed covers the shapes that must not parse as
// benchmarks: odd value/unit pairing, non-numeric counts, and lines
// without an ns/op measurement.
func TestParseLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8 1 100 ns/op extra",             // odd pair
		"BenchmarkX-8 zero 100 ns/op",                // bad iteration count
		"BenchmarkX-8 1 100 sim_cycles/s 5 B/op",     // no ns/op
		"Benchmark output: BenchmarkX-8 1 100 x y z", // prose mentioning a benchmark
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

// TestCheckFile round-trips a record through the validator and checks
// the validator rejects the failure modes CI guards against.
func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := File{Schema: schemaVersion, Benchmarks: []Bench{
		{Name: "SimulatorSpeed", Iterations: 1, Metrics: map[string]float64{"ns/op": 1e8}},
	}}
	if _, err := checkFile(write("good.json", good)); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	for name, bad := range map[string]File{
		"schema.json": {Schema: schemaVersion + 1, Benchmarks: good.Benchmarks},
		"empty.json":  {Schema: schemaVersion},
		"noname.json": {Schema: schemaVersion, Benchmarks: []Bench{
			{Iterations: 1, Metrics: map[string]float64{"ns/op": 1}}}},
		"nonsop.json": {Schema: schemaVersion, Benchmarks: []Bench{
			{Name: "X", Iterations: 1, Metrics: map[string]float64{"B/op": 1}}}},
	} {
		if _, err := checkFile(write(name, bad)); err == nil {
			t.Errorf("%s: invalid record accepted", name)
		}
	}
	if _, err := checkFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestGate pins the regression gate: sim_cycles/s may drop up to the
// tolerance against the baseline, a larger drop fails and names the
// benchmark, speedups always pass, and disjoint benchmark sets error
// rather than silently gating nothing.
func TestGate(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, cyclesPerSec ...float64) string {
		f := File{Schema: schemaVersion}
		names := []string{"SimulatorSpeed", "SimulatorSpeedMetrics"}
		for i, c := range cyclesPerSec {
			f.Benchmarks = append(f.Benchmarks, Bench{
				Name: names[i], Iterations: 1,
				Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": c},
			})
		}
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := mk("base.json", 100e6, 50e6)
	cur := &File{Schema: schemaVersion, Benchmarks: []Bench{
		{Name: "SimulatorSpeed", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 95e6}},
		{Name: "SimulatorSpeedMetrics", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 60e6}},
	}}
	if err := gate(cur, baseline, 0.10); err != nil {
		t.Errorf("5%% slowdown within 10%% tolerance rejected: %v", err)
	}
	cur.Benchmarks[0].Metrics["sim_cycles/s"] = 80e6
	err := gate(cur, baseline, 0.10)
	if err == nil || !strings.Contains(err.Error(), "SimulatorSpeed") {
		t.Errorf("20%% slowdown passed the 10%% gate: %v", err)
	}
	disjoint := &File{Schema: schemaVersion, Benchmarks: []Bench{
		{Name: "Elsewhere", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 1}},
	}}
	if err := gate(disjoint, baseline, 0.10); err == nil {
		t.Error("gate with no benchmarks in common reported success")
	}
	if err := gate(cur, filepath.Join(dir, "missing.json"), 0.10); err == nil {
		t.Error("gate with unreadable baseline reported success")
	}
}

// TestGateZeroOrMissingBaselineMetric pins the broken-record paths: a
// benchmark present on both sides whose baseline (or current)
// sim_cycles/s is zero or absent is skipped with a warning rather than
// dividing by zero or silently passing — and when every common benchmark
// is broken that way, the gate fails instead of reporting success.
func TestGateZeroOrMissingBaselineMetric(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := write("base.json", File{Schema: schemaVersion, Benchmarks: []Bench{
		{Name: "Zero", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 0}},
		{Name: "Missing", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1}},
		{Name: "Good", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 100e6}},
	}})
	cur := &File{Schema: schemaVersion, Benchmarks: []Bench{
		{Name: "Zero", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 90e6}},
		{Name: "Missing", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 90e6}},
		{Name: "Good", Iterations: 1,
			Metrics: map[string]float64{"ns/op": 1, "sim_cycles/s": 99e6}},
	}}
	// Zero and Missing are skipped (no division by zero, no phantom
	// regression), Good compares and passes.
	if err := gate(cur, baseline, 0.10); err != nil {
		t.Errorf("gate with one usable benchmark failed: %v", err)
	}
	// A zero metric on the current side is likewise skipped, not passed.
	cur.Benchmarks[2].Metrics["sim_cycles/s"] = 0
	if err := gate(cur, baseline, 0.10); err == nil {
		t.Error("gate with every common benchmark broken reported success")
	}
}
