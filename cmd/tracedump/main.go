// Command tracedump prints a workload's memory-reference trace — and,
// with -mech sp, the trace as the software-logging rewriter transforms it
// — for inspection and debugging. With -trace it instead reads a Chrome
// trace_event JSON written by pmemsim -trace-out, filtering by event
// kind and summarizing per-kind duration percentiles.
//
// Usage:
//
//	tracedump -bench rbtree -n 60
//	tracedump -bench sps -mech sp -n 80      # see the injected logging
//	tracedump -bench btree -stats            # composition summary only
//	tracedump -trace run.json -summary       # per-kind duration percentiles
//	tracedump -trace run.json -kind tc-drain -n 20
//	tracedump -trace run.json -flow          # list flight-recorder chains
//	tracedump -trace run.json -tx 17         # one tx's stage waterfall
//	tracedump -trace run.json -check-flows   # CI gate: flows well-formed, no drops
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "rbtree", "benchmark")
		mechName  = flag.String("mech", "", "rewrite view: sp (empty = raw trace)")
		n         = flag.Int("n", 50, "records to print")
		skip      = flag.Int("skip", 0, "records to skip first")
		initial   = flag.Int("initial", 500, "prepopulated elements")
		ops       = flag.Int("ops", 20, "measured operations")
		seed      = flag.Uint64("seed", 1, "random seed")
		statsOnly = flag.Bool("stats", false, "print composition summary only")

		traceFile  = flag.String("trace", "", "read a Chrome trace JSON (pmemsim -trace-out) instead of generating a workload trace")
		kind       = flag.String("kind", "", "with -trace: keep only events of this kind (e.g. tx, tc-drain, wpq-drain)")
		summary    = flag.Bool("summary", false, "with -trace: print per-kind counts and duration percentiles")
		txID       = flag.Int64("tx", -1, "with -trace: print one transaction's flight-recorded span chain as an indented waterfall (matches the tx id on any core)")
		flows      = flag.Bool("flow", false, "with -trace: list every flight-recorder flow chain (one line per sampled transaction)")
		checkFlows = flag.Bool("check-flows", false, "with -trace: validate flow-event well-formedness and zero per-kind ring drops; non-zero exit on violation")
	)
	flag.Parse()

	if *traceFile != "" {
		if err := dumpChromeTrace(*traceFile, *kind, *summary, *txID, *flows, *checkFlows, *n, *skip); err != nil {
			fatal(err)
		}
		return
	}
	if *kind != "" || *summary || *txID >= 0 || *flows || *checkFlows {
		fatal(fmt.Errorf("-kind, -summary, -tx, -flow and -check-flows need -trace <file>"))
	}

	b, err := workload.ParseBenchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	p := workload.DefaultParams(b, 0, 1, *seed, *initial, *ops)
	out, err := workload.Generate(b, p)
	if err != nil {
		fatal(err)
	}

	if *statsOnly {
		s := trace.Summarize(out.Trace)
		fmt.Printf("%s: %d records, %d instructions\n", b, s.Records, s.Instructions)
		fmt.Printf("  loads:  %d (%d persistent)\n", s.Loads, s.PersistentLoads)
		fmt.Printf("  stores: %d (%d persistent)\n", s.Stores, s.PersistentStores)
		fmt.Printf("  transactions: %d (max %d persistent stores in one)\n",
			s.Transactions, s.MaxTxStores)
		return
	}

	var rd trace.Reader = trace.NewReader(out.Trace)
	if *mechName == "sp" {
		// Build a minimal environment just to drive the rewriter.
		k := sim.NewKernel()
		backend, berr := memctrl.NewBackend(k, memctrl.Topology{},
			memctrl.Config{Name: "NVM"}, memctrl.Config{Name: "DRAM"})
		if berr != nil {
			fatal(berr)
		}
		env := &mechanism.Env{
			K: k, Cores: 1,
			Mem:     backend,
			Live:    memimage.New(),
			Durable: memimage.New(),
			TC:      txcache.Config{},
		}
		rd = mechanism.New(mechanism.SP, env).Rewrite(0, rd)
	} else if *mechName != "" {
		fatal(fmt.Errorf("only -mech sp rewrites the trace"))
	}

	for i := 0; i < *skip; i++ {
		if _, ok := rd.Next(); !ok {
			return
		}
	}
	for i := 0; i < *n; i++ {
		rec, ok := rd.Next()
		if !ok {
			break
		}
		fmt.Printf("%5d  %s\n", *skip+i, format(rec))
	}
}

func format(r trace.Record) string {
	switch r.Kind {
	case trace.KindCompute:
		return fmt.Sprintf("compute  x%d", r.N)
	case trace.KindLoad:
		dep := ""
		if r.Dep {
			dep = " (dep)"
		}
		return fmt.Sprintf("load     %#x [%s]%s", r.Addr, memaddr.Classify(r.Addr), dep)
	case trace.KindStore:
		return fmt.Sprintf("store    %#x [%s] <- %d", r.Addr, memaddr.Classify(r.Addr), r.Value)
	case trace.KindTxBegin:
		return fmt.Sprintf("tx_begin %d", r.TxID)
	case trace.KindTxEnd:
		return fmt.Sprintf("tx_end   %d", r.TxID)
	case trace.KindCLWB:
		return fmt.Sprintf("clwb     %#x", memaddr.LineAddr(r.Addr))
	case trace.KindCLFlush:
		return fmt.Sprintf("clflush  %#x", memaddr.LineAddr(r.Addr))
	case trace.KindSFence:
		return "sfence"
	default:
		return fmt.Sprintf("%+v", r)
	}
}

// dumpChromeTrace reads an exported event trace back and either lists
// its events (filtered by kind, honoring -skip/-n) or renders the
// per-kind summary: spans aggregate into duration histograms —
// count/mean/p50/p90/p99/max rows via the metrics package — and
// instants into counters.
func dumpChromeTrace(path, kind string, summary bool, txID int64, flows, checkFlows bool, n, skip int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := obs.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	if checkFlows {
		return checkFlowHealth(path, data)
	}
	if txID >= 0 || flows {
		return dumpFlows(path, data, txID, n, skip)
	}
	events := data.Events
	if kind != "" {
		kept := events[:0]
		for _, e := range events {
			if e.Name == kind {
				kept = append(kept, e)
			}
		}
		events = kept
		if len(events) == 0 {
			return fmt.Errorf("%s has no %q events", path, kind)
		}
	}

	if summary {
		reg := metrics.NewRegistry()
		for _, e := range events {
			if e.Span() {
				reg.Histogram(e.Name).Observe(e.Dur)
			} else {
				reg.Counter(e.Name).Inc()
			}
		}
		fmt.Printf("%s: %d events", path, len(events))
		if d := data.OtherData["dropped"]; d != "" && d != "0" {
			fmt.Printf(" (ring dropped %s — this is a suffix of the run)", d)
		}
		fmt.Printf("\nspan durations in cycles; instants listed as counters\n\n")
		fmt.Print(reg.Snapshot().Table())
		return nil
	}

	for i := skip; i < len(events) && i < skip+n; i++ {
		e := events[i]
		if e.Span() {
			fmt.Printf("%5d  %12d +%-8d %-14s pid=%d tid=%d id=%d arg=%d\n",
				i, e.Ts, e.Dur, e.Name, e.Pid, e.Tid, e.Args["id"], e.Args["arg"])
		} else {
			fmt.Printf("%5d  %12d %-9s %-14s pid=%d tid=%d id=%d arg=%d\n",
				i, e.Ts, "instant", e.Name, e.Pid, e.Tid, e.Args["id"], e.Args["arg"])
		}
	}
	return nil
}

// stageSpans groups the flight recorder's stage spans by flow id, in
// first-appearance order. Spans within a chain are kept in file order,
// which WriteChromeTrace emits sorted by start time.
func stageSpans(data *obs.ChromeTraceData) (map[uint64][]obs.ChromeEvent, []uint64) {
	chains := map[uint64][]obs.ChromeEvent{}
	var order []uint64
	for _, e := range data.Events {
		if !e.Span() || !strings.HasPrefix(e.Name, "stage:") {
			continue
		}
		id, ok := e.Args["id"]
		if !ok {
			continue
		}
		if _, seen := chains[id]; !seen {
			order = append(order, id)
		}
		chains[id] = append(chains[id], e)
	}
	return chains, order
}

// dumpFlows renders the flight recorder's stitched transaction chains.
// With tx >= 0 it prints each matching transaction (the tx id on any
// core) as an indented waterfall; otherwise it lists one summary line
// per sampled transaction, honoring -skip/-n. Flow ids encode
// (core<<40 | tx id).
func dumpFlows(path string, data *obs.ChromeTraceData, tx int64, n, skip int) error {
	chains, order := stageSpans(data)
	if len(order) == 0 {
		return fmt.Errorf("%s has no flight-recorder stage spans (run pmemsim with -tx-sample)", path)
	}
	const txMask = uint64(1)<<40 - 1
	matched := 0
	for _, id := range order {
		core, txID := id>>40, id&txMask
		if tx >= 0 && txID != uint64(tx) {
			continue
		}
		matched++
		if tx < 0 && (matched <= skip || matched > skip+n) {
			continue
		}
		ch := chains[id]
		first, last := ch[0], ch[len(ch)-1]
		e2e := last.Ts + last.Dur - first.Ts
		if tx < 0 {
			fmt.Printf("core %2d tx %6d  flow %12d  %d stages  %8d cy  [%d..%d]\n",
				core, txID, id, len(ch), e2e, first.Ts, last.Ts+last.Dur)
			continue
		}
		fmt.Printf("core %d tx %d (flow %d): %d stages, %d cycles end-to-end\n",
			core, txID, id, len(ch), e2e)
		for i, e := range ch {
			fmt.Printf("%s%-14s %10d .. %-10d (%d cy)\n",
				strings.Repeat("  ", i+1), strings.TrimPrefix(e.Name, "stage:"),
				e.Ts, e.Ts+e.Dur, e.Dur)
		}
	}
	if matched == 0 {
		return fmt.Errorf("%s has no flight-recorded transaction with tx id %d", path, tx)
	}
	return nil
}

// checkFlowHealth is the CI smoke gate: flow events must be well-formed
// (obs.ValidateFlows) and the ring must not have dropped events of any
// kind — a dropped stage span would leave a dangling flow arrow.
func checkFlowHealth(path string, data *obs.ChromeTraceData) error {
	if err := obs.ValidateFlows(data); err != nil {
		return err
	}
	flows := 0
	for _, e := range data.Events {
		if e.Ph == "s" {
			flows++
		}
	}
	var drops []string
	for k, v := range data.OtherData {
		if strings.HasPrefix(k, "dropped_") && v != "0" {
			drops = append(drops, k+"="+v)
		}
	}
	sort.Strings(drops)
	if len(drops) > 0 {
		return fmt.Errorf("%s: ring dropped events (%s); the trace is a suffix of the run", path, strings.Join(drops, " "))
	}
	fmt.Printf("%s: %d flow chains well-formed, zero per-kind drops\n", path, flows)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
