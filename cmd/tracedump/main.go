// Command tracedump prints a workload's memory-reference trace — and,
// with -mech sp, the trace as the software-logging rewriter transforms it
// — for inspection and debugging. With -trace it instead reads a Chrome
// trace_event JSON written by pmemsim -trace-out, filtering by event
// kind and summarizing per-kind duration percentiles.
//
// Usage:
//
//	tracedump -bench rbtree -n 60
//	tracedump -bench sps -mech sp -n 80      # see the injected logging
//	tracedump -bench btree -stats            # composition summary only
//	tracedump -trace run.json -summary       # per-kind duration percentiles
//	tracedump -trace run.json -kind tc-drain -n 20
package main

import (
	"flag"
	"fmt"
	"os"

	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/memimage"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/sim"
	"pmemaccel/internal/trace"
	"pmemaccel/internal/txcache"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "rbtree", "benchmark")
		mechName  = flag.String("mech", "", "rewrite view: sp (empty = raw trace)")
		n         = flag.Int("n", 50, "records to print")
		skip      = flag.Int("skip", 0, "records to skip first")
		initial   = flag.Int("initial", 500, "prepopulated elements")
		ops       = flag.Int("ops", 20, "measured operations")
		seed      = flag.Uint64("seed", 1, "random seed")
		statsOnly = flag.Bool("stats", false, "print composition summary only")

		traceFile = flag.String("trace", "", "read a Chrome trace JSON (pmemsim -trace-out) instead of generating a workload trace")
		kind      = flag.String("kind", "", "with -trace: keep only events of this kind (e.g. tx, tc-drain, wpq-drain)")
		summary   = flag.Bool("summary", false, "with -trace: print per-kind counts and duration percentiles")
	)
	flag.Parse()

	if *traceFile != "" {
		if err := dumpChromeTrace(*traceFile, *kind, *summary, *n, *skip); err != nil {
			fatal(err)
		}
		return
	}
	if *kind != "" || *summary {
		fatal(fmt.Errorf("-kind and -summary need -trace <file>"))
	}

	b, err := workload.ParseBenchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	p := workload.DefaultParams(b, 0, 1, *seed, *initial, *ops)
	out, err := workload.Generate(b, p)
	if err != nil {
		fatal(err)
	}

	if *statsOnly {
		s := trace.Summarize(out.Trace)
		fmt.Printf("%s: %d records, %d instructions\n", b, s.Records, s.Instructions)
		fmt.Printf("  loads:  %d (%d persistent)\n", s.Loads, s.PersistentLoads)
		fmt.Printf("  stores: %d (%d persistent)\n", s.Stores, s.PersistentStores)
		fmt.Printf("  transactions: %d (max %d persistent stores in one)\n",
			s.Transactions, s.MaxTxStores)
		return
	}

	var rd trace.Reader = trace.NewReader(out.Trace)
	if *mechName == "sp" {
		// Build a minimal environment just to drive the rewriter.
		k := sim.NewKernel()
		backend, berr := memctrl.NewBackend(k, memctrl.Topology{},
			memctrl.Config{Name: "NVM"}, memctrl.Config{Name: "DRAM"})
		if berr != nil {
			fatal(berr)
		}
		env := &mechanism.Env{
			K: k, Cores: 1,
			Mem:     backend,
			Live:    memimage.New(),
			Durable: memimage.New(),
			TC:      txcache.Config{},
		}
		rd = mechanism.New(mechanism.SP, env).Rewrite(0, rd)
	} else if *mechName != "" {
		fatal(fmt.Errorf("only -mech sp rewrites the trace"))
	}

	for i := 0; i < *skip; i++ {
		if _, ok := rd.Next(); !ok {
			return
		}
	}
	for i := 0; i < *n; i++ {
		rec, ok := rd.Next()
		if !ok {
			break
		}
		fmt.Printf("%5d  %s\n", *skip+i, format(rec))
	}
}

func format(r trace.Record) string {
	switch r.Kind {
	case trace.KindCompute:
		return fmt.Sprintf("compute  x%d", r.N)
	case trace.KindLoad:
		dep := ""
		if r.Dep {
			dep = " (dep)"
		}
		return fmt.Sprintf("load     %#x [%s]%s", r.Addr, memaddr.Classify(r.Addr), dep)
	case trace.KindStore:
		return fmt.Sprintf("store    %#x [%s] <- %d", r.Addr, memaddr.Classify(r.Addr), r.Value)
	case trace.KindTxBegin:
		return fmt.Sprintf("tx_begin %d", r.TxID)
	case trace.KindTxEnd:
		return fmt.Sprintf("tx_end   %d", r.TxID)
	case trace.KindCLWB:
		return fmt.Sprintf("clwb     %#x", memaddr.LineAddr(r.Addr))
	case trace.KindCLFlush:
		return fmt.Sprintf("clflush  %#x", memaddr.LineAddr(r.Addr))
	case trace.KindSFence:
		return "sfence"
	default:
		return fmt.Sprintf("%+v", r)
	}
}

// dumpChromeTrace reads an exported event trace back and either lists
// its events (filtered by kind, honoring -skip/-n) or renders the
// per-kind summary: spans aggregate into duration histograms —
// count/mean/p50/p90/p99/max rows via the metrics package — and
// instants into counters.
func dumpChromeTrace(path, kind string, summary bool, n, skip int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := obs.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	events := data.Events
	if kind != "" {
		kept := events[:0]
		for _, e := range events {
			if e.Name == kind {
				kept = append(kept, e)
			}
		}
		events = kept
		if len(events) == 0 {
			return fmt.Errorf("%s has no %q events", path, kind)
		}
	}

	if summary {
		reg := metrics.NewRegistry()
		for _, e := range events {
			if e.Span() {
				reg.Histogram(e.Name).Observe(e.Dur)
			} else {
				reg.Counter(e.Name).Inc()
			}
		}
		fmt.Printf("%s: %d events", path, len(events))
		if d := data.OtherData["dropped"]; d != "" && d != "0" {
			fmt.Printf(" (ring dropped %s — this is a suffix of the run)", d)
		}
		fmt.Printf("\nspan durations in cycles; instants listed as counters\n\n")
		fmt.Print(reg.Snapshot().Table())
		return nil
	}

	for i := skip; i < len(events) && i < skip+n; i++ {
		e := events[i]
		if e.Span() {
			fmt.Printf("%5d  %12d +%-8d %-14s pid=%d tid=%d id=%d arg=%d\n",
				i, e.Ts, e.Dur, e.Name, e.Pid, e.Tid, e.Args["id"], e.Args["arg"])
		} else {
			fmt.Printf("%5d  %12d %-9s %-14s pid=%d tid=%d id=%d arg=%d\n",
				i, e.Ts, "instant", e.Name, e.Pid, e.Tid, e.Args["id"], e.Args["arg"])
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
