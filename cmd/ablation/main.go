// Command ablation sweeps the accelerator's design parameters: the
// transaction-cache capacity, the overflow high-water mark, and the
// core's memory-level-parallelism window.
//
// Usage:
//
//	ablation                      # all sweeps on default benchmarks
//	ablation -sweep tcsize -bench sps
//	ablation -sweep highwater -bench btree
//	ablation -sweep mlp -bench rbtree -mech optimal
package main

import (
	"flag"
	"fmt"
	"os"

	"pmemaccel"
	"pmemaccel/internal/ablation"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		sweepName = flag.String("sweep", "", "tcsize, highwater, mlp, nvmtech, or channels (empty = all)")
		benchName = flag.String("bench", "", "benchmark (default depends on sweep)")
		mechName  = flag.String("mech", "tcache", "mechanism (mlp sweep only)")
		ops       = flag.Int("ops", 0, "operations per core (0 = sweep default)")
		cores     = flag.Int("cores", 0, "core count, a power of two up to 64 (0 = sweep default)")
		jobs      = flag.Int("j", 0, "concurrent sweep points (0 = all cores); tables are identical for every -j")
	)
	flag.Parse()

	if *ops < 0 {
		fatal(fmt.Errorf("-ops %d is negative; pass a positive value or omit the flag for the default", *ops))
	}
	if err := pmemaccel.ValidateCLICores(*cores); err != nil {
		fatal(fmt.Errorf("-cores: %w", err))
	}
	mech, err := mechanism.ParseKind(*mechName)
	if err != nil {
		fatal(err)
	}
	pick := func(def workload.Benchmark) workload.Benchmark {
		if *benchName == "" {
			return def
		}
		b, err := workload.ParseBenchmark(*benchName)
		if err != nil {
			fatal(err)
		}
		return b
	}
	base := func(b workload.Benchmark, m pmemaccel.Kind) pmemaccel.Config {
		cfg := ablation.QuickBase(b, m)
		if *ops > 0 {
			cfg.Ops = *ops
		}
		if *cores > 0 {
			cfg.Cores = *cores
		}
		return cfg
	}

	run := func(name string) {
		var s *ablation.Sweep
		var err error
		switch name {
		case "tcsize":
			s, err = ablation.TCSize(base(pick(workload.SPS), pmemaccel.TCache), ablation.DefaultTCSizes, *jobs)
		case "highwater":
			s, err = ablation.HighWater(base(pick(workload.BTree), pmemaccel.TCache), ablation.DefaultHighWaters, *jobs)
		case "mlp":
			s, err = ablation.MLP(base(pick(workload.RBTree), mech), ablation.DefaultMLPs, *jobs)
		case "nvmtech":
			s, err = ablation.NVMTechnology(base(pick(workload.SPS), mech), pmemaccel.NVMTechs, *jobs)
		case "channels":
			s, err = ablation.Channels(base(pick(workload.SPS), mech), ablation.DefaultChannelCounts, *jobs)
		default:
			fatal(fmt.Errorf("unknown sweep %q", name))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(s.Table())
	}

	if *sweepName != "" {
		run(*sweepName)
		return
	}
	for _, name := range []string{"tcsize", "highwater", "mlp", "nvmtech", "channels"} {
		run(name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ablation:", err)
	os.Exit(1)
}
