// Command crashtest fuzzes crash points: it runs the chosen workload
// under the chosen mechanism, pulls the plug at random cycles, recovers,
// and checks atomicity and structural integrity against the
// committed-transaction oracle.
//
// Usage:
//
//	crashtest -bench rbtree -mech tcache -trials 25
//	crashtest -mech optimal        # watch the baseline corrupt itself
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmemaccel"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/recovery"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "rbtree", "benchmark: graph, rbtree, sps, btree, hashtable")
		mechName  = flag.String("mech", "tcache", "mechanism: sp, tcache, kiln, optimal")
		trials    = flag.Int("trials", 20, "number of crash points")
		ops       = flag.Int("ops", 800, "operations per core")
		initial   = flag.Int("initial", 2000, "prepopulated elements per core")
		scale     = flag.Int("scale", 128, "cache scale divisor")
		seed      = flag.Uint64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "print every trial")
		jobs      = flag.Int("j", 0, "concurrent trials (0 = all cores); trial results are identical for every -j")
	)
	flag.Parse()

	b, err := workload.ParseBenchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	m, err := mechanism.ParseKind(*mechName)
	if err != nil {
		fatal(err)
	}
	cfg := pmemaccel.DefaultConfig(b, m)
	cfg.Ops = *ops
	cfg.InitialSize = *initial
	cfg.Scale = *scale
	cfg.Seed = *seed

	start := time.Now()
	horizon, err := recovery.Horizon(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload horizon: %d cycles; injecting %d crashes (%v/%v)\n",
		horizon, *trials, b, m)

	results, violations, err := recovery.SweepParallel(cfg, *trials, horizon, *seed+1, *jobs)
	if err != nil {
		fatal(err)
	}
	for _, tr := range results {
		if *verbose || !tr.OK() {
			fmt.Println(" ", tr)
		}
	}
	fmt.Printf("\n%d/%d trials consistent (%v elapsed)\n",
		len(results)-violations, len(results), time.Since(start).Round(time.Millisecond))
	if violations > 0 {
		if m == pmemaccel.Optimal {
			fmt.Println("violations are EXPECTED for the no-persistence baseline — " +
				"this is the failure mode the accelerator prevents")
			return
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashtest:", err)
	os.Exit(1)
}
