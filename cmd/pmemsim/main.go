// Command pmemsim runs one (benchmark, mechanism) simulation and prints
// the measured metrics.
//
// Usage:
//
//	pmemsim -bench rbtree -mech tcache [-ops 12000] [-scale 64] \
//	        [-cores 4] [-seed 1] [-tc 4096] [-paper] [-v] \
//	        [-stream] [-paper-scale] \
//	        [-trace-out trace.json] [-metrics-out metrics.csv] \
//	        [-sample-every 1000] [-tx-sample N]
//
// -stream switches workload generation to the pull-based streaming
// pipeline (byte-identical results, O(1) memory in the op count);
// -paper-scale additionally calibrates the op count to the paper's
// 1.7 G-instruction evaluation window and implies -stream.
//
// -trace-out writes a Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev); -metrics-out writes a
// time-series CSV sampled every -sample-every cycles. Either flag turns
// the observability layer on, as does -tx-sample N, which additionally
// flight-records every Nth transaction per core: each sampled
// transaction's lifecycle is broken into an exact stage waterfall
// (execute, commit-wait, tc-drain, wpq-wait, nvm-write), printed as an
// aggregate and exported into the trace as stage spans stitched by
// flow events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pmemaccel"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/obs"
	"pmemaccel/internal/prof"
	"pmemaccel/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "rbtree", "benchmark: graph, rbtree, sps, btree, hashtable, bank, bankshared")
		mechName  = flag.String("mech", "tcache", "mechanism: sp, tcache, kiln, optimal")
		ops       = flag.Int("ops", 0, "operations per core (0 = default)")
		initial   = flag.Int("initial", 0, "prepopulated elements per core (0 = auto-size to the LLC)")
		scale     = flag.Int("scale", 0, "cache scale divisor, power of two (0 = default)")
		cores     = flag.Int("cores", 0, "core count, a power of two up to 64 (0 = 4)")
		seed      = flag.Uint64("seed", 1, "random seed")
		tcBytes   = flag.Int("tc", 0, "transaction cache bytes per core (0 = 4096)")

		nvmChans   = flag.Int("nvm-channels", 0, "address-interleaved NVM channels (0 = 1)")
		dramChans  = flag.Int("dram-channels", 0, "address-interleaved DRAM channels (0 = 1)")
		interleave = flag.Int("interleave", 0, "channel interleave granularity in bytes, power of two (0 = 4096)")
		paper      = flag.Bool("paper", false, "use the full Table 2 machine (Scale 1; slow)")
		contention = flag.Float64("contention", 0, "shared-op fraction for -bench bankshared, in (0,1] (0 = workload default 0.5)")
		sharedAcct = flag.Int("shared-accounts", 0, "shared array length in words for -bench bankshared (0 = 64)")
		stream     = flag.Bool("stream", false, "stream workload generation (O(1) memory in ops; byte-identical results)")
		paperScale = flag.Bool("paper-scale", false, "size ops to the paper's 1.7G-instruction window (implies -stream; slow)")
		verbose    = flag.Bool("v", false, "print per-core and subsystem detail")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")

		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON to this file (enables observability)")
		metricsOut  = flag.String("metrics-out", "", "write a sampled time-series CSV to this file (enables observability)")
		sampleEvery = flag.Uint64("sample-every", 1000, "sampling period in cycles for -metrics-out")
		metrics     = flag.Bool("metrics", false, "enable the run-wide metrics registry and print its percentile table")
		txSample    = flag.Uint64("tx-sample", 0, "flight-record every Nth transaction per core (1 = all, 0 = off; enables observability)")
		noFF        = flag.Bool("no-ff", false, "disable quiescence fast-forward (step every cycle; same results, slower)")
		parKernel   = flag.Int("par-kernel", 0, "tick cores on N worker goroutines between quiescence barriers (0 = serial kernel; results are byte-identical either way)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof format) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// The "0 selects the default" int flags are guarded with > 0 below, so
	// a negative value would silently run the default configuration;
	// reject them explicitly. (-tx-sample and -sample-every are unsigned:
	// the flag package itself rejects negatives at parse time.)
	for _, f := range []struct {
		name string
		val  int
	}{
		{"ops", *ops}, {"initial", *initial}, {"scale", *scale},
		{"cores", *cores}, {"tc", *tcBytes},
		{"nvm-channels", *nvmChans}, {"dram-channels", *dramChans},
		{"interleave", *interleave}, {"par-kernel", *parKernel},
		{"shared-accounts", *sharedAcct},
	} {
		if f.val < 0 {
			fatal(fmt.Errorf("-%s %d is negative; pass a positive value or omit the flag for the default", f.name, f.val))
		}
	}
	if err := checkCoresFlag(*cores); err != nil {
		fatal(err)
	}
	if *contention < 0 || *contention > 1 {
		fatal(fmt.Errorf("-contention %g must be in [0, 1] (0 selects the workload default)", *contention))
	}

	if *cpuprofile != "" {
		stop, err := prof.StartCPU(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *memprofile != "" {
		defer func() {
			if err := prof.WriteHeap(*memprofile); err != nil {
				fmt.Fprintln(os.Stderr, "pmemsim:", err)
			}
		}()
	}

	b, err := workload.ParseBenchmark(*benchName)
	if err != nil {
		fatal(err)
	}
	m, err := mechanism.ParseKind(*mechName)
	if err != nil {
		fatal(err)
	}
	cfg := pmemaccel.DefaultConfig(b, m)
	if *paper {
		cfg = pmemaccel.PaperConfig(b, m)
	}
	if *ops > 0 {
		cfg.Ops = *ops
	}
	if *initial > 0 {
		cfg.InitialSize = *initial
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *cores > 0 {
		cfg.Cores = *cores
	}
	if *tcBytes > 0 {
		cfg.TCBytes = *tcBytes
	}
	cfg.NVMChannels = *nvmChans
	cfg.DRAMChannels = *dramChans
	cfg.ChannelInterleaveBytes = *interleave
	cfg.ContentionPct = *contention
	cfg.SharedAccounts = *sharedAcct
	cfg.Seed = *seed
	cfg.NoFastForward = *noFF
	cfg.ParWorkers = *parKernel
	cfg.Streaming = *stream || *paperScale
	if *traceOut != "" || *metricsOut != "" || *txSample > 0 {
		cfg.Obs.Enabled = true
		if *metricsOut != "" {
			cfg.Obs.SampleEvery = *sampleEvery
		}
	}
	cfg.Obs.Metrics = *metrics
	cfg.Obs.TxSample = *txSample
	// Validate here, before the (possibly long) run, so a bad flag
	// combination fails with the specific complaint instead of deep in
	// construction.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *paperScale {
		cfg, err = cfg.PaperScale()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pmemsim: paper scale: %d ops/core, streaming generation, cycle bound %d\n",
			cfg.Ops, cfg.MaxCycles)
	}

	start := time.Now()
	sys, err := pmemaccel.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, sys.Probe.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pmemsim: wrote %s (%d events, %d dropped)\n",
			*traceOut, sys.Probe.Recorded(), sys.Probe.Dropped())
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, sys.Probe.WriteMetricsCSV); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pmemsim: wrote %s (%d samples)\n",
			*metricsOut, sys.Probe.SampleCount())
	}
	if *asJSON {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Println(res)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if *parKernel > 0 {
		hist := sys.Kernel.WaveWidthHist()
		inline, disp := sys.Kernel.WaveDispatchStats()
		fmt.Printf("par-kernel: %d waves inline, %d dispatched; width histogram:", inline, disp)
		for w, n := range hist {
			if n > 0 {
				fmt.Printf(" %d:%d", w, n)
			}
		}
		fmt.Println()
	}
	if res.Metrics != nil {
		fmt.Printf("\n%s", res.Metrics.Table())
	}
	if a := res.TxFlight; a != nil {
		fmt.Printf("\ntx flight: %d sampled, %d fallback, %d open; mean e2e %.1f cy\n",
			a.Sampled, a.Fallbacks, a.Open, a.MeanE2E())
		for i, name := range obs.TxStageNames {
			fmt.Printf("  %-12s %9.1f cy   critical in %d tx\n", name, a.MeanStage(i), a.CritCount[i])
		}
	}

	if *verbose {
		fmt.Printf("\nL1 miss %.2f%%  L2 miss %.2f%%  LLC miss %.2f%%\n",
			res.L1MissRate*100, res.L2MissRate*100, res.LLCMissRate*100)
		fmt.Printf("NVM : %+v\n", res.NVM)
		fmt.Printf("DRAM: %+v\n", res.DRAM)
		fmt.Printf("hier: %+v\n", sys.Hier.Stats())
		for c, st := range res.PerCore {
			fmt.Printf("core %d: inst=%d loads=%d stores=%d tx=%d stalls{load=%d sbuf=%d retry=%d fence=%d commit=%d}\n",
				c, st.Instructions, st.Loads, st.Stores, st.Transactions,
				st.StallLoad, st.StallStoreBuf, st.StallStoreRetry, st.StallFence, st.StallCommit)
		}
		for c, tc := range res.TC {
			fmt.Printf("tc %d: %+v\n", c, tc)
		}
		fmt.Printf("tc-full stall fraction: %.4f%%\n",
			res.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry })/
				float64(len(res.PerCore))*100)
		fmt.Printf("\n%s", res.AttributionTable())
	}
}

// checkCoresFlag applies the CLI core-count policy (power of two ≤ 64).
func checkCoresFlag(n int) error {
	if err := pmemaccel.ValidateCLICores(n); err != nil {
		return fmt.Errorf("-cores: %w", err)
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmemsim:", err)
	os.Exit(1)
}
