package pmemaccel

import (
	"fmt"

	"pmemaccel/internal/workload"
)

// PaperInstructionTarget is the paper's evaluation window: each §5
// experiment executes 1.7 G dynamic instructions (summed across the four
// cores). Paper-scale runs size their op count to land in this class.
const PaperInstructionTarget = 1_700_000_000

// paperScaleMaxCycles bounds a paper-scale run. The default 2 G-cycle
// bound assumes tens-of-millions-of-instruction windows; a 1.7 G-
// instruction window at sub-1 IPC under the slower mechanisms needs far
// more headroom.
const paperScaleMaxCycles = 64_000_000_000

// PaperScale returns the configuration resized to a
// PaperInstructionTarget-class instruction window: streaming generation
// switched on (a materialized trace of this length would not fit in
// memory — the point of the streaming pipeline), Ops set from a short
// per-benchmark calibration sample, and the cycle bound raised to match.
// Machine geometry (Scale, channels, caches) is left untouched, so
// paper-scale composes with any machine configuration.
func (c Config) PaperScale() (Config, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return cfg, err
	}
	cfg.Streaming = true

	// Calibrate instructions-per-op for every core's benchmark (they
	// differ under Mix); Ops is global, so size it from the mean cost.
	perOp := make(map[workload.Benchmark]float64)
	var sum float64
	for core := 0; core < cfg.Cores; core++ {
		b := cfg.benchmarkFor(core)
		cost, ok := perOp[b]
		if !ok {
			p := workload.DefaultParams(b, core, cfg.Cores, cfg.Seed, cfg.InitialSize, workload.CalibrationOps)
			cost, err = workload.InstructionsPerOp(b, p)
			if err != nil {
				return cfg, fmt.Errorf("pmemaccel: paper scale: %w", err)
			}
			perOp[b] = cost
		}
		sum += cost
	}
	mean := sum / float64(cfg.Cores)
	ops := int(PaperInstructionTarget / (mean * float64(cfg.Cores)))
	if ops < 1 {
		ops = 1
	}
	cfg.Ops = ops

	if cfg.MaxCycles < paperScaleMaxCycles {
		cfg.MaxCycles = paperScaleMaxCycles
	}
	return cfg, nil
}
