package pmemaccel

import (
	"encoding/json"
	"strings"
	"testing"

	"pmemaccel/internal/workload"
)

// TestMetricsRegistryEndToEnd runs a TCache workload with the metrics
// registry on and cross-checks the snapshot against independently
// collected stats: every histogram's exact count/sum must agree with
// the counter the components already keep, so the registry cannot
// silently miss observations at any probe point.
func TestMetricsRegistryEndToEnd(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Obs.Metrics = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics == nil {
		t.Fatal("Obs.Metrics set but System.Metrics is nil")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Obs.Metrics set but Result.Metrics is nil")
	}
	snap := res.Metrics

	// Every committed transaction contributes exactly one latency and
	// one commit-wait observation.
	txs := res.TotalTransactions()
	for _, name := range []string{"tx_latency_cycles", "commit_wait_cycles"} {
		h := snap.Histogram(name)
		if h == nil {
			t.Fatalf("snapshot missing histogram %q", name)
		}
		if h.Count != txs {
			t.Errorf("%s count = %d, want %d (one per transaction)", name, h.Count, txs)
		}
	}
	if h := snap.Histogram("tx_latency_cycles"); h != nil && h.P99 < h.P50 {
		t.Errorf("tx latency p99 %d < p50 %d", h.P99, h.P50)
	}

	// The TC drains every committed store toward NVM in bursts; entries
	// across all bursts must sum to the issued-write total.
	var issued uint64
	for _, tc := range res.TC {
		issued += tc.Issued
	}
	if h := snap.Histogram("tc_drain_burst_entries"); h == nil {
		t.Error("snapshot missing tc_drain_burst_entries")
	} else if h.Sum != issued {
		t.Errorf("tc_drain_burst_entries sum = %d, want issued = %d", h.Sum, issued)
	}

	// Side-probe hit latency: one observation per side-path hit.
	if h := snap.Histogram("side_probe_hit_latency_cycles"); h == nil {
		t.Error("snapshot missing side_probe_hit_latency_cycles")
	} else if h.Count != res.Hier.SidePathHits {
		t.Errorf("side_probe_hit_latency_cycles count = %d, want SidePathHits = %d",
			h.Count, res.Hier.SidePathHits)
	}

	// Per-line wear distribution: one observation per touched line,
	// summing to the NVM write total; max = hottest line.
	if h := snap.Histogram("nvm_line_writes"); h == nil {
		t.Error("snapshot missing nvm_line_writes")
	} else {
		if h.Count != uint64(res.NVMLinesTouched) {
			t.Errorf("nvm_line_writes count = %d, want lines touched = %d",
				h.Count, res.NVMLinesTouched)
		}
		if h.Max != res.NVMWearMax {
			t.Errorf("nvm_line_writes max = %d, want wear max = %d", h.Max, res.NVMWearMax)
		}
	}

	// WPQ drain windows on the (1x1 topology) NVM channel.
	if h := snap.Histogram("wpq_drain_cycles_nvm"); h == nil {
		t.Error("snapshot missing wpq_drain_cycles_nvm")
	} else if h.Count != res.NVM.DrainEntries {
		t.Errorf("wpq_drain_cycles_nvm count = %d, want drain entries = %d",
			h.Count, res.NVM.DrainEntries)
	}

	// Mirrored counters agree with the stats they mirror.
	if got := snap.Counter("nvm_writes"); got == nil || got.Value != res.NVM.Writes {
		t.Errorf("nvm_writes counter = %v, want %d", got, res.NVM.Writes)
	}
	if got := snap.Counter("transactions"); got == nil || got.Value != txs {
		t.Errorf("transactions counter = %v, want %d", got, txs)
	}

	// The snapshot serializes into the export and renders as a table.
	b, err := json.Marshal(res.Export())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"metrics"`) {
		t.Error("export JSON missing metrics block")
	}
	tbl := snap.Table()
	for _, want := range []string{"tx_latency_cycles", "p99", "nvm_writes"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("metrics table missing %q:\n%s", want, tbl)
		}
	}
}

// TestMetricsDeterminismUnchanged checks the zero-perturbation
// contract: enabling the registry changes no simulated outcome — cycle
// counts, instruction counts and NVM traffic match a metrics-free run
// exactly, and the JSON export differs only by the metrics/obs fields.
func TestMetricsDeterminismUnchanged(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			base, err := Run(tinyConfig(workload.Hashtable, m))
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyConfig(workload.Hashtable, m)
			cfg.Obs.Metrics = true
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if base.Cycles != got.Cycles {
				t.Errorf("cycles changed with metrics on: %d vs %d", base.Cycles, got.Cycles)
			}
			if base.TotalInstructions() != got.TotalInstructions() {
				t.Errorf("instructions changed with metrics on: %d vs %d",
					base.TotalInstructions(), got.TotalInstructions())
			}
			if base.NVM.Writes != got.NVM.Writes {
				t.Errorf("NVM writes changed with metrics on: %d vs %d",
					base.NVM.Writes, got.NVM.Writes)
			}
		})
	}
}

// TestMetricsDisabledByDefault checks the API side of the disabled
// path: no registry is allocated and the result carries no snapshot.
func TestMetricsDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics != nil {
		t.Fatal("registry allocated without Obs.Metrics")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatal("Result.Metrics set without Obs.Metrics")
	}
	if b, err := json.Marshal(res.Export()); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(b), `"metrics"`) {
		t.Error("export JSON carries a metrics block with metrics off")
	}
}

// TestObsRingAccounting checks the trace-ring accounting surfaced in
// the Result: with a deliberately tiny ring the run must report drops,
// and recorded == len(retained) + dropped.
func TestObsRingAccounting(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TraceCapacity = 64
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ObsEventsRecorded == 0 {
		t.Fatal("obs enabled but no events recorded")
	}
	if res.ObsEventsDropped == 0 {
		t.Errorf("64-entry ring over %d events reported zero drops", res.ObsEventsRecorded)
	}
	retained := uint64(len(sys.Probe.Events()))
	if res.ObsEventsRecorded != retained+res.ObsEventsDropped {
		t.Errorf("recorded %d != retained %d + dropped %d",
			res.ObsEventsRecorded, retained, res.ObsEventsDropped)
	}
}
