package pmemaccel

import (
	"encoding/json"

	"pmemaccel/internal/cpu"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
)

// Export is the JSON-friendly projection of a Result, for downstream
// tooling (plotting scripts, regression dashboards).
type Export struct {
	Benchmark string `json:"benchmark"`
	Mechanism string `json:"mechanism"`
	Cores     int    `json:"cores"`
	Scale     int    `json:"scale"`
	Seed      uint64 `json:"seed"`
	Ops       int    `json:"ops_per_core"`

	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	Transactions uint64  `json:"transactions"`
	IPC          float64 `json:"ipc"`
	Throughput   float64 `json:"tx_per_kcycle"`

	L1MissRate  float64 `json:"l1_miss_rate"`
	L2MissRate  float64 `json:"l2_miss_rate"`
	LLCMissRate float64 `json:"llc_miss_rate"`

	NVMReads  uint64 `json:"nvm_reads"`
	NVMWrites uint64 `json:"nvm_writes"`
	DRAMReads uint64 `json:"dram_reads"`

	// Effective channel counts (after defaulting) and the per-NVM-channel
	// write split, in interleave order — flat for a balanced interleave,
	// skewed when the working set camps on few interleave blocks.
	NVMChannels      int      `json:"nvm_channels"`
	DRAMChannels     int      `json:"dram_channels"`
	NVMChannelWrites []uint64 `json:"nvm_channel_writes,omitempty"`

	PloadMean float64 `json:"pload_mean_cycles"`
	PloadP50  uint64  `json:"pload_p50_cycles"`
	PloadP99  uint64  `json:"pload_p99_cycles"`

	NVMLinesTouched int     `json:"nvm_lines_touched"`
	NVMWearMax      uint64  `json:"nvm_wear_max"`
	NVMWearHotness  float64 `json:"nvm_wear_hotness"`

	TCFullStallPct   float64 `json:"tc_full_stall_pct"`
	DurableDiffCount int     `json:"durable_diff_count"`

	// Contention surface (contended benchmarks only; omitted when the
	// run had no aborts and no shared-line arbitration).
	TxAborts           uint64  `json:"tx_aborts,omitempty"`
	AbortRate          float64 `json:"abort_rate,omitempty"`
	WastedInstructions uint64  `json:"wasted_instructions,omitempty"`
	LineConflicts      uint64  `json:"line_conflicts,omitempty"`
	LineAcquires       uint64  `json:"line_acquires,omitempty"`

	// SkippedCycles is the kernel's quiescence fast-forward audit
	// counter: how many of Cycles were proven idle and bulk-applied
	// rather than stepped. Always 0 under -no-ff.
	SkippedCycles uint64 `json:"skipped_cycles"`

	// Attribution is the all-core cycle breakdown as percentages of the
	// performance window, keyed by cpu.BreakdownCategories.
	Attribution map[string]float64 `json:"cycle_attribution_pct"`

	// Metrics is the run-wide metrics snapshot — histogram percentiles,
	// counters, gauges. Present only when the run enabled
	// Config.Obs.Metrics.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`

	// Event-trace ring accounting (zero/absent when observability is
	// off): a nonzero dropped count flags a trace export that holds
	// only a suffix of the run.
	ObsEventsRecorded   uint64 `json:"obs_events_recorded,omitempty"`
	ObsEventsDropped    uint64 `json:"obs_events_dropped,omitempty"`
	ObsOpenSpansFlushed uint64 `json:"obs_open_spans_flushed,omitempty"`

	// TxFlight is the flight recorder's sampled-transaction aggregate
	// (per-stage cycle sums, critical-stage counts, end-to-end total).
	// Present only when the run enabled Config.Obs.TxSample.
	TxFlight *txflight.Aggregate `json:"tx_flight,omitempty"`
}

// Export builds the JSON projection.
func (r *Result) Export() Export {
	e := Export{
		Benchmark:    r.Config.Benchmark.String(),
		Mechanism:    r.Config.Mechanism.String(),
		Cores:        r.Config.Cores,
		Scale:        r.Config.Scale,
		Seed:         r.Config.Seed,
		Ops:          r.Config.Ops,
		Cycles:       r.Cycles,
		Instructions: r.TotalInstructions(),
		Transactions: r.TotalTransactions(),
		IPC:          r.IPC(),
		Throughput:   r.Throughput(),
		L1MissRate:   r.L1MissRate,
		L2MissRate:   r.L2MissRate,
		LLCMissRate:  r.LLCMissRate,
		NVMReads:     r.NVM.Reads,
		NVMWrites:    r.NVM.Writes,
		DRAMReads:    r.DRAM.Reads,
		NVMChannels:  len(r.PerNVMChannel),
		DRAMChannels: len(r.PerDRAMChannel),
		PloadMean:    r.AvgPersistentLoadLatency(),
		PloadP50:     r.PloadP50,
		PloadP99:     r.PloadP99,

		NVMLinesTouched:  r.NVMLinesTouched,
		NVMWearMax:       r.NVMWearMax,
		NVMWearHotness:   r.NVMWearHotness,
		DurableDiffCount: r.DurableDiffCount,

		TxAborts:           r.TotalTxAborts(),
		AbortRate:          r.AbortRate(),
		WastedInstructions: r.TotalWastedInstructions(),
		LineConflicts:      r.Arb.Conflicts,
		LineAcquires:       r.Arb.Acquires,

		SkippedCycles:       r.SkippedCycles,
		Metrics:             r.Metrics,
		ObsEventsRecorded:   r.ObsEventsRecorded,
		ObsEventsDropped:    r.ObsEventsDropped,
		ObsOpenSpansFlushed: r.ObsOpenSpansFlushed,
		TxFlight:            r.TxFlight,
	}
	if len(r.PerNVMChannel) > 1 {
		e.NVMChannelWrites = make([]uint64, len(r.PerNVMChannel))
		for i, s := range r.PerNVMChannel {
			e.NVMChannelWrites[i] = s.Writes
		}
	}
	if len(r.PerCore) > 0 {
		e.TCFullStallPct = r.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry }) /
			float64(len(r.PerCore)) * 100
	}
	if n := uint64(len(r.PerCore)) * r.Cycles; n > 0 {
		e.Attribution = make(map[string]float64, len(cpu.BreakdownCategories))
		agg := make([]uint64, len(cpu.BreakdownCategories))
		for _, st := range r.PerCore {
			for i, v := range st.Breakdown.Values() {
				agg[i] += v
			}
		}
		for i, name := range cpu.BreakdownCategories {
			e.Attribution[name] = float64(agg[i]) / float64(n) * 100
		}
	}
	return e
}

// MarshalJSON serializes the Result through its Export projection, so
// `json.Marshal(result)` just works.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Export())
}
