// Package pmemaccel is a cycle-level simulator of the persistent memory
// accelerator from "Leave the Cache Hierarchy Operation as It Is: A New
// Persistent Memory Accelerating Approach" (Lai, Zhao, Yang — DAC 2017).
//
// The package assembles a four-core system — out-of-order-approximating
// cores, a three-level cache hierarchy, hybrid DRAM+NVM main memory
// behind two DRAMSim2-like controllers, and per-core nonvolatile
// transaction caches — and runs the paper's five-benchmark suite under
// any of the four evaluated persistence mechanisms (Optimal, SP, TCache,
// Kiln). Results carry the metrics of the paper's Figures 6–10: IPC,
// transaction throughput, LLC miss rate, NVM write traffic and persistent
// load latency.
//
// Quick start:
//
//	cfg := pmemaccel.DefaultConfig(workload.RBTree, pmemaccel.TCache)
//	res, err := pmemaccel.Run(cfg)
//	fmt.Println(res.IPC())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package pmemaccel

import (
	"fmt"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/txcache"
	"pmemaccel/internal/workload"
)

// Config describes one simulation: the machine (Table 2), the benchmark
// (Table 3) and the persistence mechanism (§5.1).
type Config struct {
	// Cores is the core count: the machine-width knob. 0 selects
	// DefaultCores (Table 2: 4); anything up to memaddr.MaxCores (64)
	// builds a wider machine — per-core address carvings are fixed-size,
	// so a core's workload stream is identical at every machine width.
	Cores int
	// Seed drives every random choice in the run.
	Seed uint64

	Benchmark workload.Benchmark
	Mechanism Kind

	// Mix optionally assigns a different benchmark to every core
	// (heterogeneous multiprogramming). When set its length must equal
	// Cores; when empty every core runs Benchmark.
	Mix []workload.Benchmark

	// InitialSize and Ops size the benchmark: prepopulated elements and
	// measured operations (transactions) per core.
	InitialSize int
	Ops         int

	// Streaming generates each core's workload lazily: the measured
	// window's op() loop runs behind a small bounded buffer as the core
	// pulls records, instead of materializing the full trace and
	// per-transaction oracle history up front. Results are byte-identical
	// to materialized runs (the streaming golden tests pin it) but memory
	// stays O(structure footprint) instead of O(ops) — what makes
	// paper-scale instruction windows possible. Mid-run crash-prefix
	// recovery checking needs the materialized history, so streaming is
	// off by default.
	Streaming bool

	// Scale divides the cache and transaction-cache capacities by a
	// power of two, shrinking the machine for fast runs while keeping
	// capacity ratios. 1 reproduces Table 2 exactly.
	Scale int
	// ScaleTC also divides the transaction cache by Scale. Off by
	// default: transaction footprints do not shrink with the machine,
	// and the TC is sized to transactions, not to the hierarchy.
	ScaleTC bool

	CPU cpu.Config
	// NVMTech selects the nonvolatile technology timing model
	// (default STT-RAM, the paper's Table 2 choice).
	NVMTech NVMTech
	// NVMChannels and DRAMChannels set the number of address-interleaved
	// memory channels per space (0 = 1, the paper's Figure 1 machine).
	// Each channel is a full controller with its own banks and queues,
	// so channel count is the memory-level-parallelism scaling knob.
	NVMChannels  int
	DRAMChannels int
	// ChannelInterleaveBytes is the interleave granularity: consecutive
	// blocks of this many bytes rotate across a space's channels. Must
	// be a power of two of at least one cache line (0 = 4096).
	ChannelInterleaveBytes int
	// TCBytes is the per-core transaction cache capacity (Table 2:
	// 4 KB).
	TCBytes int
	// TCHighWaterFrac triggers the copy-on-write fall-back (0.9).
	TCHighWaterFrac float64

	// ContentionPct sets the fraction of operations touching the
	// cross-core shared region for contended benchmarks
	// (workload.BankShared). 0 selects the workload default (0.5);
	// ignored by the core-private benchmarks.
	ContentionPct float64
	// SharedAccounts sets the contended benchmarks' shared-array length
	// in words. 0 selects the workload default (64). Smaller arrays mean
	// hotter lines and more aborts.
	SharedAccounts int

	// MaxCycles bounds the run (0 = default bound).
	MaxCycles uint64

	// NoFastForward disables the kernel's quiescence fast-forward, so
	// every cycle is stepped even when the whole machine is provably
	// idle. Results are byte-identical either way (the skip-equivalence
	// tests enforce it); the switch exists for those tests and for perf
	// comparison.
	NoFastForward bool

	// ParWorkers > 0 runs the simulation kernel in parallel mode with
	// that many tick workers: each core (plus its transaction cache,
	// for the TCache mechanism) ticks on a worker between per-cycle
	// barriers, with shared-state interactions journaled and replayed
	// in registration order. Results are byte-identical to the serial
	// kernel (the parallel-equivalence tests pin it across the full
	// paperrepro grid, exactly like NoFastForward). 0 (the default)
	// keeps the serial kernel. The event trace (Obs.Enabled) and the
	// flight recorder (Obs.TxSample) compose with it — worker-side
	// records are journaled and replayed in registration order, so
	// traces are byte-identical to serial runs too — but Obs.Metrics
	// does not: cores stream into shared histograms inline, so Validate
	// rejects ParWorkers > 0 with Obs.Metrics.
	ParWorkers int

	// Obs configures the cycle-level observability layer (off by
	// default: the probe is nil and every probe site is an untaken
	// branch).
	Obs ObsConfig
}

// ObsConfig switches on the observability layer: a bounded event trace
// (exported as Chrome trace_event JSON via System.Probe), a periodic
// time-series sampler (exported as CSV), and per-core cycle attribution
// (always collected — attribution counters live in cpu.Stats and cost
// one increment per cycle regardless).
type ObsConfig struct {
	// Enabled turns on event recording and sampling.
	Enabled bool
	// TraceCapacity bounds the event ring buffer (entries; 0 selects
	// the obs package default, 262144). Oldest events are overwritten.
	TraceCapacity int
	// SampleEvery is the sampling period in cycles (0 disables the
	// time-series sampler).
	SampleEvery uint64
	// Metrics turns on the run-wide metrics registry: streaming
	// log2-bucketed histograms at the probe points (transaction latency,
	// commit wait, TC drain bursts, per-channel write-drain windows,
	// side-probe hit latency, per-line NVM wear), surfaced as
	// Result.Metrics and in the JSON export. Independent of Enabled —
	// the registry is cheap (a few histogram increments on events that
	// already happen) where the event trace is not. Off by default:
	// every metrics site is a nil-receiver no-op and results are
	// byte-identical to a run without it.
	Metrics bool
	// TxSample turns on the transaction flight recorder, sampling every
	// N-th transaction id per core (1 samples every transaction, 0 —
	// the default — disables the recorder entirely). Sampling is a pure
	// function of the transaction id, so the sampled set is identical
	// for every ParWorkers setting and sweep layout. Each sampled
	// transaction is followed begin → commit → TC drain → WPQ → NVM
	// durability and reduced to an exact stage waterfall
	// (Result.TxFlight) plus KTxStage trace spans stitched by Chrome
	// flow events when Enabled is also set. Off, results are
	// byte-identical to a run without it.
	TxSample uint64
}

// Kind re-exports the mechanism identifier so API users need not import
// the internal package.
type Kind = mechanism.Kind

// The four evaluated persistence mechanisms.
const (
	Optimal = mechanism.Optimal
	SP      = mechanism.SP
	TCache  = mechanism.TCache
	Kiln    = mechanism.Kiln
)

// benchmarkFor returns the benchmark core c runs (honouring Mix).
func (c Config) benchmarkFor(core int) workload.Benchmark {
	if len(c.Mix) > 0 {
		return c.Mix[core]
	}
	return c.Benchmark
}

// DefaultConfig returns a laptop-scale configuration (Scale 64) of the
// Table 2 machine running the given benchmark and mechanism. The working
// set is auto-sized (InitialSize 0) to several times the scaled LLC so
// steady-state miss and write-back behaviour emerges within the run.
func DefaultConfig(b workload.Benchmark, m Kind) Config {
	return Config{
		Seed:      1,
		Benchmark: b,
		Mechanism: m,
		Ops:       12_000,
		Scale:     64,
		TCBytes:   4 << 10,
	}
}

// PaperConfig returns the full Table 2 machine (Scale 1) with a
// proportionally larger working set. Runs take correspondingly longer.
func PaperConfig(b workload.Benchmark, m Kind) Config {
	cfg := DefaultConfig(b, m)
	cfg.Scale = 1
	cfg.Ops = 40_000
	return cfg
}

// footprintFactor is how many times the per-core LLC share the auto-sized
// persistent working set occupies.
const footprintFactor = 2

// DefaultCores is the Table 2 machine width, selected when Config.Cores
// is zero.
const DefaultCores = 4

// withDefaults validates and normalizes.
func (c Config) withDefaults() (Config, error) {
	if c.Cores == 0 {
		c.Cores = DefaultCores
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale < 0 || c.Scale&(c.Scale-1) != 0 {
		return c, fmt.Errorf("pmemaccel: Scale %d must be a positive power of two", c.Scale)
	}
	if c.TCBytes == 0 {
		c.TCBytes = 4 << 10
	}
	if len(c.Mix) > 0 && len(c.Mix) != c.Cores {
		return c, fmt.Errorf("pmemaccel: Mix has %d entries for %d cores", len(c.Mix), c.Cores)
	}
	if c.InitialSize == 0 {
		perCore := c.cacheConfig().WithDefaults().LLCSize / c.Cores
		c.InitialSize = workload.SizeForFootprint(c.Benchmark, footprintFactor*perCore)
	}
	if c.Ops == 0 {
		c.Ops = 1_000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	c.CPU = c.CPU.WithDefaults()
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// Validate checks the (defaulted) configuration for values the zero-fill
// defaults would silently accept but that produce confusing downstream
// behaviour: drain thresholds that can never close a window, a TC
// high-water fraction above 1, an entry size that does not divide the TC
// capacity. NewSystem calls it via withDefaults; the cmd/ tools call it
// directly after flag parsing so users get a descriptive error before a
// long run starts. Zero-valued fields are legal (they select defaults):
// validate the config WithDefaults applied, which is what this method
// receives on the NewSystem path.
func (c Config) Validate() error {
	if c.Cores < 0 {
		return fmt.Errorf("pmemaccel: Cores = %d, must be positive", c.Cores)
	}
	if c.Cores > memaddr.MaxCores {
		return fmt.Errorf("pmemaccel: Cores = %d exceeds the %d-core address-map limit", c.Cores, memaddr.MaxCores)
	}
	if c.Cores == 0 {
		c.Cores = DefaultCores // zero selects the default; validate what will run
	}
	if c.ContentionPct < 0 || c.ContentionPct > 1 {
		return fmt.Errorf("pmemaccel: ContentionPct %g must be in [0, 1] (0 selects the workload default)", c.ContentionPct)
	}
	if c.SharedAccounts < 0 {
		return fmt.Errorf("pmemaccel: SharedAccounts %d must be non-negative (0 selects the workload default)", c.SharedAccounts)
	}
	if c.Ops < 0 || c.InitialSize < 0 {
		return fmt.Errorf("pmemaccel: Ops %d and InitialSize %d must be non-negative", c.Ops, c.InitialSize)
	}
	if c.Scale < 0 || (c.Scale > 0 && c.Scale&(c.Scale-1) != 0) {
		return fmt.Errorf("pmemaccel: Scale %d must be a positive power of two", c.Scale)
	}
	if c.TCHighWaterFrac < 0 || c.TCHighWaterFrac > 1 {
		return fmt.Errorf("pmemaccel: TCHighWaterFrac %g must be in [0, 1] (0 selects the default 0.9)", c.TCHighWaterFrac)
	}
	if len(c.Mix) > 0 && len(c.Mix) != c.Cores {
		return fmt.Errorf("pmemaccel: Mix has %d entries for %d cores", len(c.Mix), c.Cores)
	}
	// Normalize the fields the derived sub-configs divide by, so Validate
	// is safe on a not-yet-defaulted config.
	if c.Scale == 0 {
		c.Scale = 1
	}
	if err := c.tcConfig().WithDefaults().Validate(); err != nil {
		return fmt.Errorf("pmemaccel: transaction cache: %w", err)
	}
	for _, mc := range []memctrl.Config{c.nvmConfig(), c.dramConfig()} {
		if err := mc.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("pmemaccel: %w", err)
		}
	}
	if c.NVMChannels < 0 || c.DRAMChannels < 0 {
		return fmt.Errorf("pmemaccel: channel counts (NVM %d, DRAM %d) must be non-negative (0 selects 1)",
			c.NVMChannels, c.DRAMChannels)
	}
	if c.ChannelInterleaveBytes < 0 {
		return fmt.Errorf("pmemaccel: ChannelInterleaveBytes %d must be non-negative (0 selects 4096)",
			c.ChannelInterleaveBytes)
	}
	if err := c.topology().WithDefaults().Validate(); err != nil {
		return fmt.Errorf("pmemaccel: %w", err)
	}
	if c.ParWorkers < 0 {
		return fmt.Errorf("pmemaccel: ParWorkers %d must be non-negative (0 selects the serial kernel)", c.ParWorkers)
	}
	if c.ParWorkers > 0 && c.Obs.Metrics {
		return fmt.Errorf("pmemaccel: ParWorkers %d is incompatible with Obs.Metrics: cores stream into shared histograms inline on workers (the event trace and flight recorder journal their records and compose fine)", c.ParWorkers)
	}
	return nil
}

// ValidateCLICores is the command-line tools' stricter core-count check:
// beyond the library's range validation it requires a power of two, so
// -cores always composes with the power-of-two channel interleave (and
// matches the machine widths the figures pin). The library itself
// accepts any count in [1, memaddr.MaxCores] — unit tests use odd widths
// deliberately. 0 is allowed (it selects the default).
func ValidateCLICores(n int) error {
	if n == 0 {
		return nil
	}
	if n < 0 || n > memaddr.MaxCores {
		return fmt.Errorf("cores %d must be in [1, %d] (0 selects the default %d)", n, memaddr.MaxCores, DefaultCores)
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("cores %d must be a power of two (channel interleave and figure grids assume it)", n)
	}
	return nil
}

// topology builds the memory-channel layout from the configuration.
func (c Config) topology() memctrl.Topology {
	return memctrl.Topology{
		NVMChannels:     c.NVMChannels,
		DRAMChannels:    c.DRAMChannels,
		InterleaveBytes: uint64(c.ChannelInterleaveBytes),
	}
}

// cacheConfig builds the hierarchy geometry for the (scaled) machine.
// Private caches scale by at most 8 (shrinking an L1 below a few KB stops
// modelling a cache at all); the LLC scales by the full factor, since the
// LLC-to-working-set ratio is what drives miss-rate and write-back
// behaviour.
func (c Config) cacheConfig() cache.Config {
	private := c.Scale
	if private > 8 {
		private = 8
	}
	cfg := cache.Config{
		L1Size: 32 << 10 / private, L1Ways: 4, L1Latency: 1,
		L2Size: 256 << 10 / private, L2Ways: 8, L2Latency: 9,
		LLCSize: 64 << 20 / c.Scale, LLCWays: 16, LLCLatency: 20,
		LLCPortsPerCycle: 1,
	}
	if c.Mechanism == Kiln {
		// Kiln's LLC is STT-RAM: writes are slow (~20 ns against the 10 ns SRAM-like read),
		// so commit-flush bursts block demand traffic (the §5.2
		// "bursts of traffic in the cache hierarchy").
		cfg.LLCWriteOccupancy = 8
	}
	return cfg
}

// tcConfig builds the per-core transaction cache configuration.
func (c Config) tcConfig() txcache.Config {
	size := c.TCBytes
	if c.ScaleTC {
		size /= c.Scale
	}
	return txcache.Config{
		SizeBytes:     size,
		EntryBytes:    64,
		Latency:       1,
		HighWaterFrac: c.TCHighWaterFrac,
	}
}

// NVMTech selects the nonvolatile main-memory technology. The paper's
// machine uses STT-RAM (Table 2); the introduction names PCM, RRAM and
// 3D XPoint as the emerging alternatives, so the simulator models their
// timing classes for sensitivity studies (cmd/ablation, the NVMTech
// sweep).
type NVMTech int

const (
	// STTRAM is the Table 2 technology: 65 ns read, 76 ns write.
	STTRAM NVMTech = iota
	// PCM is phase-change memory: similar reads, much slower writes.
	PCM
	// XPoint approximates 3D XPoint: slower reads, moderate writes.
	XPoint
)

// String names the technology.
func (t NVMTech) String() string {
	switch t {
	case STTRAM:
		return "sttram"
	case PCM:
		return "pcm"
	case XPoint:
		return "3dxpoint"
	default:
		return fmt.Sprintf("nvmtech(%d)", int(t))
	}
}

// NVMTechs lists the modelled technologies.
var NVMTechs = []NVMTech{STTRAM, PCM, XPoint}

// ParseNVMTech maps a name to a technology.
func ParseNVMTech(name string) (NVMTech, error) {
	for _, t := range NVMTechs {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("pmemaccel: unknown NVM technology %q", name)
}

// nvmConfig is the NVM channel: 4 ranks x 8 banks with the selected
// technology's array timings at 2 GHz.
func (c Config) nvmConfig() memctrl.Config {
	cfg := memctrl.Config{
		Name: "NVM", Banks: 32, RowBytes: 8192,
		ReadWindow: 8, WriteWindow: 64,
	}
	switch c.NVMTech {
	case PCM:
		// ~60 ns reads, ~300 ns SET-limited writes.
		cfg.ReadHit, cfg.ReadMiss = 40, 120
		cfg.WriteHit, cfg.WriteMiss = 500, 600
	case XPoint:
		// ~100 ns reads, ~150 ns writes.
		cfg.ReadHit, cfg.ReadMiss = 60, 200
		cfg.WriteHit, cfg.WriteMiss = 240, 300
	default: // STT-RAM, Table 2: 65 ns read, 76 ns write.
		cfg.ReadHit, cfg.ReadMiss = 40, 130
		cfg.WriteHit, cfg.WriteMiss = 120, 152
	}
	return cfg
}

// dramConfig is the DDR3 channel of Table 2.
func (c Config) dramConfig() memctrl.Config {
	return memctrl.Config{
		Name: "DRAM", Banks: 32, RowBytes: 8192,
		ReadHit: 27, ReadMiss: 80, WriteHit: 27, WriteMiss: 80,
		ReadWindow: 8, WriteWindow: 64,
	}
}
