package pmemaccel

// Tests for the contended cross-core workload (workload.BankShared):
// serialization correctness (the recovered NVM image must match the
// commit-order oracle exactly, under genuine line conflicts and aborts)
// and execution-mode invariance (serial kernel, -par-kernel 1/2/8, and
// streaming generation must all produce byte-identical Results).

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"pmemaccel/internal/workload"
)

// contendedConfig is a small but genuinely contended cell: 4 cores
// hammering the 64-word shared array with 80% shared transfers.
func contendedConfig(m Kind) Config {
	cfg := smokeConfig(workload.BankShared, m)
	cfg.Cores = 4
	cfg.ContentionPct = 0.8
	return cfg
}

// TestContendedConsistencyAllMechanisms runs the contended cell on every
// mechanism and pins the core contract: zero durable diffs (recovery
// reproduces the commit-order oracle), real aborts on the arbitrated
// mechanisms, and none on SP (deferred in-place stores have no conflict
// window — correctness comes from global-order log replay instead).
func TestContendedConsistencyAllMechanisms(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			r, err := Run(contendedConfig(m))
			if err != nil {
				t.Fatal(err)
			}
			// Optimal reports -1 (no recovery semantics to check); every
			// real mechanism must recover the commit-order oracle exactly.
			if r.DurableDiffCount > 0 {
				t.Fatalf("%d durable diffs; recovered image must match the commit-order oracle", r.DurableDiffCount)
			}
			aborts, retries := r.TotalTxAborts(), uint64(0)
			for _, st := range r.PerCore {
				retries += st.TxRetries
			}
			if m == SP {
				if aborts != 0 || r.Arb.Acquires != 0 {
					t.Fatalf("SP does not arbitrate, got %d aborts, %d acquires", aborts, r.Arb.Acquires)
				}
				return
			}
			if aborts == 0 {
				t.Fatal("80% contention produced zero aborts; conflict detection is not firing")
			}
			if retries < aborts {
				t.Fatalf("%d retries < %d aborts; every aborted transaction must eventually re-execute", retries, aborts)
			}
			if r.TotalWastedInstructions() == 0 {
				t.Fatal("aborts without wasted instructions; abort accounting is broken")
			}
			if r.Arb.Acquires == 0 || r.Arb.Conflicts == 0 {
				t.Fatalf("arbiter stats empty under contention: %+v", r.Arb)
			}
			// Acquires counts every decided request (grants + denials);
			// at quiescence each grant must have been matched by exactly
			// one release, or line ownership leaked past the run.
			if grants := r.Arb.Acquires - r.Arb.Conflicts; r.Arb.Releases != grants {
				t.Fatalf("%d grants (%d acquires - %d conflicts) but %d releases; line ownership leaked",
					grants, r.Arb.Acquires, r.Arb.Conflicts, r.Arb.Releases)
			}
		})
	}
}

// TestContendedKernelAndStreamingInvariance pins that the contended path
// keeps the simulator's strongest property: the Result is byte-identical
// across the serial kernel, -par-kernel 1/2/8, and streaming workload
// generation (which re-derives the shared-line oracle incrementally).
func TestContendedKernelAndStreamingInvariance(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := contendedConfig(m)
			base := runWithWorkers(t, cfg, 0)
			base.Config = Config{}
			for _, w := range []int{1, 2, 8} {
				r := runWithWorkers(t, cfg, w)
				r.Config = Config{}
				if !reflect.DeepEqual(base, r) {
					t.Errorf("-par-kernel %d diverges from serial:\n  serial: %v\n  par:    %v", w, base, r)
				}
			}
			for _, workers := range []int{0, 4} {
				sc := cfg
				sc.Streaming = true
				r := runWithWorkers(t, sc, workers)
				r.Config = Config{}
				if !reflect.DeepEqual(base, r) {
					t.Errorf("streaming (workers=%d) diverges from materialized serial:\n  mat:    %v\n  stream: %v",
						workers, base, r)
				}
			}
		})
	}
}

// TestContendedForcedDispatch drops the dispatch threshold to 2 so every
// multi-busy wave of the contended cell goes through worker dispatch and
// journal replay — under -race this is the CI sweep of the arbiter
// verdict protocol against real concurrent component ticks.
func TestContendedForcedDispatch(t *testing.T) {
	for _, m := range []Kind{TCache, Kiln, Optimal} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := contendedConfig(m)
			serial := runWithWorkers(t, cfg, 0)
			par := runWithThreshold(t, cfg, 4, 2)
			serial.Config = Config{}
			par.Config = Config{}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("forced-dispatch contended results diverge:\n  serial: %v\n  par:    %v", serial, par)
			}
		})
	}
}

// TestContendedCoreWidths runs the contended cell across machine widths
// (1 core = degenerate, no cross-core conflicts possible; 4/16/64 = the
// sweep's grid points) and checks width-parameterized invariants: per-core
// surfaces sized to the width, a consistent image at every width, and
// the attribution table rendering one row per core plus the aggregate.
func TestContendedCoreWidths(t *testing.T) {
	for _, n := range []int{1, 4, 16, 64} {
		n := n
		t.Run(strconv.Itoa(n)+"cores", func(t *testing.T) {
			t.Parallel()
			cfg := smokeConfig(workload.BankShared, TCache)
			cfg.Cores = n
			cfg.Ops = 60
			r, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.PerCore) != n || len(r.TC) != n {
				t.Fatalf("per-core surfaces sized %d/%d, want %d", len(r.PerCore), len(r.TC), n)
			}
			if r.DurableDiffCount != 0 {
				t.Fatalf("%d durable diffs at %d cores", r.DurableDiffCount, n)
			}
			if n == 1 && r.TotalTxAborts() != 0 {
				t.Fatalf("single core aborted %d times; it can only conflict with itself", r.TotalTxAborts())
			}
			tbl := r.AttributionTable()
			for _, want := range []string{"core0", "all", "abort-stall"} {
				if !strings.Contains(tbl, want) {
					t.Fatalf("attribution table at %d cores missing %q:\n%s", n, want, tbl)
				}
			}
			if last := "core" + strconv.Itoa(n-1); !strings.Contains(tbl, last) {
				t.Fatalf("attribution table at %d cores missing %q", n, last)
			}
			if over := "core" + strconv.Itoa(n); strings.Contains(tbl, over) {
				t.Fatalf("attribution table at %d cores has phantom row %q", n, over)
			}
		})
	}
}
