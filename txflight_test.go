package pmemaccel

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pmemaccel/internal/obs"
	"pmemaccel/internal/workload"
)

// TestTxFlightStageSumInvariant is the recorder's core contract on
// every mechanism: with full sampling, every transaction yields a
// flight whose stage cycles sum exactly to its end-to-end latency, no
// flight stays open past collection, and every flight gets exactly one
// critical-path verdict.
func TestTxFlightStageSumInvariant(t *testing.T) {
	for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			cfg := tinyConfig(workload.SPS, m)
			cfg.Obs.Enabled = true
			cfg.Obs.TxSample = 1
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := res.TxFlight
			if a == nil {
				t.Fatal("TxSample set but Result.TxFlight is nil")
			}
			if a.Sampled != res.TotalTransactions() {
				t.Errorf("sampled %d flights, committed %d transactions", a.Sampled, res.TotalTransactions())
			}
			if a.Open != 0 {
				t.Errorf("%d flights still open after a run to quiescence", a.Open)
			}
			var stageSum, critSum uint64
			for _, s := range a.StageCycles {
				stageSum += s
			}
			for _, c := range a.CritCount {
				critSum += c
			}
			if stageSum != a.E2ECycles {
				t.Errorf("stage cycles sum to %d, end-to-end total is %d (must be exact)", stageSum, a.E2ECycles)
			}
			if critSum != a.Sampled {
				t.Errorf("critical-path verdicts %d, sampled flights %d", critSum, a.Sampled)
			}
			if a.Sampled > 0 && a.E2ECycles == 0 {
				t.Error("sampled flights report zero total latency")
			}
			// Only the TCache mechanism issues tracked drain writes; the
			// others' flights must end at commit with empty memory stages.
			if m != TCache && (a.StageCycles[3] != 0 || a.StageCycles[4] != 0) {
				t.Errorf("%v has memory-side stage cycles %v without a TC", m, a.StageCycles)
			}
			if m == TCache && a.StageCycles[4] == 0 {
				t.Error("tcache run recorded no nvm-write stage cycles")
			}
		})
	}
}

// TestTxFlightSampleEveryN pins sampling determinism: per-core tx ids
// count 1..N, so every=4 samples exactly floor(N/4) flights per core,
// computable from the per-core transaction counts alone.
func TestTxFlightSampleEveryN(t *testing.T) {
	cfg := tinyConfig(workload.Hashtable, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, st := range res.PerCore {
		want += st.Transactions / 4
	}
	if res.TxFlight == nil || res.TxFlight.Sampled != want {
		t.Fatalf("TxSample=4 sampled %+v, want %d flights", res.TxFlight, want)
	}
}

// TestTxFlightResultsUnchanged: the flight recorder observes, never
// perturbs — every simulation-result field matches a run without it.
func TestTxFlightResultsUnchanged(t *testing.T) {
	base, err := Run(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(workload.SPS, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 1
	fl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only the observability record itself may differ.
	base.Config, fl.Config = Config{}, Config{}
	base.TxFlight, fl.TxFlight = nil, nil
	base.ObsEventsRecorded, fl.ObsEventsRecorded = 0, 0
	base.ObsEventsDropped, fl.ObsEventsDropped = 0, 0
	base.ObsOpenSpansFlushed, fl.ObsOpenSpansFlushed = 0, 0
	if !reflect.DeepEqual(base, fl) {
		t.Errorf("flight recording changed simulation results:\n  off: %v\n  on:  %v", base, fl)
	}
}

// TestTxFlightTraceRoundTrip is the in-process version of the CI smoke
// gate: run one cell with full sampling, export the Chrome trace, read
// it back, and require well-formed flow chains and zero drops of any
// kind.
func TestTxFlightTraceRoundTrip(t *testing.T) {
	cfg := tinyConfig(workload.SPS, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.TxSample = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Probe.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := obs.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateFlows(data); err != nil {
		t.Fatalf("flow events malformed: %v", err)
	}
	starts, stages := 0, 0
	for _, e := range data.Events {
		if e.Ph == "s" {
			starts++
		}
		if strings.HasPrefix(e.Name, "stage:") {
			stages++
		}
	}
	if starts == 0 || stages == 0 {
		t.Fatalf("trace carries %d flow starts and %d stage spans, want both > 0", starts, stages)
	}
	for k, v := range data.OtherData {
		if strings.HasPrefix(k, "dropped_") && v != "0" {
			t.Errorf("ring dropped events: %s=%s", k, v)
		}
	}
	for k, n := range sys.Probe.DroppedByKind() {
		if n != 0 {
			t.Errorf("probe dropped %d %v events", n, obs.Kind(k))
		}
	}
	if res.TxFlight == nil || res.TxFlight.Sampled == 0 {
		t.Fatal("round-trip run sampled nothing")
	}
}

// TestTxFlightOffByDefault: without TxSample the recorder stays nil end
// to end — no aggregate, no stage spans in the trace.
func TestTxFlightOffByDefault(t *testing.T) {
	cfg := tinyConfig(workload.SPS, TCache)
	cfg.Obs.Enabled = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Flight != nil {
		t.Fatal("System.Flight allocated without Obs.TxSample")
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TxFlight != nil {
		t.Fatal("Result.TxFlight set without Obs.TxSample")
	}
	if n := sys.Probe.CountKind(obs.KTxStage); n != 0 {
		t.Fatalf("trace carries %d stage spans with sampling off", n)
	}
}
