package pmemaccel

// Skip-equivalence suite for the kernel's quiescence fast-forward
// (internal/sim): every workload x mechanism cell must produce an
// identical Result with fast-forward on and off. The Quiescer contract
// (DESIGN.md §10) promises byte-identical simulation output; these tests
// enforce it field by field, including the per-core cycle attribution
// that SkipCycles back-fills in bulk.

import (
	"reflect"
	"testing"

	"pmemaccel/internal/workload"
)

// runPair runs one cell with fast-forward on and off and returns both
// results with their Configs zeroed (the NoFastForward flag is the one
// intended difference; everything downstream of it must agree).
func runPair(t *testing.T, b workload.Benchmark, m Kind) (ff, noff *Result) {
	t.Helper()
	cfg := smokeConfig(b, m)

	cfg.NoFastForward = false
	ff, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v/%v fast-forward on: %v", b, m, err)
	}
	cfg.NoFastForward = true
	noff, err = Run(cfg)
	if err != nil {
		t.Fatalf("%v/%v fast-forward off: %v", b, m, err)
	}
	ff.Config = Config{}
	noff.Config = Config{}
	// SkippedCycles is the one counter that legitimately differs (it is
	// the audit trail for the flag under test): assert the expected
	// shape, then zero it so DeepEqual covers everything else.
	if noff.SkippedCycles != 0 {
		t.Errorf("%v/%v: NoFastForward run reported %d skipped cycles, want 0", b, m, noff.SkippedCycles)
	}
	ff.SkippedCycles = 0
	noff.SkippedCycles = 0
	return ff, noff
}

func TestFastForwardResultsIdenticalAllCells(t *testing.T) {
	for _, b := range workload.All {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				ff, noff := runPair(t, b, m)
				if !reflect.DeepEqual(ff, noff) {
					t.Errorf("results diverge with fast-forward on vs off:\n  on:  %v\n  off: %v", ff, noff)
					// Narrow the divergence for the failure message.
					if ff.Cycles != noff.Cycles {
						t.Errorf("Cycles: %d vs %d", ff.Cycles, noff.Cycles)
					}
					for c := range ff.PerCore {
						if !reflect.DeepEqual(ff.PerCore[c], noff.PerCore[c]) {
							t.Errorf("core %d stats diverge:\n  on:  %+v\n  off: %+v",
								c, ff.PerCore[c], noff.PerCore[c])
						}
					}
				}
			})
		}
	}
}

// TestAttributionClosesUnderFastForward re-asserts the cycle-attribution
// invariant (every cycle of the performance window lands in exactly one
// bucket) on the fast-forward path, where skipped spans are bulk-charged
// by Core.SkipCycles instead of accrued tick by tick.
func TestAttributionClosesUnderFastForward(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(smokeConfig(workload.RBTree, m))
			if err != nil {
				t.Fatal(err)
			}
			for c, st := range res.PerCore {
				if got := st.Breakdown.Total(); got != res.Cycles {
					t.Errorf("core %d: breakdown total %d != cycles %d", c, got, res.Cycles)
				}
			}
		})
	}
}

// TestFastForwardActuallySkips guards against the suite passing
// vacuously: on a workload dominated by NVM latency the kernel must skip
// a nonzero number of cycles, or fast-forward is not engaging at all.
func TestFastForwardActuallySkips(t *testing.T) {
	s, err := NewSystem(smokeConfig(workload.RBTree, SP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Kernel.Skipped() == 0 {
		t.Fatal("fast-forward skipped 0 cycles on an NVM-latency-bound run; quiescence is never detected")
	}
}

// TestNoFastForwardDisablesSkipping checks the escape hatch: with
// NoFastForward set the kernel must step every cycle.
func TestNoFastForwardDisablesSkipping(t *testing.T) {
	cfg := smokeConfig(workload.RBTree, SP)
	cfg.NoFastForward = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := s.Kernel.Skipped(); n != 0 {
		t.Fatalf("NoFastForward run skipped %d cycles, want 0", n)
	}
}
