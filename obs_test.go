package pmemaccel

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pmemaccel/internal/workload"
)

// TestAttributionSumsToCycles checks the per-core cycle-attribution
// invariant on every mechanism: with Idle filled at collect time the
// buckets sum exactly to the performance window, and the busy portion
// matches the core's own retirement cycle to within one cycle (a core
// may retire its last instruction via an event callback between ticks).
func TestAttributionSumsToCycles(t *testing.T) {
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(tinyConfig(workload.RBTree, m))
			if err != nil {
				t.Fatal(err)
			}
			for c, st := range res.PerCore {
				if got := st.Breakdown.Total(); got != res.Cycles {
					t.Errorf("core %d: breakdown total = %d, want Cycles = %d (%+v)",
						c, got, res.Cycles, st.Breakdown)
				}
				busy := st.Breakdown.Busy()
				var diff uint64
				if busy > st.DoneAt {
					diff = busy - st.DoneAt
				} else {
					diff = st.DoneAt - busy
				}
				if diff > 1 {
					t.Errorf("core %d: busy = %d, done at %d (diff %d > 1)",
						c, busy, st.DoneAt, diff)
				}
			}
		})
	}
}

// TestObsTraceAndMetrics runs a two-core TCache workload with the
// observability layer on and checks both export formats end to end: the
// Chrome trace parses as JSON and carries transaction spans and TC drain
// events; the metrics CSV is non-empty and has TC-occupancy and
// queue-depth columns.
func TestObsTraceAndMetrics(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.SampleEvery = 500
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Probe == nil {
		t.Fatal("Obs.Enabled set but System.Probe is nil")
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	if err := sys.Probe.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	count := map[string]int{}
	for _, ev := range doc.TraceEvents {
		count[ev.Name]++
		if ev.Ph == "X" && ev.Dur == 0 {
			t.Fatalf("complete event %q with zero duration", ev.Name)
		}
	}
	if count["tx"] == 0 {
		t.Error("trace has no transaction spans")
	}
	if count["tc-drain"] == 0 {
		t.Error("trace has no TC drain spans")
	}
	if count["tc-commit"] == 0 {
		t.Error("trace has no TC commit instants")
	}

	var csv bytes.Buffer
	if err := sys.Probe.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("metrics CSV has %d lines, want header + samples", len(lines))
	}
	header := lines[0]
	for _, col := range []string{"cycle", "tc0_occupancy", "tc1_occupancy",
		"llc_demand_queue", "nvm0_write_queue", "dram0_read_queue"} {
		if !strings.Contains(header, col) {
			t.Errorf("metrics CSV header missing %q (header: %s)", col, header)
		}
	}
	cols := strings.Count(header, ",") + 1
	for i, line := range lines[1:] {
		if got := strings.Count(line, ",") + 1; got != cols {
			t.Fatalf("row %d has %d columns, header has %d", i+1, got, cols)
		}
	}
}

// TestObsDisabledByDefault checks the zero-overhead contract's API side:
// without Obs.Enabled the probe stays nil and runs behave identically.
func TestObsDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(tinyConfig(workload.RBTree, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Probe != nil {
		t.Fatal("probe allocated without Obs.Enabled")
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestObsDeterminismUnchanged checks that enabling observability does
// not perturb the simulation: cycle counts and instruction counts match
// a probe-free run exactly.
func TestObsDeterminismUnchanged(t *testing.T) {
	base, err := Run(tinyConfig(workload.Hashtable, TCache))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(workload.Hashtable, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.SampleEvery = 250
	obsRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != obsRes.Cycles {
		t.Errorf("cycles changed with obs on: %d vs %d", base.Cycles, obsRes.Cycles)
	}
	if base.TotalInstructions() != obsRes.TotalInstructions() {
		t.Errorf("instructions changed with obs on: %d vs %d",
			base.TotalInstructions(), obsRes.TotalInstructions())
	}
}

// TestSamplerUnderFastForward checks the sampler's interaction with the
// kernel's quiescence fast-forward: the self-rescheduling sample event
// keeps the period exact (skips land between events, never across
// them), so sample cycles are strictly monotonic on an exact
// SampleEvery cadence, never past the kernel clock (the run's drain
// tail may extend past the performance window), and identical with
// fast-forward disabled.
func TestSamplerUnderFastForward(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.SampleEvery = 500

	run := func(noFF bool) ([]uint64, uint64) {
		cfg.NoFastForward = noFF
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if noFF == false && sys.Kernel.Skipped() == 0 {
			t.Log("note: fast-forward never engaged on this run")
		}
		return sys.Probe.SampleCycles(), sys.Kernel.Now()
	}

	ff, ffNow := run(false)
	if len(ff) == 0 {
		t.Fatal("no samples recorded at every=500")
	}
	prev := uint64(0)
	for i, c := range ff {
		if c <= prev && i > 0 {
			t.Fatalf("sample cycles not strictly increasing: %d then %d", prev, c)
		}
		if c%cfg.Obs.SampleEvery != 0 {
			t.Errorf("sample %d at cycle %d, not a multiple of %d", i, c, cfg.Obs.SampleEvery)
		}
		if c > ffNow {
			t.Errorf("sample %d at cycle %d, beyond the kernel clock %d", i, c, ffNow)
		}
		prev = c
	}
	noff, noffNow := run(true)
	if ffNow != noffNow {
		t.Fatalf("kernel clock diverges with fast-forward: %d vs %d", ffNow, noffNow)
	}
	if !reflect.DeepEqual(ff, noff) {
		t.Errorf("sample cycles diverge with fast-forward:\n  on:  %v\n  off: %v", ff, noff)
	}
}

// TestSamplerEveryLongerThanRun: a SampleEvery beyond the run length
// must not perturb the run (the pending sample event is simply never
// reached) and must export a header-only CSV.
func TestSamplerEveryLongerThanRun(t *testing.T) {
	base, err := Run(tinyConfig(workload.RBTree, TCache))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Obs.Enabled = true
	cfg.Obs.SampleEvery = base.Cycles * 10
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != base.Cycles {
		t.Errorf("cycles changed with an unreachable sampler: %d vs %d", res.Cycles, base.Cycles)
	}
	if n := sys.Probe.SampleCount(); n != 0 {
		t.Errorf("SampleCount = %d with every=%d on a %d-cycle run, want 0",
			n, cfg.Obs.SampleEvery, res.Cycles)
	}
	var csv bytes.Buffer
	if err := sys.Probe.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(csv.String()), "\n"); len(lines) != 1 {
		t.Errorf("CSV has %d lines, want header only", len(lines))
	}
}

// TestAttributionTableRenders sanity-checks the human-readable table.
func TestAttributionTableRenders(t *testing.T) {
	res, err := Run(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.AttributionTable()
	for _, want := range []string{"core0", "core1", "all", "compute", "idle"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("attribution table missing %q:\n%s", want, tbl)
		}
	}
}
