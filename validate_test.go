package pmemaccel

// Config.Validate tests: the root validator must reject nonsense shapes
// with descriptive errors (NewSystem calls it through withDefaults, so a
// bad config fails fast instead of producing a silently wrong machine)
// and accept everything DefaultConfig/PaperConfig produce.

import (
	"strings"
	"testing"

	"pmemaccel/internal/workload"
)

func TestValidateAcceptsStockConfigs(t *testing.T) {
	for _, b := range workload.All {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			if err := DefaultConfig(b, m).Validate(); err != nil {
				t.Errorf("DefaultConfig(%v, %v): %v", b, m, err)
			}
			if err := PaperConfig(b, m).Validate(); err != nil {
				t.Errorf("PaperConfig(%v, %v): %v", b, m, err)
			}
		}
	}
	// The zero config validates too: every zero field selects a default.
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error message
	}{
		{"negative cores", func(c *Config) { c.Cores = -2 }, "Cores"},
		{"negative ops", func(c *Config) { c.Ops = -1 }, "Ops"},
		{"non-power-of-two scale", func(c *Config) { c.Scale = 48 }, "power of two"},
		{"negative scale", func(c *Config) { c.Scale = -4 }, "power of two"},
		{"high-water above 1", func(c *Config) { c.TCHighWaterFrac = 1.5 }, "TCHighWaterFrac"},
		{"mix length mismatch", func(c *Config) { c.Mix = []workload.Benchmark{workload.SPS} }, "Mix"},
		{"tc entry size mismatch", func(c *Config) { c.TCBytes = 100 }, "transaction cache"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(workload.RBTree, TCache)
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestNewSystemRejectsBadConfig: validation is wired into construction,
// not just available as an optional call.
func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(workload.RBTree, TCache)
	cfg.Scale = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("NewSystem accepted Scale=3 (not a power of two)")
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted Scale=3")
	}
}
