package pmemaccel

// One benchmark per evaluation artifact: Figures 6-10, Table 1 and the
// §5.2 stall observation, plus an ablation over transaction-cache
// capacity and a raw simulator-speed benchmark. Figure benches share one
// grid (built once, outside the timed region) and report their series'
// geomeans through b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the paper's headline numbers. The full-resolution tables
// are produced by cmd/paperrepro.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"pmemaccel/internal/cpu"
	"pmemaccel/internal/hwcost"
	"pmemaccel/internal/workload"
)

// benchConfig is the grid cell configuration used by the figure benches:
// smaller than the default run but large enough for steady-state
// behaviour.
func benchConfig(b workload.Benchmark, m Kind) Config {
	cfg := DefaultConfig(b, m)
	cfg.Scale = 128
	cfg.Ops = 3000
	return cfg
}

var (
	gridOnce sync.Once
	gridErr  error
	grid     map[workload.Benchmark]map[Kind]*Result
)

func benchGrid(b *testing.B) map[workload.Benchmark]map[Kind]*Result {
	b.Helper()
	gridOnce.Do(func() {
		grid = make(map[workload.Benchmark]map[Kind]*Result)
		for _, wb := range workload.All {
			grid[wb] = make(map[Kind]*Result)
			for _, m := range []Kind{SP, TCache, Kiln, Optimal} {
				res, err := Run(benchConfig(wb, m))
				if err != nil {
					gridErr = err
					return
				}
				grid[wb][m] = res
			}
		}
	})
	if gridErr != nil {
		b.Fatal(gridErr)
	}
	return grid
}

// geomeanNormalized computes the geometric mean across benchmarks of
// metric(mech)/metric(Optimal).
func geomeanNormalized(g map[workload.Benchmark]map[Kind]*Result, m Kind,
	metric func(*Result) float64) float64 {
	prod, n := 1.0, 0
	for _, row := range g {
		base := metric(row[Optimal])
		v := metric(row[m])
		if base > 0 && v > 0 {
			prod *= v / base
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1.0/float64(n))
}

func reportFigure(b *testing.B, metric func(*Result) float64) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range []Kind{SP, TCache, Kiln} {
			b.ReportMetric(geomeanNormalized(g, m, metric), m.String()+"_vs_optimal")
		}
	}
}

// BenchmarkFig6IPC regenerates Figure 6: normalized IPC
// (paper: SP 0.477, TCache 0.985, Kiln 0.878).
func BenchmarkFig6IPC(b *testing.B) {
	reportFigure(b, (*Result).IPC)
}

// BenchmarkFig7Throughput regenerates Figure 7: normalized transaction
// throughput (paper: SP 0.306, TCache 0.985, Kiln 0.878).
func BenchmarkFig7Throughput(b *testing.B) {
	reportFigure(b, (*Result).Throughput)
}

// BenchmarkFig8LLCMissRate regenerates Figure 8: normalized LLC miss
// rate (paper: Kiln ~1.06 vs TCache/Optimal ~1.0).
func BenchmarkFig8LLCMissRate(b *testing.B) {
	reportFigure(b, func(r *Result) float64 { return r.LLCMissRate })
}

// BenchmarkFig9WriteTraffic regenerates Figure 9: normalized NVM write
// traffic (paper: SP ~2x; TCache above Kiln, both above Optimal).
func BenchmarkFig9WriteTraffic(b *testing.B) {
	reportFigure(b, func(r *Result) float64 { return float64(r.NVMWriteTraffic()) })
}

// BenchmarkFig10LoadLatency regenerates Figure 10: normalized persistent
// load latency (paper: Kiln 2.4x Optimal; TCache close to Optimal).
func BenchmarkFig10LoadLatency(b *testing.B) {
	reportFigure(b, (*Result).AvgPersistentLoadLatency)
}

// BenchmarkTCStallFraction reports the §5.2 observation: the fraction of
// cycles the TCache configuration stalls on a full transaction cache
// (paper: 0.67% on sps, ~0 elsewhere).
func BenchmarkTCStallFraction(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wb := range workload.All {
			r := g[wb][TCache]
			frac := r.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry })
			b.ReportMetric(frac*100, wb.String()+"_stall_pct")
		}
	}
}

// BenchmarkTable1HardwareOverhead regenerates Table 1's totals from the
// configuration.
func BenchmarkTable1HardwareOverhead(b *testing.B) {
	cfg := hwcost.Config{
		Cores: 4, TCBytes: 4 << 10, TCEntryBytes: 64, LineBytes: 64,
		L1Bytes: 32 << 10, L2Bytes: 256 << 10, LLCBytes: 64 << 20,
	}
	var t hwcost.Totals
	for i := 0; i < b.N; i++ {
		t = cfg.Summarize()
	}
	b.ReportMetric(float64(t.PerTCLineBits), "tc_line_bits")
	b.ReportMetric(float64(t.PerHierarchyLineBits), "hier_line_bits")
	b.ReportMetric(float64(t.TCTotalBytes), "tc_total_bytes")
	b.ReportMetric(t.TCvsLLCPercent, "tc_vs_llc_pct")
}

// BenchmarkAblationTCSize sweeps the transaction-cache capacity on the
// most write-intensive benchmark (the §3 "flexibly configured" claim).
func BenchmarkAblationTCSize(b *testing.B) {
	for _, tcBytes := range []int{512, 1024, 4096, 16384} {
		tcBytes := tcBytes
		b.Run(byteLabel(tcBytes), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(workload.SPS, TCache)
				cfg.TCBytes = tcBytes
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tput = res.Throughput()
			}
			b.ReportMetric(tput, "tx_per_kcycle")
		})
	}
}

// BenchmarkSimulatorSpeed measures raw simulation speed (simulated
// cycles per wall second) on the default rbtree/TCache configuration.
func BenchmarkSimulatorSpeed(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedParallel is BenchmarkSimulatorSpeed under the
// parallel kernel at 4 workers — the same cell, byte-identical results
// (pinned by TestParallelKernelIdenticalAllCells), so the sim_cycles/s
// ratio against the serial bench is pure kernel speedup. Most of the
// gain is per-component tick elision at the barrier (idle cores skip
// their Tick entirely); worker dispatch covers the multi-busy cycles.
func BenchmarkSimulatorSpeedParallel(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.ParWorkers = 4
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedStreaming is BenchmarkSimulatorSpeed through
// the streaming generation pipeline — the same cell, byte-identical
// results (pinned by TestStreamingIdenticalAllCells), so the
// sim_cycles/s ratio against the serial bench prices pull-based
// generation: per-record closure dispatch and the incremental oracle
// versus a one-shot materialize plus slice iteration.
func BenchmarkSimulatorSpeedStreaming(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.Streaming = true
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedContended is BenchmarkSimulatorSpeed on the
// contended many-core cell: 16 cores running bankshared, where half the
// transactions transfer between shared accounts and every shared store
// goes through line arbitration. The sim_cycles/s delta against the
// serial rbtree bench prices the conflict-detection path (ownership
// probes, abort/replay, commit-order oracle bookkeeping) on a machine
// 4x the paper's width.
func BenchmarkSimulatorSpeedContended(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.BankShared, TCache)
		cfg.Cores = 16
		cfg.Ops = 1000
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedMultiChannel is BenchmarkSimulatorSpeed on a
// 4-channel NVM backend — the first memory-side scaling scenario. The
// sim_cycles/s delta against the single-channel bench prices the extra
// per-cycle controller work; the simulated-cycle count itself drops as
// the channels overlap NVM traffic.
func BenchmarkSimulatorSpeedMultiChannel(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.NVMChannels = 4
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedObs is BenchmarkSimulatorSpeed with the full
// observability layer on (event trace + 1-kcycle sampling). Comparing
// the two sim_cycles/s metrics bounds the enabled-probe cost; the
// disabled cost is the nil-check branches, held to zero allocations by
// the obs and txcache regression tests and to <2% speed by comparing
// BenchmarkSimulatorSpeed against the pre-observability baseline
// (see DESIGN.md, "Observability").
func BenchmarkSimulatorSpeedObs(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.Obs.Enabled = true
		cfg.Obs.SampleEvery = 1000
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedTxFlight is BenchmarkSimulatorSpeed with the
// flight recorder sampling every transaction (the most expensive
// setting: every tx carries a flight record, every drain write an
// issue/durable checkpoint). The sim_cycles/s delta against the
// Obs-only bench is the full-sampling overhead; the acceptance bound
// is <3%, and with TxSample 0 the recorder is nil and every hook is a
// nil-check branch.
func BenchmarkSimulatorSpeedTxFlight(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.Obs.Enabled = true
		cfg.Obs.TxSample = 1
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkSimulatorSpeedMetrics is BenchmarkSimulatorSpeed with the
// run-wide metrics registry on (histograms at every probe point, no
// event trace). The sim_cycles/s delta against the plain bench is the
// full-metrics overhead — the acceptance bound is <2%, and the
// disabled path is held to zero allocations by the registry's own
// AllocsPerRun regression tests.
func BenchmarkSimulatorSpeedMetrics(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(workload.RBTree, TCache)
		cfg.Obs.Metrics = true
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

func byteLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
