// endurance: NVM wear analysis across persistence mechanisms — a
// question the paper leaves open. The transaction cache writes every
// committed store to NVM without coalescing, so it trades write volume
// (endurance) for decoupled performance; Kiln coalesces in its
// nonvolatile LLC; software logging hammers the log region.
//
//	go run ./examples/endurance
package main

import (
	"fmt"
	"log"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func main() {
	fmt.Println("NVM endurance profile by persistence mechanism (rbtree workload)")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"mechanism", "NVM writes", "lines", "mean w/line", "max w/line", "hotness")

	for _, m := range []pmemaccel.Kind{pmemaccel.Optimal, pmemaccel.TCache, pmemaccel.Kiln, pmemaccel.SP} {
		cfg := pmemaccel.DefaultConfig(workload.RBTree, m)
		cfg.Ops = 8000
		res, err := pmemaccel.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %12d %12.2f %12d %9.1fx\n",
			m, res.NVMWriteTraffic(), res.NVMLinesTouched,
			res.NVMWearMean, res.NVMWearMax, res.NVMWearHotness)
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - tcache spreads uncoalesced writes over many data lines")
	fmt.Println("  - sp concentrates writes on the sequential log region AND rewrites data")
	fmt.Println("  - kiln's NV-LLC coalesces, so fewer NVM lines absorb fewer writes")
	fmt.Println("  - hotness = max/mean writes per line; high values want wear leveling")
}
