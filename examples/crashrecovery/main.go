// crashrecovery: pull the plug mid-run and watch recovery work (or, for
// the no-persistence baseline, fail). Demonstrates the §3 guarantee: the
// nonvolatile transaction cache makes every committed transaction
// recoverable and every uncommitted one invisible.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"pmemaccel"
	"pmemaccel/internal/recovery"
	"pmemaccel/internal/workload"
)

func main() {
	base := func(m pmemaccel.Kind) pmemaccel.Config {
		cfg := pmemaccel.DefaultConfig(workload.RBTree, m)
		cfg.Scale = 128
		cfg.InitialSize = 3000
		cfg.Ops = 800
		return cfg
	}

	horizon, err := recovery.Horizon(base(pmemaccel.TCache))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("red-black tree workload, %d-cycle horizon\n\n", horizon)

	for _, m := range []pmemaccel.Kind{pmemaccel.TCache, pmemaccel.Optimal} {
		fmt.Printf("=== %v ===\n", m)
		trials, violations, err := recovery.Sweep(base(m), 5, horizon, 42)
		if err != nil {
			log.Fatal(err)
		}
		for _, tr := range trials {
			fmt.Printf("  %v\n", tr)
		}
		switch {
		case m == pmemaccel.TCache && violations == 0:
			fmt.Println("  -> every crash recovered to a valid tree containing exactly the")
			fmt.Println("     committed inserts: multi-versioning + FIFO write ordering at work")
		case m == pmemaccel.Optimal && violations > 0:
			fmt.Printf("  -> %d/%d crashes corrupted NVM: reordered cache write-backs left\n",
				violations, len(trials))
			fmt.Println("     dangling pointers — the motivating failure of the paper's Figure 2")
		default:
			fmt.Println("  -> unexpected outcome; investigate")
		}
		fmt.Println()
	}
}
