// Tracing: run a short transaction-cache workload with the
// observability layer on and export both artifacts — a Chrome
// trace_event JSON of transaction lifecycles, TC drain bursts, LLC
// persistent-line drops and WPQ drain windows, plus a time-series CSV
// of TC occupancy and queue depths.
//
//	go run ./examples/tracing
//
// Open trace.json in chrome://tracing or https://ui.perfetto.dev;
// metrics.csv plots directly with any spreadsheet or gnuplot.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func main() {
	cfg := pmemaccel.DefaultConfig(workload.RBTree, pmemaccel.TCache)
	cfg.Cores = 2
	cfg.Ops = 1500
	cfg.Obs.Enabled = true
	cfg.Obs.SampleEvery = 1000 // one CSV row per thousand cycles

	sys, err := pmemaccel.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	if err := writeFile("trace.json", sys.Probe.WriteChromeTrace); err != nil {
		log.Fatal(err)
	}
	if err := writeFile("metrics.csv", sys.Probe.WriteMetricsCSV); err != nil {
		log.Fatal(err)
	}

	fmt.Println("persistent memory accelerator — tracing")
	fmt.Printf("  run:            %v\n", res)
	fmt.Printf("  trace.json:     %d events recorded, %d dropped (ring full)\n",
		sys.Probe.Recorded(), sys.Probe.Dropped())
	fmt.Printf("  metrics.csv:    %d samples of %v\n",
		sys.Probe.SampleCount(), sys.Probe.SourceNames())
	fmt.Printf("\n%s", res.AttributionTable())
	fmt.Println("open trace.json in chrome://tracing or https://ui.perfetto.dev")
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
