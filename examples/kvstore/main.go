// kvstore: the database-like scenario from the paper's introduction — a
// persistent key-value hashtable — compared across all four persistence
// mechanisms. This is the "which persistence scheme should my storage
// engine assume" experiment.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func main() {
	fmt.Println("persistent KV store under four persistence mechanisms")
	fmt.Println("(hashtable benchmark: lookup + durable insert per operation)")
	fmt.Println()

	type row struct {
		mech pmemaccel.Kind
		res  *pmemaccel.Result
	}
	var rows []row
	var opt *pmemaccel.Result
	for _, m := range []pmemaccel.Kind{pmemaccel.Optimal, pmemaccel.TCache, pmemaccel.Kiln, pmemaccel.SP} {
		cfg := pmemaccel.DefaultConfig(workload.Hashtable, m)
		cfg.Ops = 6000
		res, err := pmemaccel.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if m == pmemaccel.Optimal {
			opt = res
		}
		rows = append(rows, row{m, res})
	}

	fmt.Printf("%-10s %12s %12s %14s %12s %10s %10s\n",
		"mechanism", "tx/kcycle", "vs optimal", "NVM writes", "pload (cy)", "P99 (cy)", "wear max")
	for _, r := range rows {
		fmt.Printf("%-10s %12.3f %11.1f%% %14d %12.1f %10d %10d\n",
			r.mech, r.res.Throughput(),
			r.res.Throughput()/opt.Throughput()*100,
			r.res.NVMWriteTraffic(), r.res.AvgPersistentLoadLatency(),
			r.res.PloadP99, r.res.NVMWearMax)
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - optimal has no persistence guarantee: fast, but a crash corrupts the store")
	fmt.Println("  - sp (software logging) pays an NVM round-trip per logged write")
	fmt.Println("  - kiln stalls commits on LLC flushes and pins uncommitted lines")
	fmt.Println("  - tcache buffers persistent writes beside the hierarchy: near-optimal speed")
}
