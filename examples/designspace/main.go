// designspace: sweep the transaction-cache capacity — the paper's claim
// that "the capacity of the transaction cache can be flexibly configured
// based on the transaction sizes of the processor's target applications"
// (§3). Small TCs overflow to the copy-on-write fall-back and stall; the
// 4 KB default absorbs every benchmark except the write-storm sps, which
// stalls briefly (§5.2: 0.67% of execution time in the paper).
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"pmemaccel"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/workload"
)

func main() {
	fmt.Println("transaction-cache capacity sweep (sps: the most write-intensive benchmark)")
	fmt.Printf("%-8s %12s %12s %14s %14s\n", "TC size", "tx/kcycle", "stall %", "fallback txs", "full rejects")

	var baseline float64
	for _, tcBytes := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
		cfg := pmemaccel.DefaultConfig(workload.SPS, pmemaccel.TCache)
		cfg.TCBytes = tcBytes
		cfg.Ops = 6000
		res, err := pmemaccel.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		stall := res.StallFraction(func(s cpu.Stats) uint64 { return s.StallStoreRetry }) * 100
		var fallbacks, rejects uint64
		for _, tc := range res.TC {
			fallbacks += tc.FallbackWrites
			rejects += tc.FullRejects
		}
		if tcBytes == 4096 {
			baseline = res.Throughput()
		}
		fmt.Printf("%5d B %12.3f %11.3f%% %14d %14d\n",
			tcBytes, res.Throughput(), stall, fallbacks, rejects)
	}
	fmt.Println()
	fmt.Printf("the Table 2 default (4 KB) reaches %.3f tx/kcycle; larger TCs buy little,\n", baseline)
	fmt.Println("smaller ones push transactions onto the copy-on-write fall-back path —")
	fmt.Println("size the TC to the target applications' transaction footprints")
}
