// Quickstart: simulate the red-black tree benchmark on the transaction-
// cache accelerator and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmemaccel"
	"pmemaccel/internal/workload"
)

func main() {
	// A laptop-scale version of the paper's Table 2 machine: 4 cores,
	// scaled caches, a 4 KB transaction cache per core.
	cfg := pmemaccel.DefaultConfig(workload.RBTree, pmemaccel.TCache)
	cfg.Ops = 4000 // transactions per core

	res, err := pmemaccel.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("persistent memory accelerator — quickstart")
	fmt.Printf("  benchmark:         %v (%s)\n", cfg.Benchmark, cfg.Benchmark.Description())
	fmt.Printf("  cycles:            %d\n", res.Cycles)
	fmt.Printf("  IPC:               %.3f\n", res.IPC())
	fmt.Printf("  throughput:        %.3f tx/kcycle\n", res.Throughput())
	fmt.Printf("  LLC miss rate:     %.1f%%\n", res.LLCMissRate*100)
	fmt.Printf("  NVM writes:        %d\n", res.NVMWriteTraffic())
	fmt.Printf("  persistent loads:  %.1f cycles average\n", res.AvgPersistentLoadLatency())
	for core, tc := range res.TC {
		fmt.Printf("  TC core %d:         %d buffered writes, %d commits, peak occupancy %d/64\n",
			core, tc.Writes, tc.Commits, tc.OccupancyPeak)
	}
	if res.DurableDiffCount == 0 {
		fmt.Println("  durability check:  NVM matches the committed-transaction oracle exactly")
	} else {
		fmt.Printf("  durability check:  %d mismatches (bug!)\n", res.DurableDiffCount)
	}
}
