package pmemaccel

import (
	"encoding/json"
	"strings"
	"testing"

	"pmemaccel/internal/memaddr"
	"pmemaccel/internal/workload"
)

// tinyConfig keeps unit-test runs fast while still exercising the whole
// machine.
func tinyConfig(b workload.Benchmark, m Kind) Config {
	cfg := DefaultConfig(b, m)
	cfg.Cores = 2
	cfg.Scale = 256
	cfg.InitialSize = 500
	cfg.Ops = 200
	return cfg
}

func TestRunEveryBenchmarkEveryMechanism(t *testing.T) {
	for _, b := range workload.Extended {
		for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
			b, m := b, m
			t.Run(b.String()+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(tinyConfig(b, m))
				if err != nil {
					t.Fatal(err)
				}
				if res.Cycles == 0 {
					t.Fatal("zero-cycle run")
				}
				if got := res.TotalTransactions(); got != 400 {
					t.Fatalf("transactions = %d, want 400 (200 x 2 cores)", got)
				}
				if res.IPC() <= 0 {
					t.Fatal("non-positive IPC")
				}
				// Every mechanism with a guarantee leaves NVM
				// exactly at the committed state once drained.
				if m != Optimal && res.DurableDiffCount != 0 {
					t.Fatalf("%d durable diffs after full drain", res.DurableDiffCount)
				}
			})
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(tinyConfig(workload.RBTree, TCache))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig(workload.RBTree, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.TotalInstructions() != b.TotalInstructions() ||
		a.NVMWriteTraffic() != b.NVMWriteTraffic() || a.LLCMissRate != b.LLCMissRate {
		t.Fatalf("identical configs diverged:\n%v\n%v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := tinyConfig(workload.SPS, Optimal)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.NVMWriteTraffic() == b.NVMWriteTraffic() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestBadScaleRejected(t *testing.T) {
	cfg := tinyConfig(workload.SPS, Optimal)
	cfg.Scale = 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("non-power-of-two scale accepted")
	}
}

func TestShapeOrderingOnSPS(t *testing.T) {
	// The paper's headline ordering must hold even at test scale:
	// throughput Optimal >= TCache > Kiln-ish > SP, and NVM writes
	// SP > TCache > Optimal.
	results := map[Kind]*Result{}
	for _, m := range []Kind{Optimal, SP, TCache, Kiln} {
		cfg := tinyConfig(workload.SPS, m)
		cfg.Ops = 400
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[m] = res
	}
	opt, sp, tc, kiln := results[Optimal], results[SP], results[TCache], results[Kiln]
	if !(tc.Throughput() > sp.Throughput()) {
		t.Errorf("TCache throughput %.3f not above SP %.3f", tc.Throughput(), sp.Throughput())
	}
	if !(kiln.Throughput() > sp.Throughput()) {
		t.Errorf("Kiln throughput %.3f not above SP %.3f", kiln.Throughput(), sp.Throughput())
	}
	if !(tc.Throughput() >= kiln.Throughput()) {
		t.Errorf("TCache throughput %.3f below Kiln %.3f", tc.Throughput(), kiln.Throughput())
	}
	if !(sp.NVMWriteTraffic() > tc.NVMWriteTraffic()) {
		t.Errorf("SP writes %d not above TCache %d", sp.NVMWriteTraffic(), tc.NVMWriteTraffic())
	}
	if !(tc.NVMWriteTraffic() > opt.NVMWriteTraffic()) {
		t.Errorf("TCache writes %d not above Optimal %d", tc.NVMWriteTraffic(), opt.NVMWriteTraffic())
	}
	if !(kiln.NVMWriteTraffic() > opt.NVMWriteTraffic()) {
		t.Errorf("Kiln writes %d not above Optimal %d", kiln.NVMWriteTraffic(), opt.NVMWriteTraffic())
	}
}

func TestTCacheStatsPresentOnlyForTCache(t *testing.T) {
	tc, err := Run(tinyConfig(workload.Hashtable, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.TC) != 2 {
		t.Fatalf("TC stats for %d cores, want 2", len(tc.TC))
	}
	if tc.TC[0].Writes == 0 || tc.TC[0].Commits == 0 {
		t.Fatalf("TC stats empty: %+v", tc.TC[0])
	}
	opt, err := Run(tinyConfig(workload.Hashtable, Optimal))
	if err != nil {
		t.Fatal(err)
	}
	if opt.TC != nil {
		t.Fatal("Optimal run carries TC stats")
	}
}

func TestResultStringMentionsKeyMetrics(t *testing.T) {
	res, err := Run(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"sps", "tcache", "IPC", "tx/kcycle", "NVM writes"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() missing %q: %s", want, s)
		}
	}
}

func TestKilnMissRateExceedsOptimalOnSPS(t *testing.T) {
	// Figure 8's direction: Kiln's pinning and versioning raise the LLC
	// miss rate relative to Optimal/TCache. The effect needs real
	// capacity pressure, so this test runs at the default scale.
	cfg := DefaultConfig(workload.SPS, Optimal)
	opt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = Kiln
	kiln, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kiln.LLCMissRate <= opt.LLCMissRate {
		t.Errorf("Kiln LLC miss %.4f not above Optimal %.4f", kiln.LLCMissRate, opt.LLCMissRate)
	}
}

func TestExpectedDurableMatchesFinalImages(t *testing.T) {
	s, err := NewSystem(tinyConfig(workload.BTree, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	expected := s.ExpectedDurable()
	// Every persistent word of every core's FinalImage must appear in
	// the expectation.
	for _, out := range s.Outputs {
		bad := 0
		out.FinalImage.ForEach(func(addr, v uint64) {
			if addr >= out.Params.PersistentRegion.Base &&
				addr < out.Params.PersistentRegion.End() &&
				expected.ReadWord(addr) != v {
				bad++
			}
		})
		if bad != 0 {
			t.Fatalf("expected image diverges from FinalImage on %d words", bad)
		}
	}
}

func TestMechanismsShareTheSameProgram(t *testing.T) {
	// Optimal, TCache and Kiln execute the identical instruction stream
	// (the mechanisms add hardware, not instructions); SP executes
	// strictly more (logging code).
	insts := map[Kind]uint64{}
	for _, m := range []Kind{Optimal, TCache, Kiln, SP} {
		res, err := Run(tinyConfig(workload.Graph, m))
		if err != nil {
			t.Fatal(err)
		}
		insts[m] = res.TotalInstructions()
	}
	if insts[Optimal] != insts[TCache] || insts[Optimal] != insts[Kiln] {
		t.Errorf("instruction counts differ: optimal=%d tcache=%d kiln=%d",
			insts[Optimal], insts[TCache], insts[Kiln])
	}
	if insts[SP] <= insts[Optimal] {
		t.Errorf("SP executed %d instructions, want more than optimal's %d (logging code)",
			insts[SP], insts[Optimal])
	}
}

func TestGuaranteedMechanismsAgreeOnFinalState(t *testing.T) {
	// All three guaranteed mechanisms must converge to the same durable
	// NVM data state after a full run of the same workload.
	var images []map[uint64]uint64
	for _, m := range []Kind{SP, TCache, Kiln} {
		s, err := NewSystem(tinyConfig(workload.SPS, m))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		img := map[uint64]uint64{}
		s.RecoveredDurable().ForEach(func(a, v uint64) {
			// Compare only the NVM data space: log layouts differ by
			// mechanism.
			if memaddr.Classify(a) == memaddr.SpaceNVM && v != 0 {
				img[a] = v
			}
		})
		images = append(images, img)
	}
	for i := 1; i < len(images); i++ {
		if len(images[i]) != len(images[0]) {
			t.Fatalf("mechanism %d durable footprint %d != %d", i, len(images[i]), len(images[0]))
		}
		for a, v := range images[0] {
			if images[i][a] != v {
				t.Fatalf("mechanisms disagree at %#x: %d vs %d", a, v, images[i][a])
			}
		}
	}
}

func TestHeterogeneousMix(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Mix = []workload.Benchmark{workload.RBTree, workload.SPS}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransactions() != 400 {
		t.Fatalf("mix ran %d transactions, want 400", res.TotalTransactions())
	}
	if res.DurableDiffCount != 0 {
		t.Fatalf("mix left %d durable diffs", res.DurableDiffCount)
	}
	if s.Outputs[0].Benchmark != workload.RBTree || s.Outputs[1].Benchmark != workload.SPS {
		t.Fatal("mix did not assign per-core benchmarks")
	}
}

func TestMixLengthValidated(t *testing.T) {
	cfg := tinyConfig(workload.RBTree, TCache)
	cfg.Mix = []workload.Benchmark{workload.SPS} // 1 entry for 2 cores
	if _, err := Run(cfg); err == nil {
		t.Fatal("mismatched Mix length accepted")
	}
}

func TestWearAndPercentilesReported(t *testing.T) {
	res, err := Run(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	if res.NVMLinesTouched == 0 || res.NVMWearMax == 0 {
		t.Fatalf("wear not collected: %+v lines, max %d", res.NVMLinesTouched, res.NVMWearMax)
	}
	if res.NVMWearHotness < 1 {
		t.Fatalf("hotness %v < 1", res.NVMWearHotness)
	}
	if res.PloadP99 < res.PloadP50 {
		t.Fatalf("P99 %d below P50 %d", res.PloadP99, res.PloadP50)
	}
	if res.PloadP99 == 0 {
		t.Fatal("P99 is zero")
	}
}

func TestResultJSONExport(t *testing.T) {
	res, err := Run(tinyConfig(workload.SPS, TCache))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var e Export
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Benchmark != "sps" || e.Mechanism != "tcache" {
		t.Fatalf("export labels = %s/%s", e.Benchmark, e.Mechanism)
	}
	if e.Cycles != res.Cycles || e.Transactions != res.TotalTransactions() {
		t.Fatal("export disagrees with result")
	}
	if e.IPC <= 0 || e.NVMWrites == 0 {
		t.Fatalf("export metrics empty: %+v", e)
	}
}

func TestLargeMachineSmoke(t *testing.T) {
	// A quarter-scale machine (16 MB LLC) exercising the auto-sizing and
	// the full pipeline at realistic capacities. Skipped with -short.
	if testing.Short() {
		t.Skip("large-machine smoke skipped in -short mode")
	}
	cfg := DefaultConfig(workload.Hashtable, TCache)
	cfg.Scale = 4
	cfg.Ops = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DurableDiffCount != 0 {
		t.Fatalf("%d durable diffs at quarter scale", res.DurableDiffCount)
	}
	if res.TotalTransactions() != 12000 {
		t.Fatalf("transactions = %d, want 12000", res.TotalTransactions())
	}
}
