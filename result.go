package pmemaccel

import (
	"fmt"
	"strings"

	"pmemaccel/internal/cache"
	"pmemaccel/internal/cpu"
	"pmemaccel/internal/mechanism"
	"pmemaccel/internal/memctrl"
	"pmemaccel/internal/obs/metrics"
	"pmemaccel/internal/obs/txflight"
	"pmemaccel/internal/stats"
	"pmemaccel/internal/txcache"
)

// Result is everything one run measured — the raw material for every
// figure in the paper's evaluation.
type Result struct {
	Config Config

	// Cycles is the performance window: cycle 0 to the last core's
	// retirement (post-run drains excluded, as in the paper).
	Cycles uint64

	PerCore []cpu.Stats
	Hier    cache.Stats

	L1MissRate  float64
	L2MissRate  float64
	LLCMissRate float64

	// NVM and DRAM aggregate each space's controller activity across
	// its channels (for the default 1x1 topology they are exactly the
	// single channel's counters). PerNVMChannel/PerDRAMChannel keep the
	// per-channel split, in interleave order.
	NVM  memctrl.Stats
	DRAM memctrl.Stats

	PerNVMChannel  []memctrl.Stats
	PerDRAMChannel []memctrl.Stats

	// TC holds per-core transaction cache stats (TCache runs only).
	TC []txcache.Stats

	// Arb holds the machine-wide shared-line arbitration counters. All
	// zero unless the workload has a cross-core shared region
	// (workload.BankShared).
	Arb txcache.ArbStats

	// DurableDiffs is the end-of-run consistency check: recovered NVM
	// state versus the committed-transaction oracle. Empty for every
	// mechanism that guarantees persistence; Optimal is exempt from the
	// check (it guarantees nothing) and reports -1.
	DurableDiffCount int

	// PloadP50/P99 are persistent-load latency percentiles (upper
	// bounds from log2 buckets) — tail behaviour behind Figure 10's
	// mean.
	PloadP50, PloadP99 uint64

	// NVM endurance profile: distinct lines written, mean and max
	// writes per line, and the max/mean hotness ratio. The TC's
	// uncoalesced write stream is an endurance trade-off the paper
	// does not quantify; we do.
	NVMLinesTouched int
	NVMWearMean     float64
	NVMWearMax      uint64
	NVMWearHotness  float64

	// Metrics is the run-wide metrics snapshot: latency/burst/drain
	// histogram percentiles plus counters and gauges mirrored from the
	// component stats. Nil unless Config.Obs.Metrics was set.
	Metrics *metrics.Snapshot

	// Ring-buffer accounting for the event trace: how many events the
	// run recorded, how many the bounded ring overwrote (a nonzero
	// count means the exported trace is a suffix of the run), and how
	// many still-open spans collection flushed. All zero when
	// Config.Obs is disabled.
	ObsEventsRecorded   uint64
	ObsEventsDropped    uint64
	ObsOpenSpansFlushed uint64

	// TxFlight is the flight recorder's aggregate: sampled-transaction
	// stage waterfalls reduced to per-stage cycle sums, critical-stage
	// verdict counts, and the end-to-end total (the stage-sum
	// invariant: StageCycles sums exactly to E2ECycles). Nil unless
	// Config.Obs.TxSample was set.
	TxFlight *txflight.Aggregate

	// SkippedCycles is how many cycles the kernel's quiescence
	// fast-forward jumped instead of stepping — the audit trail for
	// `-no-ff` equivalence runs (which must report 0) and for judging
	// how much of a run the event-driven mode covered. Skipped cycles
	// are real simulated cycles (they are included in Cycles); this
	// counter only records that they were proven idle and bulk-applied.
	SkippedCycles uint64
}

func (s *System) collect(cycles uint64) *Result {
	// Close the observability record before reading it out: spans still
	// open (a TC drain burst, a write-drain window) are flushed into the
	// trace as explicit open-span events instead of being dropped.
	s.Probe.FlushOpenSpans(s.Kernel.Now())
	r := &Result{Config: s.Config, Cycles: cycles}
	r.SkippedCycles = s.Kernel.Skipped()
	r.ObsEventsRecorded = s.Probe.Recorded()
	r.ObsEventsDropped = s.Probe.Dropped()
	r.ObsOpenSpansFlushed = s.Probe.OpenSpansFlushed()
	if s.Flight != nil {
		agg := s.Flight.Aggregate()
		r.TxFlight = &agg
	}
	for _, c := range s.Cores {
		st := c.Stats()
		// Idle closes the attribution: every unfinished cycle ticked
		// exactly one busy bucket, so idle is the remainder of the
		// performance window after the core retired its last
		// instruction.
		if busy := st.Breakdown.Busy(); cycles > busy {
			st.Breakdown.Idle = cycles - busy
		}
		r.PerCore = append(r.PerCore, st)
	}
	r.Hier = s.Hier.Stats()

	var l1h, l1m, l2h, l2m uint64
	for c := 0; c < s.Config.Cores; c++ {
		l1h += s.Hier.L1(c).Hits
		l1m += s.Hier.L1(c).Misses
		l2h += s.Hier.L2(c).Hits
		l2m += s.Hier.L2(c).Misses
	}
	if l1h+l1m > 0 {
		r.L1MissRate = float64(l1m) / float64(l1h+l1m)
	}
	if l2h+l2m > 0 {
		r.L2MissRate = float64(l2m) / float64(l2h+l2m)
	}
	r.LLCMissRate = s.Hier.LLC().MissRate()

	r.NVM = s.Backend.NVMStats()
	r.DRAM = s.Backend.DRAMStats()
	r.PerNVMChannel = s.Backend.NVMChannelStats()
	r.PerDRAMChannel = s.Backend.DRAMChannelStats()

	if tp, ok := s.Mech.(mechanism.TCIntrospector); ok {
		r.TC = tp.TCStatsAll()
	}
	if s.Arb != nil {
		r.Arb = s.Arb.Stats()
	}

	var hist [18]uint64
	for _, st := range r.PerCore {
		hist = cpu.MergeHist(hist, st.PloadHist)
	}
	agg := cpu.Stats{PersistentLoads: 0, PloadHist: hist}
	for _, st := range r.PerCore {
		agg.PersistentLoads += st.PersistentLoads
	}
	r.PloadP50 = cpu.PloadPercentile(agg, 0.5)
	r.PloadP99 = cpu.PloadPercentile(agg, 0.99)

	wear := s.Backend.NVMWear()
	r.NVMLinesTouched = wear.LinesTouched()
	r.NVMWearMean = wear.MeanLineWrites()
	r.NVMWearMax = wear.MaxLineWrites()
	r.NVMWearHotness = wear.Hotness()

	if s.Config.Mechanism == Optimal {
		r.DurableDiffCount = -1
	} else {
		r.DurableDiffCount = len(CheckDurable(s.ExpectedDurable(), s.RecoveredDurable(), 0))
	}

	if s.Metrics != nil {
		// Collect-time fills: distributions only final at end of run
		// (wear), and counters/gauges the components already track
		// exactly — mirroring them here costs nothing on the hot path.
		wear.FillHistogram(s.Metrics.Histogram("nvm_line_writes"))
		fillStatMetrics(s.Metrics, r)
		r.Metrics = s.Metrics.Snapshot()
	}
	return r
}

// fillStatMetrics mirrors already-exact component counters into the
// registry so the snapshot is a self-contained run summary: the
// histograms' percentile rows sit beside the counts that contextualize
// them (side-probe hit latency beside the hit count, drain-window
// cycles beside the write totals).
func fillStatMetrics(reg *metrics.Registry, r *Result) {
	reg.Counter("instructions").Add(r.TotalInstructions())
	reg.Counter("transactions").Add(r.TotalTransactions())
	reg.Counter("nvm_reads").Add(r.NVM.Reads)
	reg.Counter("nvm_writes").Add(r.NVM.Writes)
	reg.Counter("dram_reads").Add(r.DRAM.Reads)
	reg.Counter("llc_dropped_evictions").Add(r.Hier.DroppedEvictions)
	reg.Counter("side_probes").Add(r.Hier.SidePathProbes)
	reg.Counter("side_probe_hits").Add(r.Hier.SidePathHits)
	reg.Counter("skipped_cycles").Add(r.SkippedCycles)
	reg.Counter("obs_events_recorded").Add(r.ObsEventsRecorded)
	reg.Counter("obs_events_dropped").Add(r.ObsEventsDropped)
	reg.Counter("obs_open_spans_flushed").Add(r.ObsOpenSpansFlushed)
	reg.Gauge("cycles").SetMax(int64(r.Cycles))
	reg.Gauge("nvm_write_queue_peak").SetMax(int64(r.NVM.WriteQueuePeak))
	reg.Gauge("nvm_read_latency_max").SetMax(int64(r.NVM.ReadLatencyMax))
	reg.Gauge("nvm_lines_touched").SetMax(int64(r.NVMLinesTouched))
}

// TotalInstructions sums retired instructions across cores.
func (r *Result) TotalInstructions() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.Instructions
	}
	return n
}

// TotalTransactions sums committed transactions across cores.
func (r *Result) TotalTransactions() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.Transactions
	}
	return n
}

// TotalTxAborts sums aborted transaction attempts across cores — each a
// lost shared-line arbitration that rolled the transaction back to its
// TX_BEGIN.
func (r *Result) TotalTxAborts() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.TxAborts
	}
	return n
}

// TotalWastedInstructions sums instructions executed by transaction
// attempts that later aborted (they are also counted in Instructions —
// wasted work is real work).
func (r *Result) TotalWastedInstructions() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.WastedInstructions
	}
	return n
}

// AbortRate is aborted attempts per transaction attempt (commits plus
// aborts); 0 for uncontended runs.
func (r *Result) AbortRate() float64 {
	aborts := r.TotalTxAborts()
	if total := r.TotalTransactions() + aborts; total > 0 {
		return float64(aborts) / float64(total)
	}
	return 0
}

// IPC is aggregate instructions per cycle (Figure 6's metric).
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInstructions()) / float64(r.Cycles)
}

// Throughput is transactions per kilocycle (Figure 7's metric, scaled
// for readability).
func (r *Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalTransactions()) / float64(r.Cycles) * 1000
}

// AvgPersistentLoadLatency is the mean cycles per persistent load
// (Figure 10's metric).
func (r *Result) AvgPersistentLoadLatency() float64 {
	var sum, n uint64
	for _, s := range r.PerCore {
		sum += s.PersistentLoadLatencySum
		n += s.PersistentLoads
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// NVMWriteTraffic is the write count at the NVM channel (Figure 9's
// metric).
func (r *Result) NVMWriteTraffic() uint64 { return r.NVM.Writes }

// StallFraction reports the fraction of core-cycles spent in the given
// stall counter extractor (e.g. TC-full stalls, §5.2).
func (r *Result) StallFraction(get func(cpu.Stats) uint64) float64 {
	var stall, total uint64
	for _, s := range r.PerCore {
		stall += get(s)
		total += r.Cycles
	}
	if total == 0 {
		return 0
	}
	return float64(stall) / float64(total)
}

// AttributionTable renders the per-core cycle attribution (where every
// cycle of the performance window went) as percentages of Cycles, one
// row per core plus an all-core aggregate.
func (r *Result) AttributionTable() string {
	rows := make([]string, 0, len(r.PerCore)+1)
	vals := make([][]float64, 0, len(r.PerCore)+1)
	agg := make([]uint64, len(cpu.BreakdownCategories))
	for c, st := range r.PerCore {
		rows = append(rows, fmt.Sprintf("core%d", c))
		vs := st.Breakdown.Values()
		row := make([]float64, len(vs))
		for i, v := range vs {
			agg[i] += v
			if r.Cycles > 0 {
				row[i] = float64(v) / float64(r.Cycles) * 100
			}
		}
		vals = append(vals, row)
	}
	rows = append(rows, "all")
	aggRow := make([]float64, len(agg))
	if n := uint64(len(r.PerCore)) * r.Cycles; n > 0 {
		for i, v := range agg {
			aggRow[i] = float64(v) / float64(n) * 100
		}
	}
	vals = append(vals, aggRow)
	return stats.Crosstab("cycle attribution (% of cycles)", rows, cpu.BreakdownCategories, vals)
}

// String summarizes the run for humans.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: %d cycles, IPC %.3f, %.3f tx/kcycle, LLC miss %.2f%%, NVM writes %d, pload %.1f cy",
		r.Config.Benchmark, r.Config.Mechanism, r.Cycles, r.IPC(), r.Throughput(),
		r.LLCMissRate*100, r.NVMWriteTraffic(), r.AvgPersistentLoadLatency())
	if aborts := r.TotalTxAborts(); aborts > 0 {
		fmt.Fprintf(&b, ", %d aborts (%.1f%%), %d wasted instr, %d line conflicts",
			aborts, r.AbortRate()*100, r.TotalWastedInstructions(), r.Arb.Conflicts)
	}
	if r.DurableDiffCount > 0 {
		fmt.Fprintf(&b, " [INCONSISTENT: %d diffs]", r.DurableDiffCount)
	}
	return b.String()
}
