# Developer entry points. Everything is plain `go` underneath; the
# targets just fix the flag sets CI and reviewers use.

GO ?= go

.PHONY: all build test race vet staticcheck bench clean ci race-sweep bench-smoke bench-json bench-json-check

all: build test

# Everything CI runs (.github/workflows/ci.yml): build, vet (plus
# staticcheck when installed), the full test suite, a race-mode pass over
# the concurrent paths, and the benchmark smoke run.
ci: build vet staticcheck test race-sweep bench-smoke

# Race-mode pass over the packages with goroutines: the parallel sweep
# engine, the metrics registry it publishes progress/percentiles
# through, the parallel simulation kernel's worker/barrier protocol
# (both its own stress tests and the forced-dispatch run over real
# components), and the concurrent pmemaccel.Run entry points.
race-sweep:
	$(GO) test -race ./internal/sweep/ ./internal/obs/metrics/ ./internal/figures/ ./internal/sim/ .
	$(GO) test -race -run 'TestParallelKernel' -count=1 .
	$(GO) test -race -run 'TestContended' -count=1 .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a note when the staticcheck
# binary is not on PATH (CI installs it; local runs need not).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Regenerate the paper's headline numbers (Figures 6-10, Table 1).
bench:
	$(GO) test -bench=Fig -benchtime=1x .

# Simulator speed with and without the observability layer.
bench-speed:
	$(GO) test -bench='SimulatorSpeed' -benchtime=3x .

# One-iteration benchmark smoke run: catches benchmarks that no longer
# compile or crash, without measuring anything. The SimulatorSpeed
# pattern covers the plain, observability-on, and 4-channel
# (SimulatorSpeedMultiChannel) configurations.
bench-smoke:
	$(GO) test -run '^$$' -bench SimulatorSpeed -benchtime 1x .

# Benchmark-trajectory harness: run the simulator-speed benchmarks
# (3 iterations each — single-iteration numbers swing by ~10%, the
# entire gate tolerance) and record ns/op, allocs/op and sim_cycles/s
# per benchmark into BENCH_9.json via cmd/benchjson. The file is
# committed, so speed regressions show up as diffs; -baseline
# additionally fails the run when sim_cycles/s fell more than 10% below
# the previous PR's record (BENCH_8.json).
bench-json:
	$(GO) test -run '^$$' -bench SimulatorSpeed -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -o BENCH_9.json -baseline BENCH_8.json

# Validate the committed trajectory record and gate it against the
# previous PR's record (CI smoke gate; deterministic — compares the two
# committed files, no benchmark run).
bench-json-check:
	$(GO) run ./cmd/benchjson -check BENCH_9.json -baseline BENCH_8.json

clean:
	$(GO) clean ./...
	rm -f trace.json metrics.csv
