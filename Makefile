# Developer entry points. Everything is plain `go` underneath; the
# targets just fix the flag sets CI and reviewers use.

GO ?= go

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate the paper's headline numbers (Figures 6-10, Table 1).
bench:
	$(GO) test -bench=Fig -benchtime=1x .

# Simulator speed with and without the observability layer.
bench-speed:
	$(GO) test -bench='SimulatorSpeed' -benchtime=3x .

clean:
	$(GO) clean ./...
	rm -f trace.json metrics.csv
