# Developer entry points. Everything is plain `go` underneath; the
# targets just fix the flag sets CI and reviewers use.

GO ?= go

.PHONY: all build test race vet bench clean ci race-sweep

all: build test

# Everything CI runs (.github/workflows/ci.yml): build, vet, the full
# test suite, and a race-mode pass over the concurrent paths.
ci: build vet test race-sweep

# Race-mode pass over the packages with goroutines: the parallel sweep
# engine and the concurrent pmemaccel.Run entry points.
race-sweep:
	$(GO) test -race ./internal/sweep/ ./internal/figures/ .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate the paper's headline numbers (Figures 6-10, Table 1).
bench:
	$(GO) test -bench=Fig -benchtime=1x .

# Simulator speed with and without the observability layer.
bench-speed:
	$(GO) test -bench='SimulatorSpeed' -benchtime=3x .

clean:
	$(GO) clean ./...
	rm -f trace.json metrics.csv
